//! Graphene-style data layouts: dimension sizes and strides, with
//! decomposed (tuple) dimensions.
//!
//! The paper expresses broadcast-friendly layouts in the notation of
//! Graphene (Hagedorn et al., ASPLOS '23): each logical dimension is a
//! *size* paired with a *stride*, and a dimension may be decomposed into
//! an (outer, inner) tuple with its own stride tuple — e.g. the LHS
//! broadcast layout of §5.1 is written
//!
//! ```text
//! [ (32, 32) : 64 ]
//! [ (1, 2048) : 32 ]
//! ```
//!
//! Layouts map logical coordinates to linear element offsets, can be
//! applied to a buffer to produce the physically reordered data, and
//! expose the quantity the broadcast-friendly optimization actually
//! targets: the size of the smallest *contiguous* window that covers a
//! broadcast set ([`Layout::window_span`]).

use std::fmt;

use serde::{Deserialize, Serialize};

/// One logical dimension: possibly-decomposed size and stride.
///
/// A simple dimension has one factor; a decomposed dimension has an
/// (outer, inner) factor pair, where the logical index `i` splits as
/// `i = outer_idx * inner_size + inner_idx` and the linear offset
/// contribution is `outer_idx * outer_stride + inner_idx * inner_stride`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Dim {
    sizes: Vec<usize>,
    strides: Vec<usize>,
}

impl Dim {
    /// A simple (non-decomposed) dimension.
    pub fn simple(size: usize, stride: usize) -> Self {
        assert!(size > 0, "dimension size must be positive");
        Dim {
            sizes: vec![size],
            strides: vec![stride],
        }
    }

    /// A decomposed dimension: `(outer, inner)` sizes with matching
    /// strides.
    pub fn split(outer: (usize, usize), inner: (usize, usize)) -> Self {
        assert!(outer.0 > 0 && inner.0 > 0, "factor sizes must be positive");
        Dim {
            sizes: vec![outer.0, inner.0],
            strides: vec![outer.1, inner.1],
        }
    }

    /// Total logical extent of the dimension.
    pub fn size(&self) -> usize {
        self.sizes.iter().product()
    }

    /// Linear offset contribution of logical index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    pub fn offset(&self, mut i: usize) -> usize {
        assert!(
            i < self.size(),
            "index {i} out of dimension of {}",
            self.size()
        );
        let mut off = 0;
        // Factors are stored outer-first; peel from the innermost.
        for k in (0..self.sizes.len()).rev() {
            let s = self.sizes[k];
            off += (i % s) * self.strides[k];
            i /= s;
        }
        off
    }
}

impl fmt::Display for Dim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.sizes.len() == 1 {
            write!(f, "{} : {}", self.sizes[0], self.strides[0])
        } else {
            write!(
                f,
                "({}, {}) : ({}, {})",
                self.sizes[0], self.sizes[1], self.strides[0], self.strides[1]
            )
        }
    }
}

/// A multi-dimensional layout: logical dims (outermost first) mapping to
/// linear element offsets.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Layout {
    dims: Vec<Dim>,
}

impl Layout {
    /// Creates a layout from dimensions (outermost first).
    pub fn new(dims: Vec<Dim>) -> Self {
        assert!(!dims.is_empty(), "layout needs at least one dimension");
        Layout { dims }
    }

    /// Standard row-major layout of an `rows × cols` matrix.
    pub fn row_major(rows: usize, cols: usize) -> Self {
        Layout::new(vec![Dim::simple(rows, cols), Dim::simple(cols, 1)])
    }

    /// Column-major layout of an `rows × cols` matrix — the
    /// broadcast-friendly format of Fig. 11(b): consecutive broadcast
    /// scalars (one per row of the same column) become contiguous.
    pub fn col_major(rows: usize, cols: usize) -> Self {
        Layout::new(vec![Dim::simple(rows, 1), Dim::simple(cols, rows)])
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dim] {
        &self.dims
    }

    /// Total logical element count.
    pub fn len(&self) -> usize {
        self.dims.iter().map(Dim::size).product()
    }

    /// Whether the layout covers zero elements (never true: dimensions
    /// are validated positive).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Linear element offset of a logical coordinate (outermost first).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate rank or any index is out of range.
    pub fn offset(&self, coord: &[usize]) -> usize {
        assert_eq!(coord.len(), self.dims.len(), "coordinate rank mismatch");
        coord
            .iter()
            .zip(&self.dims)
            .map(|(&i, d)| d.offset(i))
            .sum()
    }

    /// Applies the layout to logical row-major data, producing the
    /// physically reordered buffer: element at logical coordinate `c`
    /// lands at `offset(c)`.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != self.len()` or the layout is not a
    /// permutation (offsets collide).
    pub fn apply<T: Copy + Default>(&self, data: &[T]) -> Vec<T> {
        assert_eq!(data.len(), self.len(), "data length mismatch");
        let mut out = vec![T::default(); data.len()];
        let mut used = vec![false; data.len()];
        let sizes: Vec<usize> = self.dims.iter().map(Dim::size).collect();
        let mut coord = vec![0usize; sizes.len()];
        for (logical, item) in data.iter().enumerate() {
            let off = self.offset(&coord);
            assert!(!used[off], "layout is not a permutation at offset {off}");
            used[off] = true;
            out[off] = *item;
            let _ = logical;
            // advance coordinate, innermost fastest
            for k in (0..coord.len()).rev() {
                coord[k] += 1;
                if coord[k] < sizes[k] {
                    break;
                }
                coord[k] = 0;
            }
        }
        out
    }

    /// The span (in elements) of the smallest contiguous window covering
    /// the given logical coordinates — the lookup-table size a broadcast
    /// of those elements requires, since lookup tables must be contiguous
    /// memory (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty or any coordinate is invalid.
    pub fn window_span(&self, coords: &[&[usize]]) -> usize {
        assert!(!coords.is_empty(), "need at least one coordinate");
        let offsets: Vec<usize> = coords.iter().map(|c| self.offset(c)).collect();
        let min = *offsets.iter().min().expect("nonempty");
        let max = *offsets.iter().max().expect("nonempty");
        max - min + 1
    }
}

impl fmt::Display for Layout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "[ {d} ]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_offsets() {
        let l = Layout::row_major(3, 6);
        assert_eq!(l.offset(&[0, 0]), 0);
        assert_eq!(l.offset(&[0, 5]), 5);
        assert_eq!(l.offset(&[2, 1]), 13);
        assert_eq!(l.len(), 18);
    }

    #[test]
    fn col_major_offsets() {
        let l = Layout::col_major(3, 6);
        assert_eq!(l.offset(&[0, 0]), 0);
        assert_eq!(l.offset(&[1, 0]), 1);
        assert_eq!(l.offset(&[0, 1]), 3);
    }

    #[test]
    fn fig11_broadcast_window_shrinks() {
        // Fig. 11: broadcasting one scalar from each of the first 3 rows
        // of a 3x6 matrix. Row-major needs a window of at least 13
        // (indices 0, 6, 12); column-major needs only 3.
        let rm = Layout::row_major(3, 6);
        let cm = Layout::col_major(3, 6);
        let coords: Vec<&[usize]> = vec![&[0, 0], &[1, 0], &[2, 0]];
        assert_eq!(rm.window_span(&coords), 13);
        assert_eq!(cm.window_span(&coords), 3);
    }

    #[test]
    fn apply_permutes_to_col_major() {
        let data: Vec<u16> = (0..6).collect(); // 2x3 row-major: [0 1 2; 3 4 5]
        let cm = Layout::col_major(2, 3);
        let out = cm.apply(&data);
        assert_eq!(out, vec![0, 3, 1, 4, 2, 5]);
    }

    #[test]
    fn split_dimension_matches_paper_notation() {
        // [ (32, 32) : 64 ] over a dimension of 1024: index i =
        // o*32 + n, offset = o*? ... here: outer stride 64, inner 2048/32…
        // Use the concrete Fig.-style layout [ (4, 2) : (1, 8) ]:
        let d = Dim::split((4, 1), (2, 8));
        assert_eq!(d.size(), 8);
        // i = o*2 + n -> off = o*1 + n*8
        assert_eq!(d.offset(0), 0); // o=0,n=0
        assert_eq!(d.offset(1), 8); // o=0,n=1
        assert_eq!(d.offset(2), 1); // o=1,n=0
        assert_eq!(d.offset(7), 3 + 8);
        assert_eq!(d.to_string(), "(4, 2) : (1, 8)");
    }

    #[test]
    fn display_matches_graphene_style() {
        let l = Layout::new(vec![Dim::split((32, 64), (32, 1)), Dim::simple(2048, 32)]);
        let s = l.to_string();
        assert!(s.contains("(32, 32) : (64, 1)"));
        assert!(s.contains("2048 : 32"));
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn non_permutation_layouts_are_rejected_on_apply() {
        // duplicate offsets: stride 0
        let l = Layout::new(vec![Dim::simple(2, 0), Dim::simple(2, 1)]);
        let _ = l.apply(&[1u16, 2, 3, 4]);
    }

    #[test]
    fn roundtrip_row_major_apply_is_identity() {
        let data: Vec<u32> = (0..24).collect();
        let rm = Layout::row_major(4, 6);
        assert_eq!(rm.apply(&data), data);
    }
}
