//! Roofline analysis (paper Fig. 2).
//!
//! Even though compute-in-SRAM devices compute inside memory, they can
//! still be **memory-bandwidth bound** when data movement is unmanaged —
//! the paper's opening observation. The roofline places a kernel by its
//! operational intensity (ops per byte of off-chip traffic) against the
//! compute roof and the off-chip bandwidth diagonal.

use serde::{Deserialize, Serialize};

use cis_model::ModelParams;

/// A device roofline: compute roof and memory-bandwidth diagonal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak throughput in giga-ops per second (the compute roof).
    pub peak_gops: f64,
    /// Off-chip bandwidth in GB/s.
    pub bw_gbps: f64,
}

impl Roofline {
    /// Builds the APU roofline from model parameters.
    ///
    /// The compute roof is profiled for 16-bit multiply-accumulate, as in
    /// the paper's Fig. 2 (footnote 1): one 32K-element MAC every
    /// `mul + add` cycles per core, times four cores.
    pub fn from_params(params: &ModelParams, cores: usize) -> Roofline {
        let mac_cycles = params.t_op(apu_sim::VecOp::MulU16) + params.t_op(apu_sim::VecOp::AddU16);
        let ops_per_cycle = 2.0 * params.vr_len as f64 / mac_cycles * cores as f64;
        Roofline {
            peak_gops: ops_per_cycle * params.clock.hz() / 1e9,
            bw_gbps: params.l4_gb_per_sec() * 2.0 * cores as f64, // two DMA engines/core
        }
    }

    /// Attainable throughput (GOPS) at a given operational intensity
    /// (ops/byte).
    pub fn attainable_gops(&self, oi: f64) -> f64 {
        (self.bw_gbps * oi).min(self.peak_gops)
    }

    /// The ridge point: the OI where the kernel stops being
    /// bandwidth-bound.
    pub fn ridge_oi(&self) -> f64 {
        self.peak_gops / self.bw_gbps
    }

    /// Whether a kernel at this OI is memory-bound.
    pub fn is_memory_bound(&self, oi: f64) -> bool {
        oi < self.ridge_oi()
    }

    /// Places a measured kernel on the roofline.
    pub fn place(&self, name: &str, oi: f64, achieved_gops: f64) -> RooflinePoint {
        RooflinePoint {
            name: name.to_string(),
            oi,
            achieved_gops,
            attainable_gops: self.attainable_gops(oi),
            memory_bound: self.is_memory_bound(oi),
        }
    }
}

/// One kernel placed on the roofline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflinePoint {
    /// Kernel name.
    pub name: String,
    /// Operational intensity (ops per off-chip byte).
    pub oi: f64,
    /// Measured throughput in GOPS.
    pub achieved_gops: f64,
    /// Roofline bound at this OI.
    pub attainable_gops: f64,
    /// Whether the bound is the bandwidth diagonal.
    pub memory_bound: bool,
}

impl RooflinePoint {
    /// Fraction of the roofline bound actually achieved.
    pub fn efficiency(&self) -> f64 {
        if self.attainable_gops == 0.0 {
            0.0
        } else {
            self.achieved_gops / self.attainable_gops
        }
    }
}

/// Operational intensity helper: `ops / bytes`.
pub fn operational_intensity(total_ops: f64, offchip_bytes: f64) -> f64 {
    if offchip_bytes == 0.0 {
        f64::INFINITY
    } else {
        total_ops / offchip_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn apu_roofline() -> Roofline {
        Roofline::from_params(&ModelParams::leda_e(), 4)
    }

    #[test]
    fn compute_roof_is_order_teraops() {
        let r = apu_roofline();
        // 2*32768/127 ops/cycle * 4 cores * 500 MHz ≈ 1.0 TOPS for
        // 16-bit MAC (the 25 TOPS headline is for 8-bit add).
        assert!(
            r.peak_gops > 500.0 && r.peak_gops < 2500.0,
            "{}",
            r.peak_gops
        );
    }

    #[test]
    fn diagonal_caps_low_oi() {
        let r = apu_roofline();
        let low = r.attainable_gops(0.1);
        assert!((low - r.bw_gbps * 0.1).abs() < 1e-9);
        assert!(r.is_memory_bound(0.1));
    }

    #[test]
    fn roof_caps_high_oi() {
        let r = apu_roofline();
        let high = r.attainable_gops(1e6);
        assert_eq!(high, r.peak_gops);
        assert!(!r.is_memory_bound(1e6));
    }

    #[test]
    fn ridge_separates_regimes() {
        let r = apu_roofline();
        let ridge = r.ridge_oi();
        assert!(r.is_memory_bound(ridge * 0.99));
        assert!(!r.is_memory_bound(ridge * 1.01));
        // attainable is continuous at the ridge
        let a = r.attainable_gops(ridge);
        assert!((a - r.peak_gops).abs() / r.peak_gops < 1e-9);
    }

    #[test]
    fn placed_points_report_efficiency() {
        let r = apu_roofline();
        let p = r.place("baseline", 1.0, r.attainable_gops(1.0) * 0.5);
        assert!((p.efficiency() - 0.5).abs() < 1e-12);
        assert!(p.memory_bound);
    }

    #[test]
    fn oi_helper() {
        assert_eq!(operational_intensity(100.0, 50.0), 2.0);
        assert!(operational_intensity(1.0, 0.0).is_infinite());
    }
}
