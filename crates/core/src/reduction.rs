//! Communication-aware reduction mapping (paper §4.2).
//!
//! A reduction axis can be mapped two ways on an ultra-long-vector
//! compute-in-SRAM device:
//!
//! * **Spatial**: unroll the reduction axis across the VR and reduce with
//!   intra-VR subgroup operations — simple, but intra-VR data movement is
//!   expensive (Eq. 1) and the results end up scattered, forcing PIO
//!   stores.
//! * **Temporal**: iterate the reduction axis over time, accumulating
//!   with cheap element-wise inter-VR adds — and the outputs stay
//!   contiguous, so they return to memory via DMA.
//!
//! [`recommend_mapping`] compares both costs under the analytical
//! framework and picks the cheaper one.

use serde::{Deserialize, Serialize};

use apu_sim::VecOp;
use cis_model::ModelParams;

/// How a reduction axis is mapped onto the vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ReductionMapping {
    /// Reduction elements laid out across the VR; reduced with intra-VR
    /// subgroup operations.
    Spatial,
    /// Reduction iterated over time; accumulated with inter-VR
    /// element-wise operations.
    Temporal,
}

/// Cost estimate (cycles) of performing `num_reductions` independent
/// reductions of `reduce_len` elements each, under the spatial mapping:
/// reductions are packed `⌊l / reduce_len⌋` per VR pass, each pass pays
/// one subgroup reduction, and every result leaves via a PIO store.
pub fn spatial_cost(params: &ModelParams, reduce_len: usize, num_reductions: usize) -> f64 {
    let per_vr = (params.vr_len / reduce_len.max(1)).max(1);
    let passes = num_reductions.div_ceil(per_vr);
    let per_pass = params.t_op(VecOp::AddS16) // element-wise combine into lanes
        + params.t_sg_add(reduce_len, reduce_len);
    passes as f64 * per_pass + params.t_pio_st(num_reductions)
}

/// Cost estimate (cycles) under the temporal mapping: `reduce_len`
/// element-wise accumulation steps amortized over `⌊l / out_tile⌋`
/// results per pass, with contiguous results returned by full-vector
/// DMA.
pub fn temporal_cost(params: &ModelParams, reduce_len: usize, num_reductions: usize) -> f64 {
    let per_vr = params.vr_len.min(num_reductions.max(1));
    let passes = num_reductions.div_ceil(per_vr);
    let per_pass = reduce_len as f64 * params.t_op(VecOp::AddS16);
    let store_passes = num_reductions.div_ceil(params.vr_len);
    passes as f64 * per_pass + store_passes as f64 * params.t_dma_l1_l4()
}

/// Picks the cheaper mapping for the given reduction shape.
pub fn recommend_mapping(
    params: &ModelParams,
    reduce_len: usize,
    num_reductions: usize,
) -> ReductionMapping {
    if temporal_cost(params, reduce_len, num_reductions)
        <= spatial_cost(params, reduce_len, num_reductions)
    {
        ReductionMapping::Temporal
    } else {
        ReductionMapping::Spatial
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_reductions_prefer_temporal() {
        // The matmul / RAG regime: millions of independent dot products.
        let p = ModelParams::leda_e();
        assert_eq!(
            recommend_mapping(&p, 1024, 1_000_000),
            ReductionMapping::Temporal
        );
    }

    #[test]
    fn single_wide_reduction_prefers_spatial() {
        // One reduction of the whole VR: temporal would serialize 32K
        // adds; the staged intra-VR reduction wins despite the PIO store.
        let p = ModelParams::leda_e();
        assert_eq!(
            recommend_mapping(&p, 32 * 1024, 1),
            ReductionMapping::Spatial
        );
    }

    #[test]
    fn spatial_cost_includes_pio_tax() {
        let p = ModelParams::leda_e();
        let with_many = spatial_cost(&p, 64, 10_000);
        let with_few = spatial_cost(&p, 64, 100);
        // PIO term is linear in the number of results.
        assert!(with_many > with_few + p.t_pio_st(9_000));
    }

    #[test]
    fn temporal_cost_scales_with_reduce_len() {
        let p = ModelParams::leda_e();
        // Once past the fixed DMA store term, cost is linear in the
        // accumulation depth.
        assert!(temporal_cost(&p, 8192, 32768) > 3.0 * temporal_cost(&p, 512, 32768));
    }

    #[test]
    fn crossover_exists() {
        // Somewhere between "one giant reduction" and "many small ones"
        // the recommendation flips — the point of having the model.
        let p = ModelParams::leda_e();
        let few = recommend_mapping(&p, 16 * 1024, 2);
        let many = recommend_mapping(&p, 16 * 1024, 100_000);
        assert_ne!(few, many);
    }
}
