#![warn(missing_docs)]

//! Analytical latency framework for general-purpose compute-in-SRAM
//! devices (paper §3).
//!
//! The framework parameterizes the architectural factors that dominate
//! performance on compute-in-SRAM platforms — computation latency, data
//! movement bandwidth, and (non-uniform) communication costs — and
//! predicts program latency *without* running the simulator. It is the
//! Rust equivalent of the paper's Python function library (Fig. 6): a
//! program is modeled by calling methods that mirror the GSI C++ API on a
//! [`LatencyEstimator`], which records an abstract trace and reports the
//! total latency.
//!
//! ```rust
//! use cis_model::{LatencyEstimator, ModelParams};
//!
//! let mut est = LatencyEstimator::new(ModelParams::leda_e());
//! // Model one tile of a streaming kernel.
//! for _ in 0..48 {
//!     est.fast_dma_l4_to_l2(32 * 512);
//!     est.direct_dma_l2_to_l1_32k();
//! }
//! for _ in 0..48 {
//!     est.gvml_load_16();
//!     est.gvml_add_u16();
//!     est.gvml_store_16();
//! }
//! let us = est.report_latency_us();
//! assert!(us > 0.0);
//! ```
//!
//! Because the estimator records a parameter-free trace, the same modeled
//! program can be re-evaluated under different architectural parameters
//! for design-space exploration (see [`dse`]).
//!
//! The subgroup-reduction cost (the paper's Eq. 1) is a cubic polynomial
//! in `log₂ s` whose coefficients depend linearly on `log₂ r`; the
//! coefficients are fitted by least squares against the simulator's
//! emergent staged-reduction cost (see [`reduction`]).

pub mod dse;
pub mod estimator;
pub mod params;
pub mod reduction;

pub use dse::{DesignPoint, DesignSweep};
pub use estimator::{LatencyEstimator, LatencyReport, TraceOp};
pub use params::ModelParams;
pub use reduction::SgAddModel;

/// Relative error of a prediction against a measurement, as a signed
/// fraction (`+0.02` = model predicts 2% high).
///
/// ```
/// assert!((cis_model::relative_error(102.0, 100.0) - 0.02).abs() < 1e-12);
/// ```
pub fn relative_error(predicted: f64, measured: f64) -> f64 {
    (predicted - measured) / measured
}
