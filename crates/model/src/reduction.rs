//! The Eq. 1 subgroup-reduction cost model.
//!
//! ```text
//! T_sg_add(r, s) = p₃(log₂ s)³ + p₂(log₂ s)² + p₁ log₂ s + p₀
//!          pᵢ    = αᵢ · log₂ r + βᵢ
//! ```
//!
//! The cubic term captures the multi-level shifting/alignment/accumulation
//! of hierarchical reductions; the coefficients drift with the group size
//! `r` because group-boundary masking deepens with `log₂ r`. The
//! coefficients (αᵢ, βᵢ) are experimentally determined: here they are
//! fitted by ordinary least squares against the simulator's emergent
//! staged-reduction cost ([`gvml::reduce::sg_add_cycles`]) over the full
//! (r, s) power-of-two grid.

use serde::{Deserialize, Serialize};

use apu_sim::DeviceTiming;

/// Grid of group sizes used for fitting (powers of two up to 4096, the
/// range exercised by the paper's workloads).
const FIT_LOG_R: std::ops::RangeInclusive<u32> = 1..=15;

/// Solves the normal equations `AᵀA x = Aᵀb` for a small dense system by
/// Gaussian elimination with partial pivoting. `a` is row-major with
/// `cols` columns.
fn least_squares(a: &[f64], b: &[f64], cols: usize) -> Vec<f64> {
    let rows = b.len();
    assert_eq!(a.len(), rows * cols, "design matrix shape mismatch");
    // Normal matrix and RHS.
    let mut m = vec![0.0f64; cols * (cols + 1)];
    for r in 0..rows {
        for i in 0..cols {
            for j in 0..cols {
                m[i * (cols + 1) + j] += a[r * cols + i] * a[r * cols + j];
            }
            m[i * (cols + 1) + cols] += a[r * cols + i] * b[r];
        }
    }
    // Gaussian elimination.
    for col in 0..cols {
        // pivot
        let mut piv = col;
        for r in col + 1..cols {
            if m[r * (cols + 1) + col].abs() > m[piv * (cols + 1) + col].abs() {
                piv = r;
            }
        }
        if piv != col {
            for j in 0..=cols {
                m.swap(col * (cols + 1) + j, piv * (cols + 1) + j);
            }
        }
        let d = m[col * (cols + 1) + col];
        assert!(d.abs() > 1e-12, "singular normal matrix");
        for j in 0..=cols {
            m[col * (cols + 1) + j] /= d;
        }
        for r in 0..cols {
            if r != col {
                let f = m[r * (cols + 1) + col];
                for j in 0..=cols {
                    m[r * (cols + 1) + j] -= f * m[col * (cols + 1) + j];
                }
            }
        }
    }
    (0..cols).map(|i| m[i * (cols + 1) + cols]).collect()
}

/// Fitted Eq. 1 coefficients.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SgAddModel {
    /// αᵢ for i = 0..4: slope of pᵢ in `log₂ r`.
    pub alpha: [f64; 4],
    /// βᵢ for i = 0..4: intercept of pᵢ.
    pub beta: [f64; 4],
    /// Coefficient of determination of the fit over the training grid.
    pub r_squared: f64,
}

impl SgAddModel {
    /// Fits the model against the device's staged-reduction cost over the
    /// power-of-two `(r, s)` grid.
    pub fn fit(timing: &DeviceTiming) -> SgAddModel {
        Self::fit_cost(timing, gvml::reduce::sg_add_cycles)
    }

    /// Fits the Eq. 1 form against the staged min/max-reduction cost
    /// (compare + masked select per stage instead of an add).
    pub fn fit_minmax(timing: &DeviceTiming) -> SgAddModel {
        Self::fit_cost(timing, gvml::reduce::sg_minmax_cycles)
    }

    /// Fits the Eq. 1 polynomial form against an arbitrary staged cost
    /// function over the power-of-two `(r, s)` grid.
    pub fn fit_cost(
        timing: &DeviceTiming,
        cost: fn(&DeviceTiming, usize, usize) -> u64,
    ) -> SgAddModel {
        // Build one joint least-squares problem over both log2 s and
        // log2 r: T = Σᵢ (αᵢ·log r + βᵢ)·(log s)ⁱ, 8 unknowns.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for log_r in FIT_LOG_R {
            let r = 1usize << log_r;
            for log_s in 1..=log_r {
                let s = 1usize << log_s;
                let t = cost(timing, r, s) as f64;
                let ls = log_s as f64;
                let lr = log_r as f64;
                // columns: [lr·ls³, ls³, lr·ls², ls², lr·ls, ls, lr, 1]
                a.extend_from_slice(&[
                    lr * ls * ls * ls,
                    ls * ls * ls,
                    lr * ls * ls,
                    ls * ls,
                    lr * ls,
                    ls,
                    lr,
                    1.0,
                ]);
                b.push(t);
            }
        }
        let x = least_squares(&a, &b, 8);
        let model = SgAddModel {
            alpha: [x[6], x[4], x[2], x[0]],
            beta: [x[7], x[5], x[3], x[1]],
            r_squared: 0.0,
        };
        let r2 = model.r_squared_against_cost(timing, cost);
        SgAddModel {
            r_squared: r2,
            ..model
        }
    }

    /// Predicted cycles for group size `r`, subgroup size `s`.
    ///
    /// Non-power-of-two sizes are handled with real-valued logarithms (the
    /// model is a smooth surface).
    pub fn predict(&self, r: usize, s: usize) -> f64 {
        if s <= 1 {
            // Degenerate subgroup is a plain copy; stay consistent with
            // the device behaviour.
            return 0.0;
        }
        let lr = (r.max(2) as f64).log2();
        let ls = (s as f64).log2();
        let p = |i: usize| self.alpha[i] * lr + self.beta[i];
        p(3) * ls * ls * ls + p(2) * ls * ls + p(1) * ls + p(0)
    }

    /// R² of the model against the staged-add ground-truth grid.
    pub fn r_squared_against(&self, timing: &DeviceTiming) -> f64 {
        self.r_squared_against_cost(timing, gvml::reduce::sg_add_cycles)
    }

    /// R² against an arbitrary staged cost function.
    pub fn r_squared_against_cost(
        &self,
        timing: &DeviceTiming,
        cost: fn(&DeviceTiming, usize, usize) -> u64,
    ) -> f64 {
        let mut truths = Vec::new();
        let mut preds = Vec::new();
        for log_r in FIT_LOG_R {
            let r = 1usize << log_r;
            for log_s in 1..=log_r {
                let s = 1usize << log_s;
                truths.push(cost(timing, r, s) as f64);
                preds.push(self.predict(r, s));
            }
        }
        let mean = truths.iter().sum::<f64>() / truths.len() as f64;
        let ss_tot: f64 = truths.iter().map(|t| (t - mean).powi(2)).sum();
        let ss_res: f64 = truths
            .iter()
            .zip(&preds)
            .map(|(t, p)| (t - p).powi(2))
            .sum();
        1.0 - ss_res / ss_tot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn least_squares_recovers_exact_line() {
        // y = 3x + 1
        let a = [1.0, 1.0, 2.0, 1.0, 3.0, 1.0, 4.0, 1.0];
        let b = [4.0, 7.0, 10.0, 13.0];
        let x = least_squares(&a, &b, 2);
        assert!((x[0] - 3.0).abs() < 1e-9);
        assert!((x[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn fit_is_accurate_on_training_grid() {
        let t = DeviceTiming::leda_e();
        let m = SgAddModel::fit(&t);
        assert!(
            m.r_squared > 0.95,
            "Eq.1 fit explains the staged cost poorly: R² = {}",
            m.r_squared
        );
    }

    #[test]
    fn predictions_track_ground_truth_within_tolerance() {
        let t = DeviceTiming::leda_e();
        let m = SgAddModel::fit(&t);
        for (r, s) in [(64, 64), (1024, 256), (4096, 4096), (256, 2)] {
            let truth = gvml::reduce::sg_add_cycles(&t, r, s) as f64;
            let pred = m.predict(r, s);
            let err = (pred - truth).abs() / truth;
            assert!(
                err < 0.35,
                "sg_add({r},{s}): predicted {pred:.0}, truth {truth:.0} (err {err:.2})"
            );
        }
    }

    #[test]
    fn cost_monotone_in_subgroup_size() {
        let t = DeviceTiming::leda_e();
        let m = SgAddModel::fit(&t);
        assert!(m.predict(1024, 1024) > m.predict(1024, 16));
    }

    #[test]
    fn degenerate_subgroup_is_free() {
        let t = DeviceTiming::leda_e();
        let m = SgAddModel::fit(&t);
        assert_eq!(m.predict(1024, 1), 0.0);
    }
}
