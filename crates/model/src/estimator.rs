//! The recording latency estimator (the paper's Fig. 6 API).
//!
//! Method names mirror the GSI-provided C++ API so that a modeled program
//! reads like the device program it predicts. Each call appends an
//! abstract [`TraceOp`] to the trace; [`LatencyEstimator::report_latency_us`]
//! evaluates the trace under the estimator's parameters, and
//! [`LatencyEstimator::evaluate_with`] re-evaluates the *same* program
//! under different parameters (design-space exploration).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use apu_sim::VecOp;

use crate::params::ModelParams;

/// One abstract operation in a modeled program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceOp {
    /// Fixed-latency vector command.
    Op(VecOp),
    /// L4→L3 DMA of `d` bytes.
    DmaL4L3(usize),
    /// L4↔L2 DMA of `d` bytes.
    DmaL4L2(usize),
    /// Full-vector L2→L1 DMA.
    DmaL2L1,
    /// Full-vector L4→L1 DMA.
    DmaL4L1,
    /// Full-vector L1→L4 DMA.
    DmaL1L4,
    /// `n` PIO loads.
    PioLd(usize),
    /// `n` PIO stores.
    PioSt(usize),
    /// Indexed lookup over a `σ`-entry table.
    Lookup(usize),
    /// General element shift by `k`.
    ShiftE(usize),
    /// Intra-bank shift of `4·k` elements.
    ShiftBank(usize),
    /// Subgroup reduction with group `r`, subgroup `s` (Eq. 1).
    SgAdd {
        /// Group size.
        r: usize,
        /// Subgroup size.
        s: usize,
    },
    /// Min/max subgroup reduction with group `r`, subgroup `s`.
    SgMinMax {
        /// Group size.
        r: usize,
        /// Subgroup size.
        s: usize,
    },
}

impl TraceOp {
    /// Evaluates this operation's latency in cycles under `params`.
    pub fn cycles(&self, params: &ModelParams) -> f64 {
        match *self {
            TraceOp::Op(op) => params.t_op(op),
            TraceOp::DmaL4L3(d) => params.t_dma_l4_l3(d),
            TraceOp::DmaL4L2(d) => params.t_dma_l4_l2(d),
            TraceOp::DmaL2L1 => params.t_dma_l2_l1(),
            TraceOp::DmaL4L1 => params.t_dma_l4_l1(),
            TraceOp::DmaL1L4 => params.t_dma_l1_l4(),
            TraceOp::PioLd(n) => params.t_pio_ld(n),
            TraceOp::PioSt(n) => params.t_pio_st(n),
            TraceOp::Lookup(sigma) => params.t_lookup(sigma),
            TraceOp::ShiftE(k) => params.t_shift_e(k),
            TraceOp::ShiftBank(k) => params.t_shift_bank(k),
            TraceOp::SgAdd { r, s } => params.t_sg_add(r, s),
            TraceOp::SgMinMax { r, s } => params.t_sg_minmax(r, s),
        }
    }

    /// Coarse category for report breakdowns.
    pub fn category(&self) -> &'static str {
        match self {
            TraceOp::Op(_) | TraceOp::SgAdd { .. } | TraceOp::SgMinMax { .. } => "compute",
            TraceOp::DmaL4L3(_)
            | TraceOp::DmaL4L2(_)
            | TraceOp::DmaL2L1
            | TraceOp::DmaL4L1
            | TraceOp::DmaL1L4 => "dma",
            TraceOp::PioLd(_) | TraceOp::PioSt(_) => "pio",
            TraceOp::Lookup(_) => "lookup",
            TraceOp::ShiftE(_) | TraceOp::ShiftBank(_) => "shift",
        }
    }
}

/// Evaluated latency report with per-section and per-category breakdowns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyReport {
    /// Total predicted cycles.
    pub total_cycles: f64,
    /// Total predicted latency in microseconds.
    pub total_us: f64,
    /// Cycles per user-defined section (see
    /// [`LatencyEstimator::section`]).
    pub by_section: BTreeMap<String, f64>,
    /// Cycles per operation category (`compute`, `dma`, `pio`, `lookup`,
    /// `shift`).
    pub by_category: BTreeMap<String, f64>,
}

/// Records a modeled device program and predicts its latency.
#[derive(Debug, Clone)]
pub struct LatencyEstimator {
    params: ModelParams,
    trace: Vec<(TraceOp, usize)>,
    sections: Vec<String>,
    current: usize,
}

impl LatencyEstimator {
    /// Creates an estimator for the given device parameters.
    pub fn new(params: ModelParams) -> Self {
        LatencyEstimator {
            params,
            trace: Vec::new(),
            sections: vec!["default".to_string()],
            current: 0,
        }
    }

    /// The parameters this estimator evaluates under by default.
    pub fn params(&self) -> &ModelParams {
        &self.params
    }

    /// The recorded trace.
    pub fn trace(&self) -> impl Iterator<Item = &TraceOp> {
        self.trace.iter().map(|(op, _)| op)
    }

    /// Switches the active section label; subsequent operations are
    /// attributed to it in the report (e.g. `"LD LHS"`, `"VR Ops"`,
    /// `"ST"`, matching the paper's Fig. 12 breakdown).
    pub fn section(&mut self, name: &str) {
        if let Some(i) = self.sections.iter().position(|s| s == name) {
            self.current = i;
        } else {
            self.sections.push(name.to_string());
            self.current = self.sections.len() - 1;
        }
    }

    /// Appends an arbitrary abstract operation.
    pub fn record(&mut self, op: TraceOp) {
        self.trace.push((op, self.current));
    }

    /// Appends `count` repetitions of an operation (loops in the modeled
    /// program).
    pub fn record_n(&mut self, op: TraceOp, count: usize) {
        for _ in 0..count {
            self.record(op);
        }
    }

    // ---- GSI-API-shaped recording methods (Fig. 6 names) ----

    /// `fast_dma_l4_to_l2(bytes)`.
    pub fn fast_dma_l4_to_l2(&mut self, bytes: usize) {
        self.record(TraceOp::DmaL4L2(bytes));
    }

    /// `dma_l4_to_l3(bytes)`.
    pub fn dma_l4_to_l3(&mut self, bytes: usize) {
        self.record(TraceOp::DmaL4L3(bytes));
    }

    /// `direct_dma_l2_to_l1_32k()`.
    pub fn direct_dma_l2_to_l1_32k(&mut self) {
        self.record(TraceOp::DmaL2L1);
    }

    /// `direct_dma_l4_to_l1_32k()`.
    pub fn direct_dma_l4_to_l1_32k(&mut self) {
        self.record(TraceOp::DmaL4L1);
    }

    /// `direct_dma_l1_to_l4_32k()`.
    pub fn direct_dma_l1_to_l4_32k(&mut self) {
        self.record(TraceOp::DmaL1L4);
    }

    /// `gvml_load_16()` — VR←L1 load.
    pub fn gvml_load_16(&mut self) {
        self.record(TraceOp::Op(VecOp::LdSt));
    }

    /// `gvml_store_16()` — VR→L1 store.
    pub fn gvml_store_16(&mut self) {
        self.record(TraceOp::Op(VecOp::LdSt));
    }

    /// `gvml_cpy_16()`.
    pub fn gvml_cpy_16(&mut self) {
        self.record(TraceOp::Op(VecOp::Cpy));
    }

    /// `gvml_cpy_imm_16()`.
    pub fn gvml_cpy_imm_16(&mut self) {
        self.record(TraceOp::Op(VecOp::CpyImm));
    }

    /// `gvml_cpy_subgrp_16_grp(...)`.
    pub fn gvml_cpy_subgrp_16_grp(&mut self) {
        self.record(TraceOp::Op(VecOp::CpySubgrp));
    }

    /// `gvml_cpy_16_msk()` — masked copy.
    pub fn gvml_cpy_16_msk(&mut self) {
        self.record(TraceOp::Op(VecOp::Cpy));
    }

    /// `gvml_create_grp_index_u16()`.
    pub fn gvml_create_grp_index_u16(&mut self) {
        self.record(TraceOp::Op(VecOp::CpyImm));
        self.record(TraceOp::Op(VecOp::AddU16));
    }

    /// `gvml_add_u16()`.
    pub fn gvml_add_u16(&mut self) {
        self.record(TraceOp::Op(VecOp::AddU16));
    }

    /// `gvml_add_s16()`.
    pub fn gvml_add_s16(&mut self) {
        self.record(TraceOp::Op(VecOp::AddS16));
    }

    /// `gvml_sub_s16()`.
    pub fn gvml_sub_s16(&mut self) {
        self.record(TraceOp::Op(VecOp::SubS16));
    }

    /// `gvml_mul_u16()`.
    pub fn gvml_mul_u16(&mut self) {
        self.record(TraceOp::Op(VecOp::MulU16));
    }

    /// `gvml_mul_s16()`.
    pub fn gvml_mul_s16(&mut self) {
        self.record(TraceOp::Op(VecOp::MulS16));
    }

    /// `gvml_xor_16()`.
    pub fn gvml_xor_16(&mut self) {
        self.record(TraceOp::Op(VecOp::Xor16));
    }

    /// `gvml_popcnt_16()`.
    pub fn gvml_popcnt_16(&mut self) {
        self.record(TraceOp::Op(VecOp::Popcnt16));
    }

    /// `gvml_sr_imm_16()` / `gvml_sl_imm_16()`.
    pub fn gvml_shift_imm_16(&mut self) {
        self.record(TraceOp::Op(VecOp::AShift));
    }

    /// `gvml_eq_16()`.
    pub fn gvml_eq_16(&mut self) {
        self.record(TraceOp::Op(VecOp::Eq16));
    }

    /// `gvml_lt_u16()` (and the other compare flavours).
    pub fn gvml_lt_u16(&mut self) {
        self.record(TraceOp::Op(VecOp::LtU16));
    }

    /// `gvml_count_m()`.
    pub fn gvml_count_m(&mut self) {
        self.record(TraceOp::Op(VecOp::CountM));
    }

    /// `gvml_cpy_from_mrk_16_msk()` — modeled as a count plus `n` serial
    /// FIFO extractions.
    pub fn gvml_cpy_from_mrk_16_msk(&mut self, n_marked: usize) {
        self.record(TraceOp::Op(VecOp::CountM));
        self.record(TraceOp::PioSt(n_marked));
    }

    /// `gvml_add_subgrp_s16(r, s)` — Eq. 1.
    pub fn gvml_add_subgrp_s16(&mut self, r: usize, s: usize) {
        self.record(TraceOp::SgAdd { r, s });
    }

    /// `pio_ld(n)` — `n` element loads.
    pub fn pio_ld(&mut self, n: usize) {
        self.record(TraceOp::PioLd(n));
    }

    /// `pio_st(n)` — `n` element stores.
    pub fn pio_st(&mut self, n: usize) {
        self.record(TraceOp::PioSt(n));
    }

    /// `lookup(σ)` — indexed lookup over a `σ`-entry table.
    pub fn lookup(&mut self, sigma: usize) {
        self.record(TraceOp::Lookup(sigma));
    }

    // ---- evaluation ----

    /// Evaluates the trace under this estimator's own parameters.
    pub fn report(&self) -> LatencyReport {
        self.evaluate_with(&self.params)
    }

    /// Total predicted latency in microseconds (the Fig. 6
    /// `report_latency()`).
    pub fn report_latency_us(&self) -> f64 {
        self.report().total_us
    }

    /// Re-evaluates the recorded program under different parameters.
    pub fn evaluate_with(&self, params: &ModelParams) -> LatencyReport {
        let mut total = 0.0;
        let mut by_section: BTreeMap<String, f64> = BTreeMap::new();
        let mut by_category: BTreeMap<String, f64> = BTreeMap::new();
        for (op, sec) in &self.trace {
            let c = op.cycles(params);
            total += c;
            *by_section.entry(self.sections[*sec].clone()).or_insert(0.0) += c;
            *by_category.entry(op.category().to_string()).or_insert(0.0) += c;
        }
        LatencyReport {
            total_cycles: total,
            total_us: params.cycles_to_us(total),
            by_section,
            by_category,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_program_latency() {
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        est.direct_dma_l4_to_l1_32k(); // 22272
        est.gvml_load_16(); // 29
        est.gvml_add_u16(); // 12
        est.gvml_store_16(); // 29
        est.direct_dma_l1_to_l4_32k(); // 22186
        let r = est.report();
        assert_eq!(r.total_cycles, 22272.0 + 29.0 + 12.0 + 29.0 + 22186.0);
        assert!((r.total_us - r.total_cycles / 500.0).abs() < 1e-9);
    }

    #[test]
    fn sections_attribute_costs() {
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        est.section("LD");
        est.direct_dma_l4_to_l1_32k();
        est.section("VR Ops");
        est.gvml_add_u16();
        est.gvml_add_u16();
        est.section("ST");
        est.direct_dma_l1_to_l4_32k();
        est.section("LD"); // reuse existing section
        est.direct_dma_l4_to_l1_32k();
        let r = est.report();
        assert_eq!(r.by_section["LD"], 2.0 * 22272.0);
        assert_eq!(r.by_section["VR Ops"], 24.0);
        assert_eq!(r.by_section["ST"], 22186.0);
    }

    #[test]
    fn categories_split_dma_and_compute() {
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        est.fast_dma_l4_to_l2(1000);
        est.gvml_mul_u16();
        est.pio_st(10);
        est.lookup(100);
        let r = est.report();
        assert!((r.by_category["dma"] - (0.63 * 1000.0 + 548.0)).abs() < 1e-9);
        assert_eq!(r.by_category["compute"], 115.0);
        assert_eq!(r.by_category["pio"], 610.0);
        assert!((r.by_category["lookup"] - 1344.0).abs() < 1.0);
    }

    #[test]
    fn reevaluation_under_faster_memory() {
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        est.fast_dma_l4_to_l2(65536);
        est.gvml_add_u16();
        let base = est.report();
        let fast = ModelParams::from_timing(
            apu_sim::DeviceTiming::leda_e().with_offchip_bw_scale(4.0),
            apu_sim::Frequency::LEDA_E,
            32768,
        );
        let r = est.evaluate_with(&fast);
        assert!(r.total_cycles < base.total_cycles);
        // compute portion unchanged
        assert_eq!(r.by_category["compute"], base.by_category["compute"]);
    }

    #[test]
    fn histogram_model_mirrors_fig6_shape() {
        // The Fig. 6 program: tiles of DMA loads, subgroup copies, masked
        // histogram accumulation, then result stores.
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        let total_data = 1024 * 1024; // scaled-down input
        let tile_data = 8 * 1024 * 48;
        let tiles = total_data / tile_data + 1;
        for _ in 0..tiles {
            est.section("load");
            for _ in 0..48 {
                for _ in 0..2 {
                    est.fast_dma_l4_to_l2(32 * 512);
                }
                est.direct_dma_l2_to_l1_32k();
            }
            est.section("compute");
            for _ in 0..48 {
                est.gvml_load_16();
                for _ in 0..8 {
                    est.gvml_cpy_subgrp_16_grp();
                }
                est.gvml_create_grp_index_u16();
                est.gvml_cpy_imm_16();
                for _ in 0..8 {
                    est.gvml_cpy_16_msk();
                    est.gvml_shift_imm_16();
                    est.gvml_eq_16();
                    est.gvml_cpy_from_mrk_16_msk(16);
                }
            }
            est.section("store");
            for _ in 0..8 {
                est.gvml_store_16();
                est.direct_dma_l1_to_l4_32k();
            }
        }
        let r = est.report();
        assert!(r.total_us > 0.0);
        assert!(r.by_section["load"] > 0.0);
        assert!(r.by_section["compute"] > 0.0);
        assert!(r.by_section["store"] > 0.0);
    }
}
