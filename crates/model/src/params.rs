//! Architectural parameters of the analytical framework.
//!
//! [`ModelParams`] is the analytical view of a device: the Table 4/5
//! constants *without* the second-order overheads the simulator charges
//! (per-command VCU issue, per-transaction DMA setup, bank-crossing
//! penalties). That deliberate omission is the paper's model error source
//! (§5.2.2: "the primary source of error arises from the model's
//! inability to account for memory subsystem details").

use serde::{Deserialize, Serialize};

use apu_sim::{DeviceTiming, Frequency, VecOp};

use crate::reduction::SgAddModel;

/// Analytical device parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    /// Fixed-latency operation costs (cycles), as in Tables 4–5.
    pub timing: DeviceTiming,
    /// Device clock for cycle→time conversion.
    pub clock: Frequency,
    /// Vector register length in elements (`l` in the paper).
    pub vr_len: usize,
    /// Fitted Eq. 1 coefficients for subgroup add reductions.
    pub sg_add: SgAddModel,
    /// Fitted Eq. 1-form coefficients for subgroup min/max reductions.
    pub sg_minmax: SgAddModel,
}

impl ModelParams {
    /// Parameters of the GSI Leda-E evaluated in the paper.
    pub fn leda_e() -> Self {
        let timing = DeviceTiming::leda_e();
        let sg_add = SgAddModel::fit(&timing);
        let sg_minmax = SgAddModel::fit_minmax(&timing);
        ModelParams {
            timing,
            clock: Frequency::LEDA_E,
            vr_len: 32 * 1024,
            sg_add,
            sg_minmax,
        }
    }

    /// Builds parameters from an arbitrary calibration table (used for
    /// design-space exploration); refits the Eq. 1 coefficients.
    pub fn from_timing(timing: DeviceTiming, clock: Frequency, vr_len: usize) -> Self {
        let sg_add = SgAddModel::fit(&timing);
        let sg_minmax = SgAddModel::fit_minmax(&timing);
        ModelParams {
            timing,
            clock,
            vr_len,
            sg_add,
            sg_minmax,
        }
    }

    /// Off-chip (L4) streaming bandwidth in bytes per cycle implied by the
    /// DMA slope — the `BW` of the paper's `T_DMA = d/BW + T_init`.
    pub fn l4_bytes_per_cycle(&self) -> f64 {
        self.timing.l4_bytes_per_cycle()
    }

    /// Off-chip bandwidth in GB/s.
    pub fn l4_gb_per_sec(&self) -> f64 {
        self.l4_bytes_per_cycle() * self.clock.hz() / 1e9
    }

    // ---- Table 4 analytical formulas ----

    /// `T = d/BW + T_init` for an L4→L3 DMA of `d` bytes.
    pub fn t_dma_l4_l3(&self, d: usize) -> f64 {
        self.timing.dma_l4_l3_per_byte * d as f64 + self.timing.dma_l4_l3_init
    }

    /// `T = d/BW + T_init` for an L4↔L2 DMA of `d` bytes.
    pub fn t_dma_l4_l2(&self, d: usize) -> f64 {
        self.timing.dma_l4_l2_per_byte * d as f64 + self.timing.dma_l4_l2_init
    }

    /// Full-vector L2→L1 DMA.
    pub fn t_dma_l2_l1(&self) -> f64 {
        self.timing.dma_l2_l1 as f64
    }

    /// Full-vector L4→L1 DMA.
    pub fn t_dma_l4_l1(&self) -> f64 {
        self.timing.dma_l4_l1 as f64
    }

    /// Full-vector L1→L4 DMA.
    pub fn t_dma_l1_l4(&self) -> f64 {
        self.timing.dma_l1_l4 as f64
    }

    /// `T = n · T_pio_ld` for `n` PIO loads.
    pub fn t_pio_ld(&self, n: usize) -> f64 {
        (self.timing.pio_ld_per_elem * n as u64) as f64
    }

    /// `T = n · T_pio_st` for `n` PIO stores.
    pub fn t_pio_st(&self, n: usize) -> f64 {
        (self.timing.pio_st_per_elem * n as u64) as f64
    }

    /// `T = C·σ + T_init` for an indexed lookup over a `sigma`-entry
    /// table.
    pub fn t_lookup(&self, sigma: usize) -> f64 {
        self.timing.lookup_per_entry * sigma as f64 + self.timing.lookup_init
    }

    /// `T = C·k` for a general element shift of magnitude `k`.
    pub fn t_shift_e(&self, k: usize) -> f64 {
        (self.timing.shift_e_per_elem * k as u64) as f64
    }

    /// `T = C + k` for an intra-bank shift of `4·k` elements.
    pub fn t_shift_bank(&self, k: usize) -> f64 {
        (self.timing.shift_bank_base + self.timing.shift_bank_per_unit * k as u64) as f64
    }

    /// Fixed-latency vector command cost.
    pub fn t_op(&self, op: VecOp) -> f64 {
        self.timing.op_cycles(op) as f64
    }

    /// Eq. 1: subgroup-reduction cost for group size `r`, subgroup size
    /// `s`.
    pub fn t_sg_add(&self, r: usize, s: usize) -> f64 {
        self.sg_add.predict(r, s)
    }

    /// Eq. 1 form for the min/max subgroup reductions.
    pub fn t_sg_minmax(&self, r: usize, s: usize) -> f64 {
        self.sg_minmax.predict(r, s)
    }

    /// Converts cycles to microseconds under this device clock.
    pub fn cycles_to_us(&self, cycles: f64) -> f64 {
        cycles / self.clock.hz() * 1e6
    }
}

impl Default for ModelParams {
    fn default() -> Self {
        ModelParams::leda_e()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formulas_match_table4_analytical_column() {
        let p = ModelParams::leda_e();
        assert!((p.t_dma_l4_l3(100) - (0.19 * 100.0 + 41164.0)).abs() < 1e-9);
        assert!((p.t_dma_l4_l2(1000) - (0.63 * 1000.0 + 548.0)).abs() < 1e-9);
        assert_eq!(p.t_dma_l2_l1(), 386.0);
        assert_eq!(p.t_dma_l4_l1(), 22272.0);
        assert_eq!(p.t_dma_l1_l4(), 22186.0);
        assert_eq!(p.t_pio_ld(3), 171.0);
        assert_eq!(p.t_pio_st(3), 183.0);
        assert!((p.t_lookup(10) - (71.5 + 629.0)).abs() < 1e-9);
        assert_eq!(p.t_shift_e(2), 746.0);
        assert_eq!(p.t_shift_bank(8), 16.0);
        assert_eq!(p.t_op(VecOp::MulU16), 115.0);
    }

    #[test]
    fn bandwidth_is_sub_gigabyte_per_stream() {
        let p = ModelParams::leda_e();
        // 1/0.63 B/cyc at 500 MHz ≈ 0.79 GB/s per DMA stream.
        assert!((p.l4_gb_per_sec() - 0.7937).abs() < 0.01);
    }

    #[test]
    fn cycles_to_us() {
        let p = ModelParams::leda_e();
        assert!((p.cycles_to_us(500.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_timing_refits_reduction_model() {
        let t = DeviceTiming::leda_e().with_compute_scale(2.0);
        let p = ModelParams::from_timing(t, Frequency::LEDA_E, 32768);
        // Slower adds make reductions slower in the refitted model too.
        assert!(p.t_sg_add(1024, 1024) > ModelParams::leda_e().t_sg_add(1024, 1024));
    }
}
