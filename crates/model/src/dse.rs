//! Design-space exploration on top of the analytical framework.
//!
//! Because a modeled program is a parameter-free trace, it can be
//! re-evaluated under many candidate devices. [`DesignSweep`] scans
//! off-chip bandwidth, compute speed, and clock frequency multipliers and
//! reports the predicted latency at each point — the "architectural
//! design space exploration by enabling the tuning of key design
//! parameters" contribution of the paper (§1), used to inform
//! next-generation in-SRAM architectures.

use serde::{Deserialize, Serialize};

use apu_sim::{DeviceTiming, Frequency};

use crate::estimator::LatencyEstimator;
use crate::params::ModelParams;

/// One candidate device in a sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DesignPoint {
    /// Off-chip bandwidth multiplier (1.0 = Leda-E DDR).
    pub bw_scale: f64,
    /// Compute latency multiplier (< 1.0 = faster bit processors).
    pub compute_scale: f64,
    /// Clock frequency multiplier.
    pub clock_scale: f64,
    /// Predicted latency in microseconds for the swept program.
    pub predicted_us: f64,
}

/// Sweeps a modeled program across candidate devices.
#[derive(Debug, Clone)]
pub struct DesignSweep {
    base_timing: DeviceTiming,
    base_clock: Frequency,
    vr_len: usize,
    bw_scales: Vec<f64>,
    compute_scales: Vec<f64>,
    clock_scales: Vec<f64>,
}

impl DesignSweep {
    /// Creates a sweep anchored at the Leda-E configuration.
    pub fn new() -> Self {
        DesignSweep {
            base_timing: DeviceTiming::leda_e(),
            base_clock: Frequency::LEDA_E,
            vr_len: 32 * 1024,
            bw_scales: vec![1.0],
            compute_scales: vec![1.0],
            clock_scales: vec![1.0],
        }
    }

    /// Sets the off-chip bandwidth multipliers to scan.
    pub fn bw_scales(mut self, scales: &[f64]) -> Self {
        self.bw_scales = scales.to_vec();
        self
    }

    /// Sets the compute latency multipliers to scan.
    pub fn compute_scales(mut self, scales: &[f64]) -> Self {
        self.compute_scales = scales.to_vec();
        self
    }

    /// Sets the clock multipliers to scan.
    pub fn clock_scales(mut self, scales: &[f64]) -> Self {
        self.clock_scales = scales.to_vec();
        self
    }

    /// Evaluates the recorded program at every point of the cross
    /// product, in deterministic order.
    pub fn run(&self, program: &LatencyEstimator) -> Vec<DesignPoint> {
        let mut out = Vec::new();
        for &bw in &self.bw_scales {
            for &cs in &self.compute_scales {
                for &clk in &self.clock_scales {
                    let timing = self
                        .base_timing
                        .clone()
                        .with_offchip_bw_scale(bw)
                        .with_compute_scale(cs);
                    let clock = Frequency::from_hz(self.base_clock.hz() * clk);
                    let params = ModelParams::from_timing(timing, clock, self.vr_len);
                    let report = program.evaluate_with(&params);
                    out.push(DesignPoint {
                        bw_scale: bw,
                        compute_scale: cs,
                        clock_scale: clk,
                        predicted_us: report.total_us,
                    });
                }
            }
        }
        out
    }
}

impl Default for DesignSweep {
    fn default() -> Self {
        DesignSweep::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn memory_bound_program() -> LatencyEstimator {
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        for _ in 0..100 {
            est.fast_dma_l4_to_l2(65536);
            est.gvml_add_u16();
        }
        est
    }

    fn compute_bound_program() -> LatencyEstimator {
        let mut est = LatencyEstimator::new(ModelParams::leda_e());
        est.fast_dma_l4_to_l2(65536);
        for _ in 0..1000 {
            est.gvml_mul_s16();
        }
        est
    }

    #[test]
    fn bandwidth_helps_memory_bound_programs() {
        let sweep = DesignSweep::new().bw_scales(&[1.0, 4.0]);
        let pts = sweep.run(&memory_bound_program());
        assert_eq!(pts.len(), 2);
        assert!(pts[1].predicted_us < pts[0].predicted_us * 0.5);
    }

    #[test]
    fn bandwidth_barely_helps_compute_bound_programs() {
        let sweep = DesignSweep::new().bw_scales(&[1.0, 4.0]);
        let pts = sweep.run(&compute_bound_program());
        assert!(pts[1].predicted_us > pts[0].predicted_us * 0.8);
    }

    #[test]
    fn compute_scaling_helps_compute_bound_programs() {
        let sweep = DesignSweep::new().compute_scales(&[1.0, 0.5]);
        let pts = sweep.run(&compute_bound_program());
        assert!(pts[1].predicted_us < pts[0].predicted_us * 0.7);
    }

    #[test]
    fn clock_scaling_helps_everything() {
        let sweep = DesignSweep::new().clock_scales(&[1.0, 2.0]);
        let pts = sweep.run(&memory_bound_program());
        assert!((pts[1].predicted_us - pts[0].predicted_us / 2.0).abs() < 1e-9);
    }

    #[test]
    fn cross_product_order_is_deterministic() {
        let sweep = DesignSweep::new()
            .bw_scales(&[1.0, 2.0])
            .compute_scales(&[1.0, 0.5]);
        let pts = sweep.run(&memory_bound_program());
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[0].bw_scale, 1.0);
        assert_eq!(pts[0].compute_scale, 1.0);
        assert_eq!(pts[3].bw_scale, 2.0);
        assert_eq!(pts[3].compute_scale, 0.5);
    }
}
