//! SLO study: goodput under per-tenant latency SLOs, SLO-aware
//! scheduling vs. naive FIFO, on seed-deterministic multi-tenant traces.
//!
//! Three burst scenarios — periodic burst, linear ramp, heavy-tailed
//! arrivals — each mix a latency-sensitive *interactive* tenant and a
//! best-effort *batch* tenant with a scenario-specific *aggressor*
//! stream that pushes the queue past capacity. The same
//! [`apu_sim::TrafficSpec`] trace (same seed, same arrivals) is served
//! twice through a [`rag::ShardedRagServer`]:
//!
//! * **fifo** — the historical scheduler: strict `(priority, arrival)`
//!   order, no tenant weights, no deadlines, no admission control;
//! * **slo** — [`apu_sim::SchedPolicy::SloAware`]: weighted fair-share
//!   across tenants (interactive carries 8× the batch weight),
//!   EDF-ordered batch membership, per-query TTLs that shed doomed
//!   work at its deadline, and admission control bounding the backlog.
//!
//! *Goodput-under-SLO* counts only the interactive completions that
//! finish within the tenant's SLO; the table also reports best-effort
//! served counts, shed work, and per-tenant p50/p99. The SLO arm runs
//! twice at the same seed and the binary asserts the two runs agree
//! completion-for-completion — the determinism the A/B comparison
//! rests on. `--smoke` runs one scenario at reduced volume for CI;
//! `--shards N` (default 1) widens the cluster and, for `N > 1`, arms
//! tail-latency hedging in the SLO configuration.

use std::time::Duration;

use apu_sim::trace::prometheus_text;
use apu_sim::{
    AdmissionControl, ArrivalProcess, ExecMode, Priority, QueueConfig, SchedPolicy, SimConfig,
    TenantId, TenantTraffic, TrafficSpec, WorkloadTrace,
};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::corpus::EMBED_DIM;
use rag::{CorpusSpec, EmbeddingStore, QuerySpec, ServeConfig, ShardedRagServer};

/// Serving batch cap for the study (both arms): small enough that an
/// overloaded run spans dozens of dispatch rounds, so queueing — not a
/// single giant batch — dominates the latency distribution.
const MAXB: usize = 4;

const INTERACTIVE: TenantId = TenantId::new(1);
const BATCH: TenantId = TenantId::new(2);
const AGGRESSOR: TenantId = TenantId::new(3);

fn main() {
    let cfg = cis_bench::parse_args();
    let smoke = std::env::args().any(|a| a == "--smoke");

    // The corpus sets the per-batch service time; it must dwarf the
    // batch window so queueing (not batching) dominates under overload.
    let corpus_bytes = if smoke {
        128.0e6 as u64
    } else {
        (10.0e9 * cfg.scale).max(512.0e6) as u64
    };
    let store = EmbeddingStore::size_only(CorpusSpec::from_corpus_bytes(corpus_bytes), cfg.seed);
    let shards = cfg.shards.max(1);
    let total_queries = if smoke { 150 } else { 400 };

    // Calibrate offered load to the cluster's amortized service
    // capacity so "overload" means the same thing at every --scale.
    let shard0 = store.shards(shards).remove(0).store;
    let (per_query_s, batch_service) = {
        let mut dev = apu_sim::ApuDevice::try_new(sim()).expect("default config is valid");
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let batch: Vec<Vec<i16>> = (0..MAXB).map(query).collect();
        let r = rag::retrieve_batch(&mut dev, &mut hbm, &shard0, &batch, 5)
            .expect("probe batch retrieval");
        let total_s = r.breakdown.total_ms() / 1e3;
        (total_s / MAXB as f64, total_s)
    };
    // Every device core serves a full batch concurrently, so cluster
    // capacity is cores x the amortized per-query rate (x shards, but
    // fan-out also multiplies the work by shards — they cancel).
    let capacity_qps = sim().cores as f64 / per_query_s;
    // Light-load latency is one batch window plus one batch service;
    // the SLO grants 2x that budget before a completion stops counting.
    let batch_window = Duration::from_millis(2);
    let slo = 2 * (batch_window + Duration::from_secs_f64(batch_service));

    section(&format!(
        "SLO study: {} corpus, {shards} shard(s), capacity ~{capacity_qps:.0} QPS, \
         interactive SLO {:.2} ms (timing-only)",
        cis_bench::fmt_bytes(corpus_bytes),
        slo.as_secs_f64() * 1e3,
    ));

    let scenarios: &[&str] = if smoke {
        &["burst"]
    } else {
        &["burst", "ramp", "heavy-tail"]
    };
    let mut headlines = Vec::new();
    for &scenario in scenarios {
        // Horizon sized so capacity alone could serve the query budget;
        // the scenarios then offer roughly 2x that.
        let horizon = Duration::from_secs_f64(total_queries as f64 / capacity_qps);
        let spec = traffic(scenario, capacity_qps, slo, horizon);
        let trace = spec.generate(cfg.seed, horizon);
        assert_eq!(
            trace,
            spec.generate(cfg.seed, horizon),
            "trace generation must be deterministic in the seed"
        );

        let fifo = run_arm(&store, shards, &trace, fifo_config(batch_window), false);
        let slo_a = run_arm(
            &store,
            shards,
            &trace,
            slo_config(batch_window, shards),
            true,
        );
        let slo_b = run_arm(
            &store,
            shards,
            &trace,
            slo_config(batch_window, shards),
            true,
        );
        assert_eq!(
            slo_a.outcomes, slo_b.outcomes,
            "two SLO-arm runs at one seed must agree completion-for-completion"
        );

        section(&format!(
            "scenario {scenario}: {} arrivals over {:.0} ms",
            trace.events.len(),
            horizon.as_secs_f64() * 1e3,
        ));
        let mut rows = Vec::new();
        for (arm, run) in [("fifo", &fifo), ("slo", &slo_a)] {
            for (name, tenant) in tenant_axis() {
                let t = run.tenant(tenant, slo);
                rows.push(vec![
                    arm.to_string(),
                    name.to_string(),
                    format!("{}", t.offered),
                    format!("{}", t.served),
                    format!("{}", t.shed),
                    if tenant == INTERACTIVE {
                        format!("{}", t.within_slo)
                    } else {
                        "-".to_string()
                    },
                    format!("{:.2}", t.p50.as_secs_f64() * 1e3),
                    format!("{:.2}", t.p99.as_secs_f64() * 1e3),
                ]);
            }
        }
        print_table(
            &[
                "arm", "tenant", "offered", "served", "shed", "in-SLO", "p50 (ms)", "p99 (ms)",
            ],
            &rows,
        );

        let fifo_good = fifo.tenant(INTERACTIVE, slo).within_slo;
        let slo_good = slo_a.tenant(INTERACTIVE, slo).within_slo;
        println!(
            "Interactive goodput-under-SLO: fifo {fifo_good}, slo {slo_good} \
             ({:+} queries); SLO arm deterministic across two runs.",
            slo_good as i64 - fifo_good as i64
        );
        headlines.push((scenario, fifo_good, slo_good));

        if scenario == scenarios[0] {
            println!();
            println!("Per-tenant series from the SLO arm's Prometheus export:");
            for line in slo_a
                .prometheus
                .lines()
                .filter(|l| l.starts_with("apu_tenant_"))
            {
                println!("  {line}");
            }
        }
        println!();
    }

    section("summary: interactive goodput-under-SLO (fifo -> slo)");
    for (scenario, fifo_good, slo_good) in &headlines {
        println!(
            "  {scenario:<10} {fifo_good:>4} -> {slo_good:<4} ({:+})",
            *slo_good as i64 - *fifo_good as i64
        );
    }
    println!();
    println!("FIFO serves the backlog in arrival order, so every burst parks the");
    println!("interactive tenant behind the aggressor flood and its SLO budget");
    println!("drains in the queue. The SLO-aware engine keeps the interactive");
    println!("share available (weighted fair queueing), sheds doomed work at its");
    println!("deadline instead of serving it late, and bounds the backlog with");
    println!("admission control - trading best-effort completions for goodput.");
}

fn tenant_axis() -> [(&'static str, TenantId); 3] {
    [
        ("interactive", INTERACTIVE),
        ("batch", BATCH),
        ("aggressor", AGGRESSOR),
    ]
}

/// The scenario's traffic mix: interactive + batch tenants are common,
/// the aggressor stream is what differs.
fn traffic(scenario: &str, capacity_qps: f64, slo: Duration, horizon: Duration) -> TrafficSpec {
    let aggressor = match scenario {
        // Four burst windows per run, each offering 6x capacity for a
        // quarter of its period: mean aggressor load ~1.7x capacity.
        // The off-burst rate stays high enough that inter-arrival gaps
        // cannot step over a whole burst window.
        "burst" => ArrivalProcess::Burst {
            base_qps: 0.3 * capacity_qps,
            burst_qps: 6.0 * capacity_qps,
            period: horizon / 4,
            burst_len: horizon / 16,
        },
        "ramp" => ArrivalProcess::Ramp {
            start_qps: 0.1 * capacity_qps,
            end_qps: 4.0 * capacity_qps,
        },
        "heavy-tail" => ArrivalProcess::HeavyTailed {
            rate_qps: 1.5 * capacity_qps,
            alpha: 1.15,
        },
        other => unreachable!("unknown scenario {other}"),
    };
    TrafficSpec::new(vec![
        TenantTraffic::new(
            INTERACTIVE,
            ArrivalProcess::Poisson {
                rate_qps: 0.30 * capacity_qps,
            },
        )
        .slo(slo),
        TenantTraffic::new(
            BATCH,
            ArrivalProcess::Poisson {
                rate_qps: 0.20 * capacity_qps,
            },
        ),
        TenantTraffic::new(AGGRESSOR, aggressor),
    ])
}

/// The historical scheduler: strict FIFO within priority, no SLO
/// machinery at all.
fn fifo_config(batch_window: Duration) -> ServeConfig {
    ServeConfig {
        batch_window,
        max_batch: MAXB,
        // Both arms take the whole open-loop trace up front; backlog
        // policy is the scheduler's job, not the submission bound's.
        queue: QueueConfig::default().with_max_pending(4096),
        ..ServeConfig::default()
    }
}

/// The SLO-aware engine: weighted fair share, EDF batch membership,
/// admission control, and (when sharded) tail-latency hedging.
fn slo_config(batch_window: Duration, shards: usize) -> ServeConfig {
    ServeConfig {
        batch_window,
        max_batch: MAXB,
        queue: QueueConfig::default()
            .with_max_pending(4096)
            .with_scheduler(SchedPolicy::SloAware)
            .with_tenant_weight(INTERACTIVE, 8)
            .with_tenant_weight(BATCH, 1)
            .with_tenant_weight(AGGRESSOR, 1)
            .with_admission(AdmissionControl::new(6 * MAXB, 24 * MAXB)),
        hedge: (shards > 1).then_some(batch_window),
        ..ServeConfig::default()
    }
}

/// One arm's outcome: the raw per-query results (for the determinism
/// assertion) plus the Prometheus export.
struct ArmRun {
    /// `(ticket, tenant, served, latency)` per query, submission order.
    outcomes: Vec<(u64, u64, bool, Duration)>,
    prometheus: String,
}

struct TenantRow {
    offered: usize,
    served: usize,
    shed: usize,
    within_slo: usize,
    p50: Duration,
    p99: Duration,
}

impl ArmRun {
    fn tenant(&self, tenant: TenantId, slo: Duration) -> TenantRow {
        let of_tenant: Vec<_> = self
            .outcomes
            .iter()
            .filter(|(_, t, _, _)| *t == tenant.get())
            .collect();
        let mut lat: Vec<Duration> = of_tenant
            .iter()
            .filter(|(_, _, ok, _)| *ok)
            .map(|(_, _, _, l)| *l)
            .collect();
        lat.sort();
        let pick = |q: f64| {
            if lat.is_empty() {
                Duration::ZERO
            } else {
                lat[((lat.len() - 1) as f64 * q).round() as usize]
            }
        };
        let served = lat.len();
        TenantRow {
            offered: of_tenant.len(),
            served,
            shed: of_tenant.len() - served,
            within_slo: lat.iter().filter(|&&l| l <= slo).count(),
            p50: pick(0.50),
            p99: pick(0.99),
        }
    }
}

/// Replays the trace through one server configuration.
fn run_arm(
    store: &EmbeddingStore,
    shards: usize,
    trace: &WorkloadTrace,
    cfg: ServeConfig,
    slo_arm: bool,
) -> ArmRun {
    let mut server =
        ShardedRagServer::new(store, shards, sim(), cfg).expect("cluster construction");
    for (i, e) in trace.events.iter().enumerate() {
        let mut q = QuerySpec::new(e.at, query(i)).tenant(e.tenant);
        if e.priority != Priority::Normal {
            q = q.priority(e.priority);
        }
        // Only the SLO engine knows about deadlines: a query that cannot
        // start within its SLO is shed there instead of served late.
        if slo_arm {
            if let Some(deadline) = e.deadline {
                q = q.ttl(deadline - e.at);
            }
        }
        server.submit_query(q).expect("submit");
    }
    let report = server.drain().expect("drain");
    let mut outcomes: Vec<(u64, u64, bool, Duration)> = report
        .completions
        .iter()
        .map(|c| (c.ticket.id(), c.tenant.get(), c.is_ok(), c.latency()))
        .collect();
    outcomes.sort_by_key(|&(id, ..)| id);
    ArmRun {
        outcomes,
        prometheus: prometheus_text(&report.queue, None),
    }
}

fn sim() -> SimConfig {
    SimConfig::default()
        .with_l4_bytes(1 << 20)
        .with_exec_mode(ExecMode::TimingOnly)
}

fn query(i: usize) -> Vec<i16> {
    vec![(i as i16 % 7) - 3; EMBED_DIM]
}
