//! Figure 14: end-to-end RAG inference time across platforms and corpus
//! sizes — CPU (modeled Xeon + optional measured host scan), GPU model,
//! and the simulated compute-in-SRAM device at every optimization
//! variant.

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{CorpusSpec, EmbeddingStore, Platform, RagPipeline, RagVariant};

fn main() {
    let cfg = cis_bench::parse_args();
    let pipeline = RagPipeline::paper();
    // Always the paper's corpus points: the retrieval side runs
    // timing-only, so even 200 GB costs milliseconds of host time.
    let specs: Vec<CorpusSpec> = CorpusSpec::paper_points().to_vec();

    section("Figure 14: end-to-end RAG time-to-interactive (ms)");
    println!(
        "generation (Llama-3.1-8B TTFT on a dedicated GPU): {:.0} ms\n",
        pipeline.generation.ttft_ms()
    );

    let platforms: Vec<Platform> = {
        let mut p = vec![Platform::CpuModel, Platform::Gpu];
        p.extend(RagVariant::ALL.into_iter().map(Platform::Apu));
        p
    };

    let mut rows = Vec::new();
    for spec in &specs {
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(1 << 20)
                .with_exec_mode(ExecMode::TimingOnly),
        );
        let store = EmbeddingStore::size_only(*spec, cfg.seed);
        let q = vec![1i16; rag::corpus::EMBED_DIM];
        let mut cpu_retrieval = 0.0;
        for platform in &platforms {
            let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
            let e2e = pipeline
                .run(*platform, &store, &q, &mut dev, &mut hbm)
                .expect("pipeline");
            if matches!(platform, Platform::CpuModel) {
                cpu_retrieval = e2e.retrieval_ms;
            }
            rows.push(vec![
                spec.label(),
                e2e.platform.clone(),
                format!("{:.1}", e2e.retrieval_ms),
                format!("{:.0}", e2e.total_ms()),
                format!("{:.0}%", e2e.retrieval_ms / e2e.total_ms() * 100.0),
                if cpu_retrieval > 0.0 {
                    format!("{:.1}x", cpu_retrieval / e2e.retrieval_ms)
                } else {
                    "-".into()
                },
            ]);
        }
        rows.push(vec!["".into(); 6]);
    }
    print_table(
        &[
            "corpus",
            "platform",
            "retrieval (ms)",
            "e2e (ms)",
            "retrieval share",
            "retrieval speedup vs CPU",
        ],
        &rows,
    );
    println!("Paper anchors: retrieval speedups 6.3x/4.8x/6.6x at 10/50/200 GB,");
    println!("end-to-end gains 1.05x/1.15x/1.75x, GPU-level e2e latency.");
}
