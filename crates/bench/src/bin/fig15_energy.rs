//! Figure 15: top-5 retrieval energy — the simulated APU vs the modeled
//! A6000 GPU, plus the APU energy breakdown by rail.

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{CorpusSpec, EmbeddingStore, Platform, RagPipeline, RagVariant};

fn main() {
    let cfg = cis_bench::parse_args();
    let pipeline = RagPipeline::paper();
    let specs = CorpusSpec::paper_points();

    section("Figure 15: top-5 retrieval energy, APU vs A6000");
    let mut rows = Vec::new();
    let mut fractions = Vec::new();
    for spec in &specs {
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(1 << 20)
                .with_exec_mode(ExecMode::TimingOnly),
        );
        let store = EmbeddingStore::size_only(*spec, cfg.seed);
        let q = vec![1i16; rag::corpus::EMBED_DIM];
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let apu = pipeline
            .run(
                Platform::Apu(RagVariant::AllOpts),
                &store,
                &q,
                &mut dev,
                &mut hbm,
            )
            .expect("apu");
        let mut hbm2 = MemorySystem::new(DramSpec::hbm2e_16gb());
        let gpu = pipeline
            .run(Platform::Gpu, &store, &q, &mut dev, &mut hbm2)
            .expect("gpu");
        let e_apu = apu.retrieval_energy_j.unwrap();
        let e_gpu = gpu.retrieval_energy_j.unwrap();
        rows.push(vec![
            spec.label(),
            format!("{e_apu:.2} J"),
            format!("{e_gpu:.1} J"),
            format!("{:.1}x", e_gpu / e_apu),
        ]);
        fractions.push((spec.label(), apu.apu_energy_fractions.unwrap()));
    }
    print_table(&["corpus", "APU energy", "GPU energy", "reduction"], &rows);
    println!("Paper band: 54.4x - 117.9x energy reduction.");

    section("APU energy breakdown (rail fractions)");
    let mut rows = Vec::new();
    for (label, f) in fractions {
        rows.push(vec![
            label,
            format!("{:.1}%", f[0] * 100.0),
            format!("{:.1}%", f[1] * 100.0),
            format!("{:.1}%", f[2] * 100.0),
            format!("{:.1}%", f[3] * 100.0),
            format!("{:.3}%", f[4] * 100.0),
        ]);
    }
    print_table(
        &["corpus", "static", "compute", "DRAM", "other", "cache"],
        &rows,
    );
    println!();
    println!("Paper at 200 GB: static 71.4%, compute 24.7%, DRAM 2.7%,");
    println!("other 1.1%, cache 0.005% — static power dominates.");
}
