//! Extension study: amortizing the RAG retrieval cost across a query
//! batch (beyond the paper's single-query serving). One embedding
//! stream and one on-chip ingress per plane serve up to 12 resident
//! per-query accumulators.

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{retrieve_batch, CorpusSpec, EmbeddingStore};

fn main() {
    let cfg = cis_bench::parse_args();
    let spec = CorpusSpec::from_corpus_bytes(10_000_000_000);
    let store = EmbeddingStore::size_only(spec, cfg.seed);
    let queries: Vec<Vec<i16>> = (0..rag::MAX_BATCH)
        .map(|i| vec![(i as i16 % 7) - 3; rag::corpus::EMBED_DIM])
        .collect();

    section("extension: query batching on the 10 GB corpus (timing-only)");
    let mut rows = Vec::new();
    for &batch in &[1usize, 2, 4, 8, 12] {
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(1 << 20)
                .with_exec_mode(ExecMode::TimingOnly),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let r = retrieve_batch(&mut dev, &mut hbm, &store, &queries[..batch], 5)
            .expect("batch retrieval");
        rows.push(vec![
            format!("{batch}"),
            format!("{:.2}", r.breakdown.total_ms()),
            format!("{:.3}", r.per_query_ms()),
            format!("{:.2}", r.breakdown.calc_distance_ms / batch as f64),
            format!("{:.2}", r.breakdown.load_embedding_ms / batch as f64),
        ]);
    }
    print_table(
        &[
            "batch",
            "batch total (ms)",
            "per-query (ms)",
            "distance/query",
            "embed-stream/query",
        ],
        &rows,
    );
    println!();
    println!("The shared plane ingress and single HBM stream amortize; the");
    println!("per-query floor is the irreducible multiply-accumulate work.");
}
