//! Live-corpus churn study: serving a bursty interactive query stream
//! while background compaction runs on the same device queue, comparing
//! the default low-priority compaction against compaction submitted at
//! the queries' own (interactive) priority.
//!
//! A [`rag::ShardedRagServer::new_mutable`] cluster serves periodic
//! bursts of interactive queries. Between bursts a scripted churn
//! stream (fixed inserts + deletes, identical in both arms) mutates the
//! corpus, so every burst pins a fresh snapshot and delta segments
//! accumulate; one compaction per shard is requested to arrive exactly
//! at a mid-stream burst. The two arms differ in **exactly one bit**:
//!
//! * **low** — [`rag::ServeConfig::compaction_priority`] stays at its
//!   default [`apu_sim::Priority::Low`]: the merge yields to every
//!   arrived query and runs in the idle gap after the burst drains;
//! * **interactive** — compaction submits at [`apu_sim::Priority::Normal`],
//!   the queries' own class, so FIFO order lets the merge (a full
//!   base-segment stream through HBM, hundreds of query service times
//!   long) claim a core at the burst's head and the burst drains on the
//!   remaining cores.
//!
//! *Goodput-under-SLO* counts completions within an SLO fixed from the
//! calibration probe — between a full-width and a one-core-short burst
//! drain — so the displaced burst shows up as lost goodput while the
//! unperturbed bursts stay inside. The low arm runs twice at the same
//! seed and the binary asserts the runs agree
//! completion-for-completion and export byte-identical `apu_corpus_*`
//! series. `--smoke` runs a reduced volume, enforces a strict goodput
//! gap (low > interactive), and writes `BENCH_serve_mutation.json`.

use std::any::Any;
use std::time::Duration;

use apu_sim::{ExecMode, Priority, QueueConfig, SimConfig};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::corpus::EMBED_DIM;
use rag::{
    CorpusSpec, CorpusStats, EmbeddingStore, MutableCorpus, QuerySpec, ServeConfig,
    ShardedRagServer,
};

/// Serving batch cap; every burst shares one snapshot, so its queries
/// coalesce into full batches.
const MAXB: usize = 4;

/// Queries per burst (all arriving at the burst instant).
const BURST: usize = 96;

/// Host-side writes between consecutive bursts: the fixed churn both
/// arms replay identically.
const INSERTS_PER_GAP: usize = 8;
const DELETES_PER_GAP: usize = 3;

// The compaction arrives at the *last* burst (the slowest profile —
// every delta segment the churn accumulated is still live), so the SLO
// calibrated against that profile holds for every earlier burst too.

fn main() {
    let cfg = cis_bench::parse_args();
    let wall_start = std::time::Instant::now();

    // The base size is per *shard*: the study's mechanism needs each
    // shard's merge (proportional to its base) to outweigh a burst
    // drain (dominated by per-delta scan overhead, independent of the
    // shard count), so sharding must not shrink the merge.
    let shards = cfg.shards.max(1);
    let per_shard_bytes = if cfg.smoke {
        96.0e6 as u64
    } else {
        (10.0e9 * cfg.scale).max(512.0e6) as u64
    };
    let corpus_bytes = per_shard_bytes * shards as u64;
    let store = EmbeddingStore::size_only(CorpusSpec::from_corpus_bytes(corpus_bytes), cfg.seed);
    let bursts = if cfg.smoke { 4 } else { 8 };

    // Calibrate on a scratch device — everything is a deterministic
    // function of the corpus shape and churn script. The batch probe
    // replays the full churn (base + every delta segment the last
    // burst will see) through the snapshot scan path, because each
    // delta segment costs a whole extra scan pipeline, not just its
    // share of chunks.
    let mut probe_dev = apu_sim::ApuDevice::try_new(sim()).expect("default config is valid");
    let mut probe_hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let batch: Vec<Vec<i16>> = (0..MAXB).map(query).collect();
    let batch_service = {
        let mut c = MutableCorpus::new(&store, shards);
        let mut del = 0u32;
        for b in 0..bursts {
            for w in 0..INSERTS_PER_GAP {
                c.insert(&store.query(10_000 + (b * INSERTS_PER_GAP + w) as u64))
                    .expect("probe insert");
            }
            for _ in 0..DELETES_PER_GAP {
                assert!(c.delete(del));
                del += 1;
            }
            c.snapshot();
        }
        let snap = c.snapshot();
        let payloads: Vec<Box<dyn Any>> = batch
            .iter()
            .cloned()
            .map(|q| Box::new(q) as Box<dyn Any>)
            .collect();
        let (report, _, _) = rag::mutable::run_boxed_snapshot_batch(
            &mut probe_dev,
            &mut probe_hbm,
            &snap.shards[0],
            None,
            payloads,
            5,
        )
        .expect("probe snapshot batch");
        report.duration
    };
    let merge_service = {
        let mut c = MutableCorpus::new(&store, shards);
        // Consecutive doc ids round-robin across shards, so `shards`
        // inserts guarantee shard 0 has a delta to compact.
        for i in 0..shards {
            c.insert(&store.query(1 + i as u64)).expect("probe insert");
        }
        c.snapshot();
        c.request_compaction(0, Duration::ZERO)
            .expect("probe request")
            .expect("one sealed delta to compact");
        let plans = c.take_plans();
        let (report, _) =
            rag::mutable::run_compaction_task(&mut probe_dev, &mut probe_hbm, &plans[0])
                .expect("probe merge");
        report.duration
    };

    // A burst is `BURST / MAXB` batches served `cores` at a time; the
    // SLO sits halfway between a full-width drain and a drain that lost
    // one core to the merge, so only a displaced burst breaches it.
    let cores = sim().cores;
    let batches = BURST.div_ceil(MAXB);
    let rounds_full = batches.div_ceil(cores);
    let rounds_short = batches.div_ceil(cores - 1);
    let window = Duration::from_millis(2);
    let slo = window + batch_service * (rounds_full + rounds_short) as u32 / 2;
    // Bursts are spaced so a merge plus a full burst drain always fits
    // the gap and never touches the next burst.
    let period = 2 * merge_service + window + batch_service * 2 * rounds_short as u32;

    section(&format!(
        "live-corpus churn: {} corpus, {shards} shard(s), {bursts} bursts of {BURST} \
         queries every {:.0} ms, {INSERTS_PER_GAP} inserts + {DELETES_PER_GAP} deletes \
         per gap, merge ~{:.1} ms vs batch ~{:.2} ms, SLO {:.2} ms (timing-only)",
        cis_bench::fmt_bytes(corpus_bytes),
        period.as_secs_f64() * 1e3,
        merge_service.as_secs_f64() * 1e3,
        batch_service.as_secs_f64() * 1e3,
        slo.as_secs_f64() * 1e3,
    ));

    let low_a = run_arm(&store, shards, bursts, period, Priority::Low);
    let low_b = run_arm(&store, shards, bursts, period, Priority::Low);
    assert_eq!(
        low_a.outcomes, low_b.outcomes,
        "two low-arm runs at one seed must agree completion-for-completion"
    );
    assert_eq!(
        low_a.corpus, low_b.corpus,
        "corpus counters must replay identically at one seed"
    );
    assert_eq!(
        corpus_series(&low_a.prometheus),
        corpus_series(&low_b.prometheus),
        "apu_corpus_* series must replay identically at one seed"
    );
    let hot = run_arm(&store, shards, bursts, period, Priority::Normal);
    assert_eq!(
        low_a.corpus, hot.corpus,
        "compaction priority must not change what the corpus converges to"
    );

    let mut rows = Vec::new();
    for (arm, run) in [("low", &low_a), ("interactive", &hot)] {
        rows.push(vec![
            arm.to_string(),
            format!("{}", run.outcomes.len()),
            format!("{}", run.served()),
            format!("{}", run.within_slo(slo)),
            format!("{:.2}", run.percentile(0.50).as_secs_f64() * 1e3),
            format!("{:.2}", run.percentile(0.99).as_secs_f64() * 1e3),
            format!("{}", run.corpus.compactions),
        ]);
    }
    print_table(
        &[
            "compaction",
            "offered",
            "served",
            "in-SLO",
            "p50 (ms)",
            "p99 (ms)",
            "merges",
        ],
        &rows,
    );

    let low_good = low_a.within_slo(slo);
    let hot_good = hot.within_slo(slo);
    println!();
    println!(
        "Goodput-under-SLO: low {low_good}, interactive {hot_good} ({:+} queries); \
         corpus converged identically in both arms ({} live docs, {} inserts, {} deletes, \
         {} compactions).",
        low_good as i64 - hot_good as i64,
        low_a.corpus.live_docs,
        low_a.corpus.inserts,
        low_a.corpus.deletes,
        low_a.corpus.compactions,
    );
    println!();
    println!("The merge streams the whole base segment through HBM - hundreds of");
    println!("query service times. At the queries' own priority it claims a core");
    println!("at the burst's head and the burst drains one core short, breaching");
    println!("the SLO; at low priority the identical merge waits out the burst");
    println!("and runs in the idle gap - the corpus still converges identically.");
    println!();
    println!("Corpus series from the low arm's Prometheus export:");
    for line in corpus_series(&low_a.prometheus) {
        println!("  {line}");
    }

    assert!(
        low_good >= hot_good,
        "low-priority compaction must never lose goodput to interactive-priority \
         compaction (low {low_good} vs interactive {hot_good})"
    );
    assert!(
        low_a.corpus.compactions >= 1,
        "the study must actually compact (requested at the last burst)"
    );

    if cfg.smoke {
        let wall = wall_start.elapsed().as_secs_f64();
        let json = format!(
            "{{\n  \"bench\": \"serve_mutation\",\n  \"mode\": \"smoke\",\n  \"seed\": {},\n  \
             \"shards\": {},\n  \"corpus_bytes\": {},\n  \"queries\": {},\n  \
             \"inserts\": {},\n  \"deletes\": {},\n  \"compactions\": {},\n  \
             \"live_docs\": {},\n  \"slo_ms\": {:.3},\n  \"low_in_slo\": {},\n  \
             \"interactive_in_slo\": {},\n  \"goodput_gap\": {},\n  \
             \"low_p99_ms\": {:.3},\n  \"interactive_p99_ms\": {:.3},\n  \
             \"wall_seconds\": {:.3}\n}}\n",
            cfg.seed,
            shards,
            corpus_bytes,
            low_a.outcomes.len(),
            low_a.corpus.inserts,
            low_a.corpus.deletes,
            low_a.corpus.compactions,
            low_a.corpus.live_docs,
            slo.as_secs_f64() * 1e3,
            low_good,
            hot_good,
            low_good as i64 - hot_good as i64,
            low_a.percentile(0.99).as_secs_f64() * 1e3,
            hot.percentile(0.99).as_secs_f64() * 1e3,
            wall,
        );
        std::fs::write("BENCH_serve_mutation.json", &json)
            .expect("write BENCH_serve_mutation.json");
        println!();
        println!("Smoke summary written to BENCH_serve_mutation.json (wall {wall:.3} s).");
        assert!(
            low_good > hot_good,
            "smoke gate: low-priority compaction must beat interactive-priority \
             compaction on in-SLO goodput (low {low_good} vs interactive {hot_good})"
        );
    }
}

/// One arm's outcome: per-query results in submission order, the final
/// corpus counters, and the Prometheus export.
struct ArmRun {
    /// `(ticket, served, latency)` per query, submission order.
    outcomes: Vec<(u64, bool, Duration)>,
    corpus: CorpusStats,
    prometheus: String,
}

impl ArmRun {
    fn served(&self) -> usize {
        self.outcomes.iter().filter(|(_, ok, _)| *ok).count()
    }

    fn within_slo(&self, slo: Duration) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, ok, l)| *ok && *l <= slo)
            .count()
    }

    fn percentile(&self, q: f64) -> Duration {
        let mut lat: Vec<Duration> = self
            .outcomes
            .iter()
            .filter(|(_, ok, _)| *ok)
            .map(|(_, _, l)| *l)
            .collect();
        lat.sort();
        if lat.is_empty() {
            Duration::ZERO
        } else {
            lat[((lat.len() - 1) as f64 * q).round() as usize]
        }
    }
}

/// Replays the identical burst + churn script through one compaction
/// priority. Writes are host-side and scripted per inter-burst gap, so
/// both arms mutate the corpus identically; only where the merge lands
/// in the device schedule differs.
fn run_arm(
    store: &EmbeddingStore,
    shards: usize,
    bursts: usize,
    period: Duration,
    compaction_priority: Priority,
) -> ArmRun {
    let cfg = ServeConfig {
        batch_window: Duration::from_millis(2),
        max_batch: MAXB,
        queue: QueueConfig::default().with_max_pending(8192),
        compaction_priority,
        ..ServeConfig::default()
    };
    let mut server =
        ShardedRagServer::new_mutable(store, shards, sim(), cfg).expect("cluster construction");
    let mut next_delete = 0u32;
    let mut qi = 0usize;
    for b in 0..bursts {
        // The gap's churn lands before the burst, so the whole burst
        // pins one snapshot and coalesces into full batches.
        for w in 0..INSERTS_PER_GAP {
            server
                .insert_doc(&store.query(10_000 + (b * INSERTS_PER_GAP + w) as u64))
                .expect("insert");
        }
        for _ in 0..DELETES_PER_GAP {
            assert!(server.delete_doc(next_delete).expect("delete"));
            next_delete += 1;
        }
        let at = period * b as u32;
        if b == bursts - 1 {
            // The merge arrives at the same virtual instant as this
            // burst: priority alone decides whether it claims a core
            // ahead of the queries.
            for s in 0..shards {
                server
                    .request_compaction(s, at)
                    .expect("request")
                    .expect("sealed deltas exist by the compaction burst");
            }
        }
        for _ in 0..BURST {
            server
                .submit_query(QuerySpec::new(at, query(qi)))
                .expect("submit");
            qi += 1;
        }
    }
    let report = server.drain().expect("drain");
    let mut outcomes: Vec<(u64, bool, Duration)> = report
        .completions
        .iter()
        .map(|c| (c.ticket.id(), c.is_ok(), c.latency()))
        .collect();
    outcomes.sort_by_key(|&(id, ..)| id);
    ArmRun {
        outcomes,
        corpus: report.corpus,
        prometheus: report.prometheus_text(),
    }
}

fn corpus_series(prometheus: &str) -> Vec<&str> {
    prometheus
        .lines()
        .filter(|l| l.starts_with("apu_corpus_"))
        .collect()
}

fn sim() -> SimConfig {
    SimConfig::default()
        .with_l4_bytes(1 << 20)
        .with_exec_mode(ExecMode::TimingOnly)
}

fn query(i: usize) -> Vec<i16> {
    vec![(i as i16 % 7) - 3; EMBED_DIM]
}
