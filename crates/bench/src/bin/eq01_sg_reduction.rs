//! Eq. 1: the subgroup-reduction cost surface — simulator ground truth
//! vs the fitted cubic-in-log₂(s) model with log₂(r)-dependent
//! coefficients.

use cis_bench::table::{print_table, section};
use cis_model::SgAddModel;
use gvml::reduce::sg_add_cycles;

fn main() {
    let t = apu_sim::DeviceTiming::leda_e();
    let model = SgAddModel::fit(&t);

    section("Eq. 1: fitted coefficients (p_i = alpha_i * log2 r + beta_i)");
    for i in (0..4).rev() {
        println!(
            "p{i}: alpha = {:+9.3}, beta = {:+9.3}",
            model.alpha[i], model.beta[i]
        );
    }
    println!("fit R^2 over the power-of-two grid: {:.4}", model.r_squared);

    section("cost surface: staged-implementation cycles vs Eq. 1 prediction");
    let mut rows = Vec::new();
    for log_r in [4u32, 8, 10, 12] {
        let r = 1usize << log_r;
        for log_s in (1..=log_r).step_by(2) {
            let s = 1usize << log_s;
            let truth = sg_add_cycles(&t, r, s) as f64;
            let pred = model.predict(r, s);
            rows.push(vec![
                format!("{r}"),
                format!("{s}"),
                format!("{truth:.0}"),
                format!("{pred:.0}"),
                format!("{:+.1}%", (pred - truth) / truth * 100.0),
            ]);
        }
    }
    print_table(
        &[
            "group r",
            "subgroup s",
            "staged cycles",
            "Eq.1 predicted",
            "error",
        ],
        &rows,
    );
    println!();
    println!("Cost grows non-linearly in log2(s) (deeper hierarchical folds)");
    println!("with coefficients drifting in log2(r) (group-boundary masking),");
    println!("the behaviour Eq. 1 is built to capture.");
}
