//! Design-space exploration for next-generation compute-in-SRAM devices
//! (§1's "informs the design of next-generation in-SRAM computing
//! architectures" and §3's tunable-parameter contribution).
//!
//! Two representative programs — the all-opts RAG distance kernel and
//! the all-opts Phoenix histogram — are modeled once with the analytical
//! framework, then re-evaluated across off-chip-bandwidth × compute ×
//! clock scalings.

use cis_bench::table::{print_table, section};
use cis_model::{DesignSweep, LatencyEstimator, ModelParams, TraceOp};

fn rag_distance_program() -> LatencyEstimator {
    // 10 GB corpus: 5 tiles × 384 dims of multiply-accumulate with
    // packed ingress (see rag::apu).
    let mut est = LatencyEstimator::new(ModelParams::leda_e());
    for _ in 0..5 {
        for _ in 0..192 {
            est.section("ingress");
            est.direct_dma_l2_to_l1_32k();
            est.gvml_load_16();
            est.section("mac");
            est.record_n(TraceOp::Op(apu_sim::VecOp::CpyImm), 4);
            est.record_n(TraceOp::Op(apu_sim::VecOp::And16), 1);
            est.gvml_shift_imm_16();
            est.record_n(TraceOp::Op(apu_sim::VecOp::SubS16), 2);
            est.record_n(TraceOp::Op(apu_sim::VecOp::MulS16), 2);
            est.record_n(TraceOp::Op(apu_sim::VecOp::AddS16), 2);
        }
        est.section("topk");
        est.record_n(TraceOp::SgAdd { r: 2048, s: 2048 }, 6);
        est.pio_st(32);
    }
    est
}

fn histogram_program() -> LatencyEstimator {
    let mut est = LatencyEstimator::new(ModelParams::leda_e());
    phoenix::histogram::model(&mut est, 32 << 20, phoenix::OptConfig::all());
    est
}

fn main() {
    let sweep = DesignSweep::new()
        .bw_scales(&[1.0, 2.0, 4.0, 8.0, 16.0])
        .compute_scales(&[1.0, 0.5, 0.25]);

    for (name, program) in [
        ("RAG distance kernel (10 GB corpus)", rag_distance_program()),
        ("Phoenix histogram (32 MB tile stream)", histogram_program()),
    ] {
        section(&format!("design sweep: {name}"));
        let base = program.report().total_us;
        let mut rows = Vec::new();
        for p in sweep.run(&program) {
            rows.push(vec![
                format!("{:.0}x", p.bw_scale),
                format!("{:.2}x", p.compute_scale),
                format!("{:.1}", p.predicted_us / 1e3),
                format!("{:.2}x", base / p.predicted_us),
            ]);
        }
        print_table(
            &[
                "off-chip BW",
                "compute latency",
                "predicted (ms)",
                "speedup",
            ],
            &rows,
        );
    }
    println!();
    println!("Reading the sweeps: the histogram stream saturates on off-chip");
    println!("bandwidth (BW scaling pays until compute dominates), while the");
    println!("optimized RAG kernel is on-chip-movement bound — faster bit");
    println!("processors and cheaper L2->L1 paths are the next-generation");
    println!("levers the paper's framework is built to expose.");
}
