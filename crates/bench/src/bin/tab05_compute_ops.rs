//! Table 5: computation operations — calibrated (paper-measured) cycle
//! cost vs the latency the simulator charges when each GVML operation is
//! actually issued, plus functional verification that the operation
//! computed the right thing.

use apu_sim::{ApuDevice, SimConfig, VecOp, Vr};
use cis_bench::table::{print_table, section};
use gvml::prelude::*;

type OpKernel = Box<dyn Fn(&mut apu_sim::ApuContext<'_>) -> apu_sim::Result<()>>;

fn main() {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(4 << 20));
    let t = dev.timing().clone();
    let mut rows: Vec<Vec<String>> = Vec::new();

    let ops: Vec<(VecOp, OpKernel)> = vec![
        (
            VecOp::And16,
            Box::new(|c| c.core_mut().and_16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::Or16,
            Box::new(|c| c.core_mut().or_16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::Not16,
            Box::new(|c| c.core_mut().not_16(Vr::new(2), Vr::new(0))),
        ),
        (
            VecOp::Xor16,
            Box::new(|c| c.core_mut().xor_16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::AShift,
            Box::new(|c| c.core_mut().sr_imm_s16(Vr::new(2), Vr::new(0), 3)),
        ),
        (
            VecOp::AddU16,
            Box::new(|c| c.core_mut().add_u16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::AddS16,
            Box::new(|c| c.core_mut().add_s16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::SubU16,
            Box::new(|c| c.core_mut().sub_u16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::SubS16,
            Box::new(|c| c.core_mut().sub_s16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::Popcnt16,
            Box::new(|c| c.core_mut().popcnt_16(Vr::new(2), Vr::new(0))),
        ),
        (
            VecOp::MulU16,
            Box::new(|c| c.core_mut().mul_u16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::MulS16,
            Box::new(|c| c.core_mut().mul_s16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::MulF16,
            Box::new(|c| c.core_mut().mul_f16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::DivU16,
            Box::new(|c| c.core_mut().div_u16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::DivS16,
            Box::new(|c| c.core_mut().div_s16(Vr::new(2), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::Eq16,
            Box::new(|c| c.core_mut().eq_16(Marker::new(0), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::GtU16,
            Box::new(|c| c.core_mut().gt_u16(Marker::new(0), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::LtU16,
            Box::new(|c| c.core_mut().lt_u16(Marker::new(0), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::LtGf16,
            Box::new(|c| c.core_mut().lt_gf16(Marker::new(0), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::GeU16,
            Box::new(|c| c.core_mut().ge_u16(Marker::new(0), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::LeU16,
            Box::new(|c| c.core_mut().le_u16(Marker::new(0), Vr::new(0), Vr::new(1))),
        ),
        (
            VecOp::RecipU16,
            Box::new(|c| c.core_mut().recip_u16(Vr::new(2), Vr::new(0))),
        ),
        (
            VecOp::ExpF16,
            Box::new(|c| c.core_mut().exp_f16(Vr::new(2), Vr::new(0))),
        ),
        (
            VecOp::SinFx,
            Box::new(|c| c.core_mut().sin_fx(Vr::new(2), Vr::new(0))),
        ),
        (
            VecOp::CosFx,
            Box::new(|c| c.core_mut().cos_fx(Vr::new(2), Vr::new(0))),
        ),
        (
            VecOp::CountM,
            Box::new(|c| c.core_mut().count_m(Marker::new(0)).map(|_| ())),
        ),
    ];

    for (op, run) in &ops {
        let report = dev
            .run_task(|ctx| {
                // representative operand data
                for (i, v) in ctx
                    .core_mut()
                    .vr_mut(Vr::new(0))
                    .unwrap()
                    .iter_mut()
                    .enumerate()
                {
                    *v = (i as u16).wrapping_mul(31) | 1;
                }
                for (i, v) in ctx
                    .core_mut()
                    .vr_mut(Vr::new(1))
                    .unwrap()
                    .iter_mut()
                    .enumerate()
                {
                    *v = (i as u16).wrapping_mul(7) | 1;
                }
                let t0 = ctx.core().cycles();
                run(ctx)?;
                let dt = ctx.core().cycles() - t0;
                // stash the op-only delta in the task's L2 (hacky but local)
                ctx.core_mut().l2_mut()[0..8].copy_from_slice(&dt.get().to_le_bytes());
                Ok(())
            })
            .unwrap_or_else(|_| panic!("{}", op.mnemonic()));
        let _ = report;
        let measured = u64::from_le_bytes(dev.core(0).unwrap().l2()[0..8].try_into().unwrap());
        rows.push(vec![
            op.mnemonic().to_string(),
            op.describe().to_string(),
            format!("{}", t.op_cycles(*op)),
            format!("{measured}"),
        ]);
    }
    // subgroup reduction examples (Eq. 1 rows)
    for (r, s) in [(64usize, 64usize), (1024, 256), (4096, 4096)] {
        let report = dev
            .run_task(|ctx| ctx.core_mut().add_subgrp_s16(Vr::new(2), Vr::new(0), s, r))
            .expect("sg add");
        rows.push(vec![
            format!("add_subgrp_s16 (r={r}, s={s})"),
            "int16 add sub groups in each group".into(),
            format!("{:.0}", cis_model::ModelParams::leda_e().t_sg_add(r, s)),
            format!("{}", report.cycles.get()),
        ]);
    }

    section("Table 5: computation ops — calibrated cycles vs simulator-charged");
    print_table(&["Op", "Description", "Calibrated", "Charged"], &rows);
    println!();
    println!("Charged = calibrated cost + VCU command-issue overhead;");
    println!("subgroup-reduction rows compare against the fitted Eq. 1 model.");
}
