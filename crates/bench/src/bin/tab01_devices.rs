//! Table 1: comparison of the GSI APU against a Xeon 8280, an NVIDIA
//! A100, and a Graphcore IPU (static spec sheet, printed for
//! completeness of the artifact set).

use cis_bench::table::{print_table, section};

fn main() {
    section("Table 1: GSI APU vs Xeon 8280 vs NVIDIA A100 vs Graphcore IPU");
    print_table(
        &["", "GSI APU", "Xeon 8280", "NVIDIA A100", "Graphcore"],
        &[
            row(
                "Processing units",
                "2 million x 1 bit",
                "28 x 2 x 512 bits",
                "104 x 4,096 bits",
                "1,216 x 64 bits",
            ),
            row("Process node", "28 nm", "14 nm", "7 nm", "7 nm"),
            row("Clock", "500 MHz", "2.7 GHz", "1.4 GHz", "1.6 GHz"),
            row(
                "Peak throughput",
                "25 TOPS",
                "10 TOPS",
                "75 TOPS",
                "16 TOPS",
            ),
            row(
                "On-chip memory",
                "12MB L1",
                "38.5MB L3",
                "40MB L2",
                "300MB L1",
            ),
            row(
                "On-chip bandwidth",
                "26 TB/s",
                "1 TB/s",
                "7 TB/s",
                "16 TB/s",
            ),
            row("Power", "60W TDP", "205W TDP", "400W TDP", "150W TDP"),
        ],
    );
    println!();
    println!("(Values as published; the simulated device in this repository");
    println!(" implements the GSI APU column.)");
}

fn row(label: &str, a: &str, b: &str, c: &str, d: &str) -> Vec<String> {
    vec![label.into(), a.into(), b.into(), c.into(), d.into()]
}
