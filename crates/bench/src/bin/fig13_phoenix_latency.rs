//! Figure 13: Phoenix latency across platforms, normalized to the
//! single-threaded CPU baseline — CPU 1T / CPU MT (measured on this
//! host) vs the simulated APU at baseline, each optimization standalone,
//! and all three.

use cis_bench::phoenix_suite::run_app;
use cis_bench::table::{print_table, section};
use phoenix::{App, OptConfig};

fn main() {
    let cfg = cis_bench::parse_args();
    section(&format!(
        "Figure 13: Phoenix latency normalized to 1-thread CPU (scale {:.4})",
        cfg.scale
    ));
    let variants = OptConfig::fig13_variants();
    let mut rows = Vec::new();
    let mut speedups_1t = Vec::new();
    let mut speedups_mt = Vec::new();
    let mut speedups_xeon = Vec::new();
    // Host-independent reference: the estimated instruction stream of the
    // paper's Phoenix baseline retired at a Xeon-Gold-class 2.5 G inst/s.
    const XEON_INST_PER_SEC: f64 = 2.5e9;
    for app in App::ALL {
        let run = run_app(app, cfg, &variants);
        let xeon_ms = run.cpu_inst as f64 / XEON_INST_PER_SEC * 1e3;
        let norm = |ms: f64| {
            if ms > 0.0 {
                format!("{:.3}", ms / run.cpu_1t_ms)
            } else {
                "-".into()
            }
        };
        let mut row = vec![
            app.name().to_string(),
            format!("{:.1}ms", run.cpu_1t_ms),
            norm(run.cpu_mt_ms),
        ];
        for v in &run.apu {
            row.push(norm(v.ms));
        }
        if let Some(all) = run.all_opts_ms() {
            speedups_1t.push(run.cpu_1t_ms / all);
            speedups_mt.push(run.cpu_mt_ms / all);
            speedups_xeon.push(xeon_ms / all);
        }
        rows.push(row);
        eprintln!("[fig13] {} done", app.name());
    }
    print_table(
        &[
            "Application",
            "CPU 1T",
            "CPU MT",
            "APU base",
            "APU opt1",
            "APU opt2",
            "APU opt3",
            "APU all",
        ],
        &rows,
    );
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let gmean = |v: &[f64]| (v.iter().map(|x| x.ln()).sum::<f64>() / v.len() as f64).exp();
    println!();
    println!(
        "APU all-opts speedup vs CPU 1T: mean {:.1}x, geomean {:.1}x, max {:.1}x",
        mean(&speedups_1t),
        gmean(&speedups_1t),
        speedups_1t.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "APU all-opts speedup vs CPU MT: mean {:.1}x, geomean {:.1}x, max {:.1}x",
        mean(&speedups_mt),
        gmean(&speedups_mt),
        speedups_mt.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "APU all-opts speedup vs modeled Xeon 1T (paper-baseline instruction \
         stream at 2.5 G inst/s): mean {:.1}x, geomean {:.1}x, max {:.1}x",
        mean(&speedups_xeon),
        gmean(&speedups_xeon),
        speedups_xeon.iter().cloned().fold(0.0, f64::max)
    );
    println!();
    println!("Paper: 41.8x mean / 14.4x geomean / 128.3x peak vs 1T CPU;");
    println!("12.5x mean / 2.6x geomean / 68.1x peak vs MT CPU. Columns < 1.0");
    println!("mean the APU is faster. CPU numbers depend on this host.");
}
