//! Serving study: sustained throughput vs. tail latency for an
//! open-loop Poisson query stream served through the device command
//! queue ([`rag::RagServer`], all-opts retrieval kernel, timing-only).
//!
//! Each offered rate submits a seeded Poisson arrival stream; the server
//! groups arrivals into VR-limited batches and dispatches them through
//! the [`apu_sim::DeviceQueue`] virtual timeline, reporting sustained
//! QPS, p50/p99 end-to-end latency, mean batch size, and device
//! occupancy. Past saturation the sustained rate plateaus at the
//! batch-amortized service capacity while tail latency grows with the
//! backlog — the classic open-loop serving curve.
//!
//! With `--shards N` the same stream is also served by an N-device
//! [`rag::ShardedRagServer`]: the corpus splits into N contiguous
//! shards, every query fans out to all shards in parallel, and each
//! shard streams 1/N of the embeddings — so the per-query service floor
//! drops by ~N and the saturation knee moves up accordingly. The final
//! summary compares saturation QPS across shard counts at equal corpus
//! size.

use std::time::Duration;

use apu_sim::{ExecMode, SimConfig};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::corpus::EMBED_DIM;
use rag::{CorpusSpec, EmbeddingStore, ServeConfig, ShardedRagServer};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let cfg = cis_bench::parse_args();
    let wall_start = std::time::Instant::now();
    // A sharded comparison needs a corpus spanning several VR tiles per
    // device — below ~3 tiles the kernel cost is the fixed per-tile
    // floor and every shard count ties — so `--shards` raises the
    // corpus floor to where tile count (and the embedding stream) still
    // scales down with the shard size.
    // `--smoke` trades sweep breadth for per-dispatch weight: two
    // offered rates on a corpus big enough that the tile-by-tile timing
    // walk dominates the wall clock, so the fast-forward replay cache
    // (APU_SIM_FAST_FORWARD=1) has a measurable effect. The simulated
    // results stay seed-pinned either way.
    let min_bytes = if cfg.shards > 1 {
        6.0e9
    } else if cfg.smoke {
        15.0e9
    } else {
        32.0e6
    };
    let corpus_bytes = (10.0e9 * cfg.scale).max(min_bytes) as u64;
    let spec = CorpusSpec::from_corpus_bytes(corpus_bytes);
    let store = EmbeddingStore::size_only(spec, cfg.seed);
    // Both smoke rates sit past the saturation knee, so continuous
    // batching forms full batches and the dispatch stream repeats one
    // kernel signature — the replay cache's best case, and the regime
    // where the serving study spends its time anyway.
    let queries_per_point = if cfg.smoke { 1500usize } else { 120usize };
    let offered_fracs: &[f64] = if cfg.smoke {
        &[1.1, 1.5]
    } else {
        &[0.1, 0.3, 0.5, 0.7, 0.9, 1.1, 1.5]
    };
    let shard_axis: Vec<usize> = if cfg.shards > 1 {
        vec![1, cfg.shards]
    } else {
        vec![1]
    };

    let mut saturation: Vec<(usize, f64, Duration)> = Vec::new();
    for &n_shards in &shard_axis {
        section(&format!(
            "serving: open-loop Poisson stream on the {} corpus, {n_shards} shard(s) \
             (all-opts, timing-only)",
            cis_bench::fmt_bytes(corpus_bytes)
        ));

        // Calibrate the sweep around the cluster's service capacity:
        // every query costs one batched kernel on every shard and the
        // shards run in parallel, so the knee sits at the (largest)
        // shard's amortized full-batch per-query rate.
        let shard0 = store.shards(n_shards).remove(0).store;
        let per_query_s = {
            let mut dev = probe_device();
            let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
            let batch: Vec<Vec<i16>> = (0..rag::MAX_BATCH).map(query).collect();
            let r = rag::retrieve_batch(&mut dev, &mut hbm, &shard0, &batch, 5)
                .expect("probe batch retrieval");
            r.breakdown.total_ms() / 1e3 / rag::MAX_BATCH as f64
        };
        let capacity_qps = 1.0 / per_query_s;

        let mut rows = Vec::new();
        let mut best_qps = 0.0f64;
        let mut best_p99 = Duration::ZERO;
        for &frac in offered_fracs {
            let offered = capacity_qps * frac;
            let mut server = ShardedRagServer::new(&store, n_shards, sim(), ServeConfig::default())
                .expect("cluster construction");

            // Seeded Poisson arrivals: exponential inter-arrival times by
            // inverse CDF, identical across offered-rate runs up to scale.
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let mut t = 0.0f64;
            let mut rejected = 0u64;
            for i in 0..queries_per_point {
                let u: f64 = rng.gen();
                t += -(1.0 - u).ln() / offered;
                if server.submit(Duration::from_secs_f64(t), query(i)).is_err() {
                    rejected += 1;
                }
            }
            let report = server.drain().expect("serve drain");
            if report.throughput_qps() > best_qps {
                best_qps = report.throughput_qps();
                best_p99 = report.latency_percentile(0.99);
            }

            // Per-stage attribution of the total latency budget: as the
            // offered rate crosses capacity, the queue-wait share takes
            // over the whole budget.
            let stages = report.stage_totals();
            let total = stages.total().as_secs_f64().max(f64::MIN_POSITIVE);
            let share = |d: Duration| 100.0 * d.as_secs_f64() / total;
            rows.push(vec![
                format!("{offered:.0}"),
                format!("{:.0}", report.throughput_qps()),
                format!("{:.2}", report.latency_percentile(0.50).as_secs_f64() * 1e3),
                format!("{:.2}", report.latency_percentile(0.99).as_secs_f64() * 1e3),
                format!("{:.1}", report.mean_batch_size()),
                format!("{:.0}%", report.queue.occupancy() * 100.0),
                format!(
                    "{:.0}/{:.0}/{:.0}%",
                    share(stages.queue_wait),
                    share(stages.dma),
                    share(stages.device),
                ),
                format!("{rejected}"),
            ]);
        }
        print_table(
            &[
                "offered QPS",
                "sustained QPS",
                "p50 (ms)",
                "p99 (ms)",
                "batch",
                "busy",
                "wait/dma/dev",
                "rejected",
            ],
            &rows,
        );
        println!();
        println!(
            "Per-query service floor {:.2} ms (full batch, amortized, per shard) \
             -> capacity ~{:.0} QPS.",
            per_query_s * 1e3,
            capacity_qps
        );
        saturation.push((n_shards, best_qps, best_p99));
    }

    println!();
    println!("Below the knee, latency is the batch window plus one service time;");
    println!("past it the open-loop backlog stretches p99 while QPS saturates.");
    if saturation.len() > 1 {
        section("saturation QPS vs. shard count (equal corpus size)");
        for &(n, qps, p99) in &saturation {
            println!(
                "  {n} shard(s): saturation {qps:.0} QPS, p99 {:.2} ms at the knee",
                p99.as_secs_f64() * 1e3
            );
        }
        let (_, base, _) = saturation[0];
        let (n, top, _) = saturation[saturation.len() - 1];
        println!(
            "Sharding {n}x scales saturation {:.2}x: each shard streams 1/{n} of the",
            top / base.max(f64::MIN_POSITIVE)
        );
        println!("embeddings, so the movement-bound service floor drops with the shard size.");
    }

    if cfg.smoke {
        let wall = wall_start.elapsed().as_secs_f64();
        let &(_, best_qps, best_p99) = saturation.last().expect("at least one sweep ran");
        let json = format!(
            "{{\n  \"bench\": \"serve_qps\",\n  \"mode\": \"smoke\",\n  \"seed\": {},\n  \
             \"scale\": {},\n  \"shards\": {},\n  \"fast_forward\": {},\n  \
             \"queries_per_point\": {},\n  \"offered_fracs\": {:?},\n  \
             \"wall_seconds\": {:.3},\n  \"sustained_qps\": {:.1},\n  \"p99_ms\": {:.3}\n}}\n",
            cfg.seed,
            cfg.scale,
            cfg.shards,
            apu_sim::fast_forward_from_env(),
            queries_per_point,
            offered_fracs,
            wall,
            best_qps,
            best_p99.as_secs_f64() * 1e3,
        );
        std::fs::write("BENCH_serve_qps.json", &json).expect("write BENCH_serve_qps.json");
        println!();
        println!(
            "Smoke summary written to BENCH_serve_qps.json \
             (wall {wall:.3} s, fast_forward={}).",
            apu_sim::fast_forward_from_env()
        );
    }
}

fn sim() -> SimConfig {
    SimConfig::default()
        .with_l4_bytes(1 << 20)
        .with_exec_mode(ExecMode::TimingOnly)
}

fn probe_device() -> apu_sim::ApuDevice {
    apu_sim::ApuDevice::try_new(sim()).expect("default config is valid")
}

fn query(i: usize) -> Vec<i16> {
    vec![(i as i16 % 7) - 3; EMBED_DIM]
}
