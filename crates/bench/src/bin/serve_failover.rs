//! Failover study: serving a query stream through a replica fault,
//! unreplicated vs. replicated, on one seed-deterministic open-loop
//! trace.
//!
//! A sharded cluster has one replica of shard 0 killed outright (a
//! [`apu_sim::FaultPlan`] failing every task it receives) before the
//! stream starts. The same stream is then served through two arms of a
//! [`rag::ShardedRagServer`]:
//!
//! * **flat** — `replicas = 1`: the dead device *is* shard 0, so every
//!   query loses that shard's partial result and completes degraded
//!   (merged from the surviving shards only);
//! * **replicated** — `replicas = 2`: the scatter layer marks the dead
//!   replica down after its first device-attributable failure, re-issues
//!   the lost shard-0 attempts on the surviving replica at their
//!   *original* arrival times, and every query stays exact — served,
//!   not degraded, straight through the fault window.
//!
//! The replicated arm runs twice at the same seed and the binary
//! asserts the runs agree completion-for-completion, then prints the
//! `apu_replica_*` Prometheus series. `--smoke` reduces the stream for
//! CI; `--shards N` (default 2, minimum 2) sets the shard-group count.

use std::time::Duration;

use apu_sim::{ExecMode, FaultPlan, SimConfig};
use cis_bench::table::{print_table, section};
use rag::corpus::EMBED_DIM;
use rag::{CorpusSpec, EmbeddingStore, ServeConfig, ServeReport, ShardedRagServer};

fn main() {
    let cfg = cis_bench::parse_args();
    let smoke = std::env::args().any(|a| a == "--smoke");

    let corpus_bytes = if smoke {
        128.0e6 as u64
    } else {
        (10.0e9 * cfg.scale).max(512.0e6) as u64
    };
    let store = EmbeddingStore::size_only(CorpusSpec::from_corpus_bytes(corpus_bytes), cfg.seed);
    let shards = cfg.shards.max(2);
    let queries = if smoke { 60 } else { 240 };

    section(&format!(
        "failover study: {} corpus, {shards} shard group(s), {queries} queries, \
         replica 0 of shard 0 dead (timing-only)",
        cis_bench::fmt_bytes(corpus_bytes),
    ));

    let flat = run_arm(&store, shards, 1, queries);
    let repl_a = run_arm(&store, shards, 2, queries);
    let repl_b = run_arm(&store, shards, 2, queries);
    assert_eq!(
        outcomes(&repl_a),
        outcomes(&repl_b),
        "two replicated runs at one seed must agree completion-for-completion"
    );

    // The flat arm has no spare copy of shard 0: everything it serves is
    // degraded. The replicated arm must serve the whole stream exactly.
    assert_eq!(flat.served(), queries, "degraded queries still serve");
    assert_eq!(
        flat.degraded(),
        queries,
        "without replication every query loses shard 0"
    );
    assert_eq!(
        repl_a.served(),
        queries,
        "failover must keep the stream whole"
    );
    assert_eq!(repl_a.degraded(), 0, "failover must keep every query exact");
    assert!(
        repl_a.replica.failovers >= 1,
        "the dead replica must have been hit at least once"
    );
    assert!(
        repl_a.replica.failover_served >= 1,
        "some query must be served by a failover re-issue"
    );
    assert_eq!(repl_a.replica.down, 1, "exactly one replica goes down");

    let mut rows = Vec::new();
    for (arm, run) in [("flat", &flat), ("replicated", &repl_a)] {
        rows.push(vec![
            arm.to_string(),
            format!("{}", run.completions.len()),
            format!("{}", run.served()),
            format!("{}", run.degraded()),
            format!("{}", run.replica.failovers),
            format!("{}", run.replica.failover_served),
            format!("{}", run.replica.down),
            format!("{:.2}", run.latency_percentile(0.50).as_secs_f64() * 1e3),
            format!("{:.2}", run.latency_percentile(0.99).as_secs_f64() * 1e3),
        ]);
    }
    print_table(
        &[
            "arm",
            "offered",
            "served",
            "degraded",
            "failovers",
            "fo-served",
            "down",
            "p50 (ms)",
            "p99 (ms)",
        ],
        &rows,
    );

    println!();
    println!("Replica series from the replicated arm's Prometheus export:");
    for line in repl_a
        .prometheus_text()
        .lines()
        .filter(|l| l.starts_with("apu_replica_"))
    {
        println!("  {line}");
    }
    println!();
    println!("The flat arm keeps serving through the fault but every answer is");
    println!("missing shard 0's candidates - degraded, silently wrong for any");
    println!("query whose true top-k intersects the lost shard. The replicated");
    println!("arm routes around the dead device: its first failure marks it");
    println!("down, the lost attempts re-issue on the surviving replica at the");
    println!("original arrival times, and the merged top-k stays exact for the");
    println!("whole stream; the price is the extra queue time visible in p99.");
}

/// Serves the fixed stream through one `(shards, replicas)` arm with
/// replica 0 of shard 0 killed.
fn run_arm(store: &EmbeddingStore, shards: usize, replicas: usize, queries: usize) -> ServeReport {
    let mut server = ShardedRagServer::new(
        store,
        shards,
        sim(),
        ServeConfig {
            replicas,
            ..ServeConfig::default()
        },
    )
    .expect("cluster construction");
    server.inject_faults_replica(0, 0, FaultPlan::new(13).fail_every_kth_task(1));
    for i in 0..queries {
        server
            .submit(Duration::from_micros(40 * i as u64), query(i))
            .expect("submit");
    }
    server.drain().expect("drain")
}

/// The determinism projection: per-query outcome and timing.
fn outcomes(report: &ServeReport) -> Vec<(u64, bool, bool, u32, Duration)> {
    let mut rows: Vec<_> = report
        .completions
        .iter()
        .map(|c| {
            (
                c.ticket.id(),
                c.is_ok(),
                c.is_degraded(),
                c.failovers,
                c.latency(),
            )
        })
        .collect();
    rows.sort_by_key(|&(id, ..)| id);
    rows
}

fn sim() -> SimConfig {
    SimConfig::default()
        .with_l4_bytes(1 << 20)
        .with_exec_mode(ExecMode::TimingOnly)
}

fn query(i: usize) -> Vec<i16> {
    vec![(i as i16 % 7) - 3; EMBED_DIM]
}
