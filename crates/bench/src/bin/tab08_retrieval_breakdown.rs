//! Table 8: compute-in-SRAM retrieval latency breakdown across corpus
//! sizes, with and without optimizations.

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use cis_bench::table::{print_table, section};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{ApuRetriever, CorpusSpec, EmbeddingStore, RagVariant};

fn main() {
    let cfg = cis_bench::parse_args();
    let specs = CorpusSpec::paper_points();

    section("Table 8: retrieval latency breakdown (timing-only, paper corpus points)");
    let mut rows = Vec::new();
    for variant in [RagVariant::NoOpt, RagVariant::AllOpts] {
        for spec in &specs {
            let mut dev = ApuDevice::new(
                SimConfig::default()
                    .with_l4_bytes(1 << 20)
                    .with_exec_mode(ExecMode::TimingOnly),
            );
            let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
            let store = EmbeddingStore::size_only(*spec, cfg.seed);
            let q = vec![1i16; rag::corpus::EMBED_DIM];
            let (_, b, _) = ApuRetriever::new(variant)
                .retrieve(&mut dev, &mut hbm, &store, &q, 5)
                .expect("retrieval");
            rows.push(vec![
                format!("CIS {}", variant.label()),
                spec.label(),
                format!("{:.1} ms", b.load_embedding_ms),
                format!("{:.0} us", b.load_query_us),
                format!("{:.1} ms", b.calc_distance_ms),
                format!("{:.2} ms", b.topk_ms),
                format!("{:.0} us", b.return_us),
                format!("{:.1} ms", b.total_ms()),
            ]);
        }
    }
    print_table(
        &[
            "config",
            "corpus",
            "load embedding*",
            "load query",
            "calc distance",
            "top-k agg.",
            "return top-k",
            "total",
        ],
        &rows,
    );
    println!();
    println!("* embedding-load latency reflects the simulated HBM2e; all other");
    println!("  rows are charged on the simulated device (paper methodology).");
    println!("Paper anchors (no-opt totals): 21.8 / 129.5 / 539.2 ms;");
    println!("(all-opts totals): 3.9 / 20.6 / 84.2 ms.");
}
