//! Table 6: Phoenix suite statistics — input size, estimated CPU
//! instruction count (Valgrind substitution), and APU µCode instruction
//! count from the simulator's VCU counter, extrapolated to the paper's
//! input sizes.

use cis_bench::phoenix_suite::run_app;
use cis_bench::table::{print_table, section};
use cis_bench::{fmt_count, parse_args};
use phoenix::{App, OptConfig};

fn main() {
    let cfg = parse_args();
    section(&format!(
        "Table 6: Phoenix statistics (scale {:.4}{})",
        cfg.scale,
        if cfg.paper { ", paper" } else { "" }
    ));
    let mut rows = Vec::new();
    for app in App::ALL {
        let run = run_app(app, cfg, &[OptConfig::all()]);
        let ucode = run.apu[0].ucode;
        // Extrapolate the µCode count linearly in input *work* to the
        // paper's input (the kernels are tile loops).
        let factor = if cfg.paper {
            1.0
        } else {
            run.paper_work_factor
        };
        rows.push(vec![
            app.name().to_string(),
            format!("{} (paper: {})", run.input_desc, app.paper_input()),
            fmt_count(run.cpu_inst),
            fmt_count(ucode),
            fmt_count((ucode as f64 * factor) as u64),
        ]);
        eprintln!("[tab06] {} done", app.name());
    }
    print_table(
        &[
            "Application",
            "Input (this run)",
            "#Inst on CPU (est.)",
            "#APU uCode (this run)",
            "#APU uCode (paper-scale est.)",
        ],
        &rows,
    );
    println!();
    println!("Paper column for reference: Histogram 110.7M, LinReg 1.6M,");
    println!("MatMul 69.7M, Kmeans 0.04M, RevIndex 11.0M, StrMatch 0.09M, WC 0.17M.");
}
