//! ANN serving study: recall@10 vs. sustained QPS as the IVF probe
//! width sweeps, against the exact flat-scan baseline
//! ([`rag::IvfIndex`] through [`rag::ShardedRagServer`], functional
//! simulation so answers are real and recall is measurable).
//!
//! The corpus is a seeded [`rag::ClusteredCorpus`]: well-separated
//! topic centers plus per-chunk noise, queried by a **topic-skewed**
//! stream (consecutive arrivals share a topic, the locality real
//! retrieval serving sees). Continuous batching then forms batches
//! whose probe sets overlap, so the batched IVF dispatch scans the
//! small union of its members' clusters instead of the whole corpus —
//! the regime where cluster pruning turns a ~`nprobe/nlist` candidate
//! fraction into a proportional service-time win.
//!
//! Each sweep point serves the identical stream (same arrivals, same
//! queries) and reports sustained QPS from the virtual timeline,
//! recall@10 against the exact CPU scan, the scanned candidate
//! fraction, and tail latency. `--smoke` runs a narrow sweep, enforces
//! the headline gate — **≥ 5× QPS over flat at recall@10 ≥ 0.9** at
//! the default probe width — and writes `BENCH_serve_ann.json`.

use std::collections::HashSet;
use std::time::Duration;

use apu_sim::{ExecMode, SimConfig};
use cis_bench::table::{print_table, section};
use rag::cpu::cpu_retrieve;
use rag::{
    ClusteredCorpus, CorpusSpec, IndexMode, ServeConfig, ShardedRagServer, DEFAULT_NLIST,
    DEFAULT_NPROBE, MAX_BATCH,
};

const K: usize = 10;
const TOPICS: usize = 64;

/// The retrieval kernel scores one chunk per VR lane, so its cost is
/// per *tile* (`ceil(chunks / vr_len)`), flat in the chunk count within
/// a tile. At the device's native 32 K lanes a functional-scale corpus
/// is a single tile and pruning cannot pay; shrinking the VRs to 512
/// lanes (the floor — a VR must still hold one 384-dim query) puts the
/// default corpus at 32 tiles while a probed cluster stays ~1 tile,
/// reproducing the many-tile regime of the paper's 163 K–3.3 M-chunk
/// corpora at functional-simulation cost.
const VR_LEN: usize = 512;

fn main() {
    let cfg = cis_bench::parse_args();
    let wall_start = std::time::Instant::now();

    // Functional simulation caps the practical corpus size (every
    // dispatch computes real scores); the default scale (1/256 of the
    // paper) lands on a 16 K-chunk corpus = 32 tiles at [`VR_LEN`].
    // A sharded run multiplies the corpus by the shard count so every
    // shard keeps the full tile depth — the comparison is pruning vs.
    // streaming at equal per-device corpus, not pruning vs. sharding.
    let shards = cfg.shards.max(1);
    let chunks = (((4_194_304.0 * cfg.scale) as usize) * shards).clamp(4096, 1 << 20);
    let spec = CorpusSpec {
        corpus_bytes: 0,
        chunks,
    };
    let corpus = ClusteredCorpus::new(spec, TOPICS, 1, cfg.seed);
    let n_queries = if cfg.smoke { 48 } else { 96 };

    // Topic-skewed open stream: each MAX_BATCH-sized block of arrivals
    // targets one topic, so continuous batching forms batches whose
    // probe sets coincide. Block topics stride through all centers.
    let queries: Vec<Vec<i16>> = (0..n_queries)
        .map(|i| {
            let topic = (i / MAX_BATCH) * 7 % TOPICS;
            corpus.query_near(topic, i as u64)
        })
        .collect();
    let truth: Vec<HashSet<u32>> = queries
        .iter()
        .map(|q| {
            cpu_retrieve(&corpus.store, q, K, 4)
                .0
                .into_iter()
                .map(|h| h.chunk)
                .collect()
        })
        .collect();

    let serve = |index: IndexMode| {
        let mut server = ShardedRagServer::new(
            &corpus.store,
            shards,
            SimConfig {
                vr_len: VR_LEN,
                ..SimConfig::default()
            }
            .with_exec_mode(ExecMode::Functional)
            .with_l4_bytes(64 << 20),
            ServeConfig {
                k: K,
                index,
                ..ServeConfig::default()
            },
        )
        .expect("cluster construction");
        for (i, q) in queries.iter().enumerate() {
            server
                .submit(Duration::from_micros(5 * i as u64), q.clone())
                .expect("submit");
        }
        let report = server.drain().expect("serve drain");
        let mut recall_sum = 0.0f64;
        for done in &report.completions {
            let hits = done.hits().expect("served");
            let ids = &truth[done.ticket.id() as usize];
            recall_sum += hits.iter().filter(|h| ids.contains(&h.chunk)).count() as f64 / K as f64;
        }
        let recall = recall_sum / report.completions.len().max(1) as f64;
        (report.throughput_qps(), recall, report)
    };

    section(&format!(
        "ANN serving: {chunks}-chunk clustered corpus ({TOPICS} topics), {n_queries} \
         topic-skewed queries, k={K}, {shards} shard(s), nlist={DEFAULT_NLIST}, \
         {VR_LEN}-lane VRs (functional)"
    ));

    let (flat_qps, flat_recall, _) = serve(IndexMode::Flat);
    let nprobes: &[usize] = if cfg.smoke {
        &[1, DEFAULT_NPROBE, 4]
    } else {
        &[1, DEFAULT_NPROBE, 4, 8, 16, DEFAULT_NLIST]
    };

    let mut rows = vec![vec![
        "flat".to_string(),
        format!("{flat_recall:.3}"),
        format!("{flat_qps:.0}"),
        "1.00x".to_string(),
        "100.0%".to_string(),
    ]];
    let mut at_default = (0.0f64, 0.0f64); // (speedup, recall) at DEFAULT_NPROBE
    for &nprobe in nprobes {
        let (qps, recall, report) = serve(IndexMode::Ivf {
            nlist: DEFAULT_NLIST,
            nprobe,
        });
        let speedup = qps / flat_qps.max(f64::MIN_POSITIVE);
        let scanned = 100.0 * report.ivf.candidates as f64
            / (report.ivf.queries as f64 * chunks as f64).max(1.0);
        if nprobe == DEFAULT_NPROBE {
            at_default = (speedup, recall);
        }
        rows.push(vec![
            format!("ivf nprobe={nprobe}"),
            format!("{recall:.3}"),
            format!("{qps:.0}"),
            format!("{speedup:.2}x"),
            format!("{scanned:.1}%"),
        ]);
    }
    print_table(
        &["index", "recall@10", "sustained QPS", "vs flat", "scanned"],
        &rows,
    );
    println!();
    println!(
        "Pruning to nprobe/nlist of the clusters cuts the streamed embeddings by the same \
         fraction; with topic-skewed batches the probed union stays small, so the \
         movement-bound service floor — and the saturation QPS — scale with it."
    );
    let (speedup, recall) = at_default;
    println!(
        "At the serving default (nprobe={DEFAULT_NPROBE}): {speedup:.2}x the flat QPS at \
         recall@10 {recall:.3}."
    );

    if cfg.smoke {
        let wall = wall_start.elapsed().as_secs_f64();
        let json = format!(
            "{{\n  \"bench\": \"serve_ann\",\n  \"mode\": \"smoke\",\n  \"seed\": {},\n  \
             \"scale\": {},\n  \"shards\": {},\n  \"chunks\": {},\n  \"topics\": {},\n  \
             \"nlist\": {},\n  \"nprobe\": {},\n  \"k\": {},\n  \"queries\": {},\n  \
             \"flat_qps\": {:.1},\n  \"ivf_qps\": {:.1},\n  \"speedup\": {:.3},\n  \
             \"recall_at_10\": {:.4},\n  \"wall_seconds\": {:.3}\n}}\n",
            cfg.seed,
            cfg.scale,
            shards,
            chunks,
            TOPICS,
            DEFAULT_NLIST,
            DEFAULT_NPROBE,
            K,
            n_queries,
            flat_qps,
            flat_qps * speedup,
            speedup,
            recall,
            wall,
        );
        std::fs::write("BENCH_serve_ann.json", &json).expect("write BENCH_serve_ann.json");
        println!();
        println!("Smoke summary written to BENCH_serve_ann.json (wall {wall:.3} s).");
        assert!(
            recall >= 0.9,
            "smoke gate: recall@10 {recall:.3} fell below the 0.9 floor"
        );
        assert!(
            speedup >= 5.0,
            "smoke gate: {speedup:.2}x over flat is below the 5x floor at recall {recall:.3}"
        );
    }
}
