//! Figure 2: roofline of binary-matmul kernel variants on the device.
//!
//! Places every Fig. 12 variant on the (operational intensity,
//! throughput) plane using the closed-form cost/OI model (Eqs. 2–14) at
//! the paper's 1024³ shape, and cross-checks the baseline and all-opts
//! points against the simulator at a reduced shape.

use binmm::{ApuMatmul, BinMatrix};
use cis_bench::table::{print_table, section};
use cis_core::{matmul_model, MatmulShape, MatmulVariant, Roofline};
use cis_model::ModelParams;

fn main() {
    let cfg = cis_bench::parse_args();
    let params = ModelParams::leda_e();
    let roof = Roofline::from_params(&params, 4);

    section("Figure 2: roofline (16-bit MAC profile)");
    println!("compute roof : {:.0} GOPS", roof.peak_gops);
    println!("memory diag  : {:.1} GB/s off-chip", roof.bw_gbps);
    println!("ridge OI     : {:.1} ops/byte", roof.ridge_oi());

    let shape = MatmulShape::paper_1024();
    let mut rows = Vec::new();
    for v in MatmulVariant::ALL {
        let c = matmul_model::cost(&params, &shape, v);
        let gops = c.achieved_gops(&shape, &params);
        let point = roof.place(v.label(), c.oi, gops);
        rows.push(vec![
            v.label().to_string(),
            format!("{:.2}", c.oi),
            format!("{:.1}", gops),
            format!("{:.1}", point.attainable_gops),
            if point.memory_bound {
                "memory"
            } else {
                "compute"
            }
            .to_string(),
            format!("{:.0}%", point.efficiency() * 100.0),
        ]);
    }
    println!();
    print_table(
        &[
            "kernel",
            "OI (ops/B)",
            "achieved GOPS",
            "roofline GOPS",
            "bound",
            "efficiency",
        ],
        &rows,
    );

    // Simulator cross-check at a reduced shape (single core).
    section("simulator cross-check (reduced 64 x 2048 x 2048-bit shape)");
    let (m, n, kbits) = if cfg.paper {
        (1024, 1024, 1024)
    } else {
        (64, 2048, 2048)
    };
    let problem = ApuMatmul::new(
        BinMatrix::random(m, kbits, cfg.seed),
        BinMatrix::random(n, kbits, cfg.seed + 1),
    )
    .expect("shape");
    let mut dev = apu_sim::ApuDevice::new(apu_sim::SimConfig::default().with_l4_bytes(256 << 20));
    let ops = (m * n * kbits * 2) as f64;
    let mut rows = Vec::new();
    for v in [MatmulVariant::Baseline, MatmulVariant::AllOpts] {
        let run = problem.run(&mut dev, v).expect("kernel");
        let secs = run.report.duration.as_secs_f64();
        rows.push(vec![
            v.label().to_string(),
            format!("{:.2} ms", run.report.millis()),
            format!("{:.1}", ops / secs / 1e9),
        ]);
    }
    print_table(
        &["kernel", "simulated latency", "achieved GOPS (1 core)"],
        &rows,
    );
    println!();
    println!("Optimizations push kernels toward the compute roof by raising OI");
    println!("(the paper's headline observation for Fig. 2).");
}
