//! Figure 12: binary-matmul runtime breakdown (LD LHS / LD RHS / VR ops /
//! ST) across the optimization variants — simulated on the device, with
//! the closed-form model's totals alongside.
//!
//! Default shape is a reduced 128 × 2048 × 2048-bit problem (functional);
//! `--paper-scale` runs the paper's 1024 × 1024 × 1024-bit shape in
//! timing-only mode.

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use binmm::{ApuMatmul, BinMatrix};
use cis_bench::table::{print_table, section};
use cis_core::{matmul_model, MatmulShape, MatmulVariant};
use cis_model::ModelParams;

fn main() {
    let cfg = cis_bench::parse_args();
    let (m, n, kbits) = if cfg.paper {
        (1024, 1024, 1024)
    } else {
        (128, 2048, 2048)
    };
    let mut sim_cfg = SimConfig::default().with_l4_bytes(256 << 20);
    if cfg.paper {
        sim_cfg = sim_cfg.with_exec_mode(ExecMode::TimingOnly);
    }
    let mut dev = ApuDevice::new(sim_cfg);
    let problem = ApuMatmul::new(
        BinMatrix::random(m, kbits, cfg.seed),
        BinMatrix::random(n, kbits, cfg.seed + 1),
    )
    .expect("shape");

    section(&format!(
        "Figure 12: binary matmul breakdown, {m} x {n} x {kbits} bits"
    ));
    let mut rows = Vec::new();
    let mut base_ms = 0.0;
    for v in MatmulVariant::ALL {
        let run = problem
            .run(&mut dev, v)
            .unwrap_or_else(|_| panic!("{}", v.label()));
        let clock = dev.config().clock;
        let ms = |c: apu_sim::Cycles| clock.cycles_to_secs(c) * 1e3;
        let total = run.report.millis();
        if v == MatmulVariant::Baseline {
            base_ms = total;
        }
        rows.push(vec![
            v.label().to_string(),
            format!("{:.2}", ms(run.breakdown.ld_lhs)),
            format!("{:.2}", ms(run.breakdown.ld_rhs)),
            format!("{:.2}", ms(run.breakdown.vr_ops)),
            format!("{:.2}", ms(run.breakdown.st)),
            format!("{:.2}", total),
            format!("{:.1}x", base_ms / total),
        ]);
    }
    print_table(
        &[
            "variant",
            "LD LHS (ms)",
            "LD RHS (ms)",
            "VR ops (ms)",
            "ST (ms)",
            "total (ms)",
            "speedup",
        ],
        &rows,
    );

    section("closed-form model (Eqs. 2-14) at the paper's 1024^3 shape");
    let params = ModelParams::leda_e();
    let shape = MatmulShape::paper_1024();
    let mut rows = Vec::new();
    for v in MatmulVariant::ALL {
        let c = matmul_model::cost(&params, &shape, v);
        let to_ms = |cyc: f64| params.cycles_to_us(cyc) / 1e3;
        rows.push(vec![
            v.label().to_string(),
            format!("{:.1}", to_ms(c.t_a)),
            format!("{:.1}", to_ms(c.t_b)),
            format!("{:.1}", to_ms(c.t_mac)),
            format!("{:.1}", to_ms(c.t_c)),
            format!("{:.1}", c.total_ms(&params)),
        ]);
    }
    print_table(
        &[
            "variant",
            "T_A (ms)",
            "T_B (ms)",
            "T_MAC (ms)",
            "T_C (ms)",
            "total (ms)",
        ],
        &rows,
    );
    println!();
    println!("Paper anchors: baseline 226.3 ms, all-opts 12.0 ms (18.9x).");
}
