//! Table 4: data-movement operations — analytical formula vs the
//! latency the simulator actually charges, measured by issuing each
//! operation on the device and reading the cycle counter.

use apu_sim::dma::ChunkCopy;
use apu_sim::{ApuDevice, SimConfig, Vmr, Vr};
use cis_bench::table::{print_table, section};
use cis_model::ModelParams;
use gvml::prelude::*;
use gvml::shift::ShiftDir;

fn main() {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20));
    let p = ModelParams::leda_e();
    let n = dev.config().vr_len;
    let h = dev.alloc_u16(4 * n).expect("alloc");
    let table_len = 1024usize;
    let mut rows: Vec<Vec<String>> = Vec::new();

    let mut measure =
        |desc: &str,
         analytical: f64,
         dev: &mut ApuDevice,
         f: &mut dyn FnMut(&mut apu_sim::ApuContext<'_>) -> apu_sim::Result<()>| {
            let report = dev.run_task(|ctx| f(ctx)).expect(desc);
            rows.push(vec![
                desc.to_string(),
                format!("{:.0}", analytical),
                format!("{}", report.cycles.get()),
            ]);
        };

    let d = 64 * 1024; // bytes for the parameterized DMAs
    measure("dma_l4_l3 (64KB)", p.t_dma_l4_l3(d), &mut dev, &mut |ctx| {
        ctx.dma_l4_to_l3(0, h, d)
    });
    measure("dma_l4_l2 (64KB)", p.t_dma_l4_l2(d), &mut dev, &mut |ctx| {
        ctx.dma_l4_to_l2(0, h, d)
    });
    measure("dma_l2_l1", p.t_dma_l2_l1(), &mut dev, &mut |ctx| {
        ctx.dma_l2_to_l1(Vmr::new(0))
    });
    measure("dma_l4_l1", p.t_dma_l4_l1(), &mut dev, &mut |ctx| {
        ctx.dma_l4_to_l1(Vmr::new(0), h)
    });
    measure("dma_l1_l4", p.t_dma_l1_l4(), &mut dev, &mut |ctx| {
        ctx.dma_l1_to_l4(h, Vmr::new(0))
    });
    measure("pio_ld (n=100)", p.t_pio_ld(100), &mut dev, &mut |ctx| {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i, i)).collect();
        ctx.pio_load(Vr::new(0), h, &pairs)
    });
    measure("pio_st (n=100)", p.t_pio_st(100), &mut dev, &mut |ctx| {
        let pairs: Vec<(usize, usize)> = (0..100).map(|i| (i, i)).collect();
        ctx.pio_store(h, Vr::new(0), &pairs)
    });
    measure(
        "lookup (sigma=1024)",
        p.t_lookup(table_len),
        &mut dev,
        &mut |ctx| {
            ctx.core_mut().create_grp_index_u16(Vr::new(1), table_len)?;
            let t0 = ctx.core().cycles();
            ctx.lookup(Vr::new(0), Vr::new(1), 0, table_len)?;
            let _ = t0;
            Ok(())
        },
    );
    measure(
        "load/store",
        p.t_op(apu_sim::VecOp::LdSt),
        &mut dev,
        &mut |ctx| ctx.load(Vr::new(0), Vmr::new(0)),
    );
    measure("cpy", p.t_op(apu_sim::VecOp::Cpy), &mut dev, &mut |ctx| {
        ctx.core_mut().cpy_16(Vr::new(1), Vr::new(0))
    });
    measure(
        "cpy_subgrp",
        p.t_op(apu_sim::VecOp::CpySubgrp),
        &mut dev,
        &mut |ctx| {
            let l = ctx.core().vr_len();
            ctx.core_mut().cpy_subgrp_16(Vr::new(1), Vr::new(0), 256, l)
        },
    );
    measure(
        "cpy_imm",
        p.t_op(apu_sim::VecOp::CpyImm),
        &mut dev,
        &mut |ctx| ctx.core_mut().cpy_imm_16(Vr::new(0), 7),
    );
    measure("shift_e (k=3)", p.t_shift_e(3), &mut dev, &mut |ctx| {
        ctx.core_mut()
            .shift_elements_slow(Vr::new(0), 3, ShiftDir::TowardHead)
    });
    measure(
        "shift_e (4k, k=16)",
        p.t_shift_bank(16),
        &mut dev,
        &mut |ctx| {
            ctx.core_mut()
                .shift_elements(Vr::new(0), 64, ShiftDir::TowardHead)
        },
    );
    measure(
        "coalesced dma (4x16KB chunks)",
        p.t_dma_l4_l2(d),
        &mut dev,
        &mut |ctx| {
            let chunks: Vec<ChunkCopy> = (0..4)
                .map(|i| ChunkCopy::new(i * 16384, i * 16384, 16384))
                .collect();
            ctx.dma_l4_to_l2_chunks(h, &chunks)
        },
    );

    section("Table 4: data movement — analytical vs simulator-measured cycles");
    print_table(&["Operation", "Analytical", "Measured"], &rows);
    println!();
    println!("Measured includes the second-order overheads (command issue,");
    println!("DMA setup) that the analytical framework deliberately omits.");
}
