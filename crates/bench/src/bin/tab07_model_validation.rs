//! Table 7: analytical-framework validation — the all-opts kernel's
//! simulated ("measured") latency vs the analytical twin's prediction,
//! per Phoenix application.

use cis_bench::phoenix_suite::run_app;
use cis_bench::table::{print_table, section};
use phoenix::{App, OptConfig};

fn main() {
    let cfg = cis_bench::parse_args();
    section(&format!(
        "Table 7: measured (simulated) vs analytical-framework prediction (scale {:.4})",
        cfg.scale
    ));
    let mut rows = Vec::new();
    let mut errors = Vec::new();
    for app in App::ALL {
        let run = run_app(app, cfg, &[OptConfig::all()]);
        let measured = run.all_opts_ms().expect("all-opts variant");
        let err = (run.predicted_ms - measured) / measured * 100.0;
        errors.push(err.abs());
        rows.push(vec![
            app.name().to_string(),
            format!("{measured:.2}"),
            format!("{:.2}", run.predicted_ms),
            format!("{err:+.1}%"),
        ]);
        eprintln!("[tab07] {} done", app.name());
    }
    print_table(
        &[
            "Application",
            "Meas. latency (ms)",
            "Predicted (ms)",
            "Error",
        ],
        &rows,
    );
    let mean_err = errors.iter().sum::<f64>() / errors.len() as f64;
    println!();
    println!(
        "mean |error| {:.1}%, max |error| {:.1}% (paper: 2.7% avg, 6.2% max)",
        mean_err,
        errors.iter().cloned().fold(0.0, f64::max)
    );
}
