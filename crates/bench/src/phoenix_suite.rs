//! Shared Phoenix runner for the Table 6 / Fig. 13 / Table 7 binaries.

use std::hint::black_box;
use std::time::Instant;

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use cis_model::{LatencyEstimator, ModelParams};
use phoenix::common::cpu_threads;
use phoenix::{histogram, kmeans, linreg, matmul, revindex, strmatch, wordcount};
use phoenix::{App, OptConfig};

use crate::RunCfg;

/// One APU variant's outcome.
#[derive(Debug, Clone)]
pub struct VariantResult {
    /// Variant label.
    pub label: &'static str,
    /// Simulated device latency (ms).
    pub ms: f64,
    /// µCode instructions issued (VCU counter).
    pub ucode: u64,
}

/// One application's full result set.
#[derive(Debug, Clone)]
pub struct AppRun {
    /// Which application.
    pub app: App,
    /// Input description at the executed scale.
    pub input_desc: String,
    /// Estimated retired CPU instructions (Table 6 substitution).
    pub cpu_inst: u64,
    /// Measured single-threaded CPU wall time (ms).
    pub cpu_1t_ms: f64,
    /// Measured multi-threaded CPU wall time (ms).
    pub cpu_mt_ms: f64,
    /// APU results per requested variant.
    pub apu: Vec<VariantResult>,
    /// Analytical-framework prediction for the all-opts kernel (ms).
    pub predicted_ms: f64,
    /// Ratio of the paper's input work to this run's (for extrapolating
    /// counters to paper scale).
    pub paper_work_factor: f64,
}

fn device_for(input_bytes: usize, paper: bool) -> ApuDevice {
    let l4 = (input_bytes * 4 + (64 << 20)).next_power_of_two();
    let mut cfg = SimConfig::default().with_l4_bytes(l4);
    if paper {
        cfg = cfg.with_exec_mode(ExecMode::TimingOnly);
    }
    ApuDevice::new(cfg)
}

fn scaled(paper_bytes: u64, cfg: RunCfg, floor: u64) -> usize {
    if cfg.paper {
        paper_bytes as usize
    } else {
        ((paper_bytes as f64 * cfg.scale) as u64).max(floor) as usize
    }
}

/// Runs one application across the requested variants, measuring CPU
/// baselines and the simulated device; also evaluates the analytical
/// twin for the all-opts configuration.
pub fn run_app(app: App, cfg: RunCfg, variants: &[OptConfig]) -> AppRun {
    let threads = cpu_threads();
    let params = ModelParams::leda_e();
    match app {
        App::Histogram => {
            let bytes = scaled(1_500_000_000, cfg, 4 << 20);
            let data = histogram::generate(bytes, cfg.seed);
            let t = Instant::now();
            black_box(histogram::cpu(&data));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(histogram::cpu_mt(&data, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for(bytes * 2, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = histogram::apu(&mut dev, &data, o).expect("histogram kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            histogram::model(&mut est, bytes, OptConfig::all());
            AppRun {
                app,
                input_desc: crate::fmt_bytes(bytes as u64),
                cpu_inst: histogram::cpu_inst_estimate(bytes),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: 1_500_000_000.0 / bytes as f64,
            }
        }
        App::LinearRegression => {
            let points = scaled(128 * 1024 * 1024, cfg, 1 << 20);
            let data = linreg::generate(points, cfg.seed);
            let t = Instant::now();
            black_box(linreg::cpu(&data));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(linreg::cpu_mt(&data, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for(points * 8, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = linreg::apu(&mut dev, &data, o).expect("linreg kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            linreg::model(&mut est, points, OptConfig::all());
            AppRun {
                app,
                input_desc: format!("{} points", crate::fmt_count(points as u64)),
                cpu_inst: linreg::cpu_inst_estimate(points),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: (128.0 * 1024.0 * 1024.0) / points as f64,
            }
        }
        App::MatrixMultiply => {
            let (m, n, k) = if cfg.paper {
                (1024, 1024, 1024)
            } else {
                (128, 2048, 256)
            };
            let a = matmul::Mat::random(m, k, cfg.seed);
            let b = matmul::Mat::random(k, n, cfg.seed + 1);
            let t = Instant::now();
            black_box(matmul::cpu(&a, &b));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(matmul::cpu_mt(&a, &b, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for((m * k + k * n + m * n) * 2, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = matmul::apu(&mut dev, &a, &b, o).expect("matmul kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            matmul::model(&mut est, m, n, k, OptConfig::all());
            AppRun {
                app,
                input_desc: format!("{m} x {n} x {k}"),
                cpu_inst: matmul::cpu_inst_estimate(m, n, k),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: (1024.0f64 * 1024.0 * 1024.0) / (m * n * k) as f64,
            }
        }
        App::Kmeans => {
            let n = if cfg.paper {
                131_072
            } else {
                131_072.min(32_768.max((131_072.0 * cfg.scale * 64.0) as usize))
            };
            let input = kmeans::generate(n, 16, 4, 3, cfg.seed);
            let t = Instant::now();
            black_box(kmeans::cpu(&input));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(kmeans::cpu_mt(&input, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for(input.n_points() * 10, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = kmeans::apu(&mut dev, &input, o).expect("kmeans kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            kmeans::model(&mut est, &input, OptConfig::all());
            AppRun {
                app,
                input_desc: format!("{} points", crate::fmt_count(input.n_points() as u64)),
                cpu_inst: kmeans::cpu_inst_estimate(&input),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: 131_072.0 / input.n_points() as f64,
            }
        }
        App::ReverseIndex => {
            let bytes = scaled(100_000_000, cfg, 2 << 20);
            let text = revindex::generate(bytes, cfg.seed);
            let t = Instant::now();
            black_box(revindex::cpu(&text));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(revindex::cpu_mt(&text, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for(text.len() * 3, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = revindex::apu(&mut dev, &text, o).expect("revindex kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            revindex::model(&mut est, text.len(), OptConfig::all());
            AppRun {
                app,
                input_desc: crate::fmt_bytes(text.len() as u64),
                cpu_inst: revindex::cpu_inst_estimate(text.len()),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: 100_000_000.0 / text.len() as f64,
            }
        }
        App::StringMatch => {
            let bytes = scaled(512_000_000, cfg, 2 << 20);
            let text = strmatch::generate(bytes, cfg.seed);
            let keys = strmatch::default_keys();
            let t = Instant::now();
            black_box(strmatch::cpu(&text, &keys));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(strmatch::cpu_mt(&text, &keys, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for(text.len() * 3, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = strmatch::apu(&mut dev, &text, &keys, o).expect("strmatch kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            strmatch::model(&mut est, text.len(), &keys, OptConfig::all());
            AppRun {
                app,
                input_desc: crate::fmt_bytes(text.len() as u64),
                cpu_inst: strmatch::cpu_inst_estimate(text.len()),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: 512_000_000.0 / text.len() as f64,
            }
        }
        App::WordCount => {
            let bytes = scaled(10_000_000, cfg, 1 << 20);
            let text = wordcount::generate(bytes, cfg.seed);
            let t = Instant::now();
            black_box(wordcount::cpu(&text));
            let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
            let t = Instant::now();
            black_box(wordcount::cpu_mt(&text, threads));
            let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
            let mut dev = device_for(text.len() * 3, cfg.paper);
            let apu = variants
                .iter()
                .map(|&o| {
                    let (_, r) = wordcount::apu(&mut dev, &text, o).expect("wordcount kernel");
                    VariantResult {
                        label: o.label(),
                        ms: r.millis(),
                        ucode: r.stats.micro_ops,
                    }
                })
                .collect();
            let mut est = LatencyEstimator::new(params);
            wordcount::model(&mut est, text.len(), OptConfig::all());
            AppRun {
                app,
                input_desc: crate::fmt_bytes(text.len() as u64),
                cpu_inst: wordcount::cpu_inst_estimate(text.len()),
                cpu_1t_ms: cpu_1t,
                cpu_mt_ms: cpu_mt,
                apu,
                predicted_ms: est.report().total_us / 1e3,
                paper_work_factor: 10_000_000.0 / text.len() as f64,
            }
        }
    }
}

impl AppRun {
    /// The all-opts variant's simulated latency (ms), if it was run.
    pub fn all_opts_ms(&self) -> Option<f64> {
        self.apu
            .iter()
            .find(|v| v.label == "all opts")
            .map(|v| v.ms)
    }
}
