//! Minimal aligned-table printing for the harness binaries.

/// Prints an aligned table: a header row, a separator, then the rows.
pub fn print_table(headers: &[&str], rows: &[Vec<String>]) {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let line = |cells: &[String]| {
        let mut out = String::new();
        for (i, c) in cells.iter().enumerate().take(cols) {
            if i > 0 {
                out.push_str("  ");
            }
            out.push_str(&format!("{:<width$}", c, width = widths[i]));
        }
        println!("{}", out.trim_end());
    };
    line(&headers.iter().map(|h| h.to_string()).collect::<Vec<_>>());
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("--")
    );
    for row in rows {
        line(row);
    }
}

/// Prints a titled section break.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tables_do_not_panic() {
        print_table(
            &["a", "bbbb"],
            &[
                vec!["x".into(), "y".into()],
                vec!["longer".into(), "z".into()],
            ],
        );
        section("done");
    }
}
