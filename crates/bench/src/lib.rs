//! Benchmark harness regenerating every table and figure of the paper's
//! evaluation (§5). One binary per artifact — see DESIGN.md §4 for the
//! experiment index — plus Criterion micro/ablation benches under
//! `benches/`.
//!
//! Every binary accepts:
//!
//! * `--scale <f64>` — input-size multiplier relative to the paper's
//!   sizes (default 1/256 for the large inputs);
//! * `--paper-scale` — run the exact paper parameters (timing-only
//!   simulation where functional execution would be impractical);
//! * `--seed <u64>` — workload seed (default 42).

pub mod phoenix_suite;
pub mod table;

use std::env;

/// Parsed harness options.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunCfg {
    /// Input scale relative to the paper (1.0 = paper size).
    pub scale: f64,
    /// Whether `--paper-scale` was requested.
    pub paper: bool,
    /// Workload seed.
    pub seed: u64,
    /// Device-cluster width for sharded serving studies (`--shards`,
    /// default 1 = single device). Benches that don't shard ignore it.
    pub shards: usize,
    /// Whether `--smoke` was requested: a CI-oriented mode that runs a
    /// dispatch-heavy but fixed-size workload and writes a machine-
    /// readable `BENCH_<name>.json` summary next to the working
    /// directory. Benches without a smoke mode ignore it.
    pub smoke: bool,
}

impl Default for RunCfg {
    fn default() -> Self {
        RunCfg {
            scale: 1.0 / 256.0,
            paper: false,
            seed: 42,
            shards: 1,
            smoke: false,
        }
    }
}

/// Parses command-line options (ignores unknown flags).
pub fn parse_args() -> RunCfg {
    let mut cfg = RunCfg::default();
    let mut args = env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--scale" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    cfg.scale = v;
                }
            }
            "--paper-scale" => {
                cfg.paper = true;
                cfg.scale = 1.0;
            }
            "--seed" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    cfg.seed = v;
                }
            }
            "--shards" => {
                if let Some(v) = args.next().and_then(|s| s.parse().ok()) {
                    cfg.shards = std::cmp::max(v, 1);
                }
            }
            "--smoke" => {
                cfg.smoke = true;
            }
            _ => {}
        }
    }
    cfg
}

/// Formats a byte count ("1.5 GB", "6.0 MB").
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.1} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.1} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.1} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

/// Formats a large count ("4.8 billion", "110.7 million").
pub fn fmt_count(n: u64) -> String {
    let x = n as f64;
    if x >= 1e9 {
        format!("{:.1} billion", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1} million", x / 1e6)
    } else if x >= 1e3 {
        format!("{:.1} thousand", x / 1e3)
    } else {
        format!("{n}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(1_500_000_000), "1.5 GB");
        assert_eq!(fmt_bytes(6_000_000), "6.0 MB");
        assert_eq!(fmt_bytes(42), "42 B");
        assert_eq!(fmt_count(4_800_000_000), "4.8 billion");
        assert_eq!(fmt_count(110_700_000), "110.7 million");
        assert_eq!(fmt_count(12), "12");
    }

    #[test]
    fn default_cfg() {
        let c = RunCfg::default();
        assert!(!c.paper);
        assert!((c.scale - 1.0 / 256.0).abs() < 1e-12);
        assert_eq!(c.shards, 1);
    }
}
