//! Ablation: the subgroup-reduction cost surface (Eq. 1, DESIGN.md
//! §5.4) — simulated device time of `add_subgrp_s16` across subgroup
//! sizes.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, SimConfig, Vr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvml::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("sg_reduce");
    group.sample_size(10);
    for &s in &[16usize, 128, 1024, 8192, 32768] {
        group.bench_with_input(BenchmarkId::new("add_subgrp", s), &s, |b, &s| {
            b.iter_custom(|iters| {
                let mut dev = ApuDevice::new(
                    SimConfig::default()
                        .with_l4_bytes(2 << 20)
                        .with_exec_mode(ExecMode::TimingOnly),
                );
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = dev
                        .run_task(|ctx| ctx.core_mut().add_subgrp_s16(Vr::new(1), Vr::new(0), s, s))
                        .expect("reduce");
                    total += r.duration;
                }
                total
            });
        });
    }
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
