//! Ablation: blocking vs double-buffered (asynchronous) DMA for a
//! streaming kernel — the overlap headroom the device's two per-core
//! DMA engines provide.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, SimConfig, VecOp, Vmr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn device() -> ApuDevice {
    ApuDevice::new(
        SimConfig::default()
            .with_l4_bytes(64 << 20)
            .with_exec_mode(ExecMode::TimingOnly),
    )
}

/// Simulated time of streaming `tiles` tiles with `compute_cmds` heavy
/// vector commands per tile.
fn run(tiles: usize, compute_cmds: usize, overlapped: bool) -> Duration {
    let mut dev = device();
    let n = dev.config().vr_len;
    let h = dev.alloc_u16(tiles * n).expect("alloc");
    let report = dev
        .run_task(|ctx| {
            if overlapped {
                let mut pending = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
                for i in 0..tiles {
                    ctx.dma_wait(pending);
                    if i + 1 < tiles {
                        pending = ctx.dma_l4_to_l1_async(
                            Vmr::new(((i + 1) % 2) as u8),
                            h.offset_by((i + 1) * n * 2)?,
                        )?;
                    }
                    for _ in 0..compute_cmds {
                        ctx.core_mut().charge(VecOp::MulS16);
                    }
                }
                ctx.dma_wait_all();
            } else {
                for i in 0..tiles {
                    ctx.dma_l4_to_l1(Vmr::new(0), h.offset_by(i * n * 2)?)?;
                    for _ in 0..compute_cmds {
                        ctx.core_mut().charge(VecOp::MulS16);
                    }
                }
            }
            Ok(())
        })
        .expect("kernel");
    report.duration
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dma_overlap");
    group.sample_size(10);
    // compute per tile from far below to above the 22k-cycle transfer
    for &cmds in &[10usize, 60, 110, 220] {
        for overlapped in [false, true] {
            let label = if overlapped {
                "double_buffered"
            } else {
                "blocking"
            };
            group.bench_with_input(
                BenchmarkId::new(label, format!("{cmds}cmds")),
                &cmds,
                |b, &cmds| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            total += run(16, cmds, overlapped);
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
