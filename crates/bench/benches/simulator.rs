//! Host wall-clock throughput of the functional simulator itself (how
//! fast this repository simulates the device, not how fast the device
//! is).

use apu_sim::{ApuDevice, SimConfig, Vr};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gvml::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(2 << 20));
    let n = dev.config().vr_len as u64;

    group.throughput(Throughput::Elements(n));
    group.bench_function("add_u16_32k_lanes", |b| {
        b.iter(|| {
            dev.run_task(|ctx| ctx.core_mut().add_u16(Vr::new(2), Vr::new(0), Vr::new(1)))
                .expect("op")
        });
    });
    group.bench_function("mul_s16_32k_lanes", |b| {
        b.iter(|| {
            dev.run_task(|ctx| ctx.core_mut().mul_s16(Vr::new(2), Vr::new(0), Vr::new(1)))
                .expect("op")
        });
    });
    group.bench_function("add_subgrp_s16_1024", |b| {
        b.iter(|| {
            dev.run_task(|ctx| {
                ctx.core_mut()
                    .add_subgrp_s16(Vr::new(2), Vr::new(0), 1024, 1024)
            })
            .expect("op")
        });
    });
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
