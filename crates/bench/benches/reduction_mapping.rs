//! Ablation: spatial vs temporal reduction mapping (DESIGN.md §5.1).
//!
//! Criterion's `iter_custom` reports the **simulated device time** of
//! each strategy — the quantity the paper's opt1 targets — rather than
//! host wall-clock.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, SimConfig};
use binmm::{ApuMatmul, BinMatrix};
use cis_core::MatmulVariant;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn device() -> ApuDevice {
    ApuDevice::new(
        SimConfig::default()
            .with_l4_bytes(256 << 20)
            .with_exec_mode(ExecMode::TimingOnly),
    )
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("reduction_mapping");
    group.sample_size(10);
    for &m in &[64usize, 256] {
        let problem = ApuMatmul::new(
            BinMatrix::random(m, 1024, 1),
            BinMatrix::random(2048, 1024, 2),
        )
        .expect("shape");
        for (label, variant) in [
            ("spatial", MatmulVariant::Baseline),
            ("temporal", MatmulVariant::Opt1),
        ] {
            group.bench_with_input(BenchmarkId::new(label, m), &problem, |b, problem| {
                b.iter_custom(|iters| {
                    let mut dev = device();
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        let run = problem.run(&mut dev, variant).expect("kernel");
                        total += run.report.duration;
                    }
                    total
                });
            });
        }
    }
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
