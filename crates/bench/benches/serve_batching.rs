//! Continuous batching vs one-query-per-dispatch serving at equal
//! offered load (DESIGN.md §6). Replays the same open-loop RAG query
//! stream through [`RagServer`] twice — once with the VR-limited
//! continuous-batching dispatcher, once with `max_batch = 1` — and
//! reports sustained QPS, tail latency, and dispatch counts on the
//! simulated timeline. Batched hits are asserted identical to the
//! unbatched hits before any number is printed.
//!
//! A second sweep re-serves the same stream with a deterministic
//! injected task-fault rate and retries enabled: every query that
//! still serves is asserted bitwise-identical to the fault-free run,
//! and failures surface as error completions rather than lost work.
//!
//! Plain `main` (no harness): simulated time is deterministic, so a
//! single replay per configuration is exact.
//!
//! Run with: `cargo bench -p cis-bench --bench serve_batching`

use std::collections::HashMap;
use std::time::Duration;

use apu_sim::{ApuDevice, FaultPlan, RetryPolicy, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{CorpusSpec, EmbeddingStore, Hit, ServeConfig, ServeReport};

/// One serving scenario: `queries` arrive `gap` apart on the virtual
/// timeline and drain through a fresh device. A non-zero `fault_rate`
/// arms a deterministic task-fault plan and bounded retries.
fn serve(
    store: &EmbeddingStore,
    queries: &[Vec<i16>],
    gap: Duration,
    max_batch: usize,
    fault_rate: f64,
) -> ServeReport {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20));
    if fault_rate > 0.0 {
        dev.inject_faults(FaultPlan::new(42).fail_task_rate(fault_rate));
    }
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let cfg = ServeConfig {
        max_batch,
        retry: (fault_rate > 0.0).then(RetryPolicy::default),
        ..ServeConfig::default()
    };
    let mut server = rag::RagServer::new(&mut dev, &mut hbm, store, cfg);
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(gap * i as u32, q.clone())
            .expect("submission under capacity");
    }
    server.drain().expect("drain")
}

fn hits_by_ticket(r: &ServeReport) -> HashMap<u64, Vec<Hit>> {
    r.completions
        .iter()
        .filter_map(|c| c.hits().map(|h| (c.ticket.id(), h.to_vec())))
        .collect()
}

fn main() {
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 16_384,
        },
        42,
    );

    println!("serve_batching: 16,384-chunk corpus, open-loop arrivals, k = 5");
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}  {:>9}  {:>10}  {:>10}",
        "queries", "gap_us", "mode", "QPS", "p50_ms", "p99_ms", "dispatches"
    );

    // Sweep offered load from comfortable to saturating. At light load
    // batching trades latency and throughput for nothing (one batch
    // under-fills the core pipeline); once arrivals outrun per-query
    // service the coalesced embedding stream wins on both axes.
    for &(n, gap_us) in &[(24usize, 200u64), (48, 50), (96, 50)] {
        let queries: Vec<Vec<i16>> = (0..n as u64).map(|i| store.query(i)).collect();
        let gap = Duration::from_micros(gap_us);

        let batched = serve(&store, &queries, gap, rag::MAX_BATCH, 0.0);
        let unbatched = serve(&store, &queries, gap, 1, 0.0);
        assert_eq!(
            hits_by_ticket(&batched),
            hits_by_ticket(&unbatched),
            "batched hits must be identical to per-query hits"
        );

        for (mode, report) in [("batched", &batched), ("unbatched", &unbatched)] {
            // Per-stage attribution of the total latency budget: queue
            // wait vs command issue vs DMA vs device compute. The four
            // shares sum to 100% by construction.
            let stages = report.stage_totals();
            let total = stages.total().as_secs_f64().max(f64::MIN_POSITIVE);
            let share = |d: Duration| 100.0 * d.as_secs_f64() / total;
            println!(
                "{:>8}  {:>8}  {:>10}  {:>10.0}  {:>9.2}  {:>10.2}  {:>10}  \
                 wait {:.0}% / dispatch {:.0}% / dma {:.0}% / device {:.0}%",
                n,
                gap_us,
                mode,
                report.throughput_qps(),
                report.latency_percentile(0.50).as_secs_f64() * 1e3,
                report.latency_percentile(0.99).as_secs_f64() * 1e3,
                report.queue.dispatches,
                share(stages.queue_wait),
                share(stages.dispatch),
                share(stages.dma),
                share(stages.device),
            );
        }
        println!(
            "{:>8}  {:>8}  {:>10}  speedup {:.2}x, mean batch {:.1}",
            "",
            "",
            "",
            batched.throughput_qps() / unbatched.throughput_qps(),
            batched.queue.mean_batch_size(),
        );
    }

    // ---- fault-rate sweep: failure containment under injection ----
    println!();
    println!("fault sweep: 48 queries, 50 µs gap, batched, bounded retries");
    println!(
        "{:>10}  {:>8}  {:>8}  {:>8}  {:>10}  {:>10}",
        "fault_rate", "served", "failed", "retries", "QPS", "p99_ms"
    );
    let queries: Vec<Vec<i16>> = (0..48u64).map(|i| store.query(i)).collect();
    let gap = Duration::from_micros(50);
    let clean = serve(&store, &queries, gap, rag::MAX_BATCH, 0.0);
    let clean_hits = hits_by_ticket(&clean);
    for &rate in &[0.0, 0.1, 0.3] {
        let faulted = serve(&store, &queries, gap, rag::MAX_BATCH, rate);
        assert_eq!(
            faulted.completions.len(),
            queries.len(),
            "every query must retire — served or failed, never dropped"
        );
        // Every query that survives the fault plan serves hits bitwise
        // identical to the fault-free run.
        for (ticket, hits) in hits_by_ticket(&faulted) {
            assert_eq!(
                &hits, &clean_hits[&ticket],
                "query {ticket} diverged from the fault-free run"
            );
        }
        println!(
            "{:>10.2}  {:>8}  {:>8}  {:>8}  {:>10.0}  {:>10.2}",
            rate,
            faulted.served(),
            faulted.failed(),
            faulted.queue.retries,
            faulted.throughput_qps(),
            faulted.latency_percentile(0.99).as_secs_f64() * 1e3,
        );
    }
}
