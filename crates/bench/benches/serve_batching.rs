//! Continuous batching vs one-query-per-dispatch serving at equal
//! offered load (DESIGN.md §6). Replays the same open-loop RAG query
//! stream through [`RagServer`] twice — once with the VR-limited
//! continuous-batching dispatcher, once with `max_batch = 1` — and
//! reports sustained QPS, tail latency, and dispatch counts on the
//! simulated timeline. Batched hits are asserted identical to the
//! unbatched hits before any number is printed.
//!
//! Plain `main` (no harness): simulated time is deterministic, so a
//! single replay per configuration is exact.
//!
//! Run with: `cargo bench -p cis-bench --bench serve_batching`

use std::collections::HashMap;
use std::time::Duration;

use apu_sim::{ApuDevice, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{CorpusSpec, EmbeddingStore, Hit, ServeConfig, ServeReport};

/// One serving scenario: `queries` arrive `gap` apart on the virtual
/// timeline and drain through a fresh device.
fn serve(
    store: &EmbeddingStore,
    queries: &[Vec<i16>],
    gap: Duration,
    max_batch: usize,
) -> ServeReport {
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20));
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let cfg = ServeConfig {
        max_batch,
        ..ServeConfig::default()
    };
    let mut server = rag::RagServer::new(&mut dev, &mut hbm, store, cfg);
    for (i, q) in queries.iter().enumerate() {
        server
            .submit(gap * i as u32, q.clone())
            .expect("submission under capacity");
    }
    server.drain().expect("drain")
}

fn hits_by_ticket(r: &ServeReport) -> HashMap<u64, Vec<Hit>> {
    r.completions
        .iter()
        .map(|c| (c.ticket.id(), c.hits.clone()))
        .collect()
}

fn main() {
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 16_384,
        },
        42,
    );

    println!("serve_batching: 16,384-chunk corpus, open-loop arrivals, k = 5");
    println!(
        "{:>8}  {:>8}  {:>10}  {:>10}  {:>9}  {:>10}  {:>10}",
        "queries", "gap_us", "mode", "QPS", "p50_ms", "p99_ms", "dispatches"
    );

    // Sweep offered load from comfortable to saturating. At light load
    // batching trades latency and throughput for nothing (one batch
    // under-fills the core pipeline); once arrivals outrun per-query
    // service the coalesced embedding stream wins on both axes.
    for &(n, gap_us) in &[(24usize, 200u64), (48, 50), (96, 50)] {
        let queries: Vec<Vec<i16>> = (0..n as u64).map(|i| store.query(i)).collect();
        let gap = Duration::from_micros(gap_us);

        let batched = serve(&store, &queries, gap, rag::MAX_BATCH);
        let unbatched = serve(&store, &queries, gap, 1);
        assert_eq!(
            hits_by_ticket(&batched),
            hits_by_ticket(&unbatched),
            "batched hits must be identical to per-query hits"
        );

        for (mode, report) in [("batched", &batched), ("unbatched", &unbatched)] {
            println!(
                "{:>8}  {:>8}  {:>10}  {:>10.0}  {:>9.2}  {:>10.2}  {:>10}",
                n,
                gap_us,
                mode,
                report.throughput_qps(),
                report.latency_percentile(0.50).as_secs_f64() * 1e3,
                report.latency_percentile(0.99).as_secs_f64() * 1e3,
                report.queue.dispatches,
            );
        }
        println!(
            "{:>8}  {:>8}  {:>10}  speedup {:.2}x, mean batch {:.1}",
            "",
            "",
            "",
            batched.throughput_qps() / unbatched.throughput_qps(),
            batched.queue.mean_batch_size(),
        );
    }
}
