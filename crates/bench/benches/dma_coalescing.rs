//! Ablation: DMA coalescing factor (DESIGN.md §5.2) — simulated device
//! time of moving the same bytes as 1, 4, 16, or 64 separate
//! transactions vs one programmed chunk list.

use std::time::Duration;

use apu_sim::dma::ChunkCopy;
use apu_sim::{ApuDevice, ExecMode, SimConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("dma_coalescing");
    group.sample_size(10);
    let total_bytes = 64 * 1024;
    for &txns in &[1usize, 4, 16, 64] {
        group.bench_with_input(BenchmarkId::new("separate", txns), &txns, |b, &txns| {
            b.iter_custom(|iters| {
                let mut dev = ApuDevice::new(
                    SimConfig::default()
                        .with_l4_bytes(8 << 20)
                        .with_exec_mode(ExecMode::TimingOnly),
                );
                let h = dev.alloc(total_bytes).expect("alloc");
                let chunk = total_bytes / txns;
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = dev
                        .run_task(|ctx| {
                            for i in 0..txns {
                                ctx.dma_l4_to_l2(0, h.offset_by(i * chunk)?, chunk)?;
                            }
                            Ok(())
                        })
                        .expect("dma");
                    total += r.duration;
                }
                total
            });
        });
        group.bench_with_input(BenchmarkId::new("coalesced", txns), &txns, |b, &txns| {
            b.iter_custom(|iters| {
                let mut dev = ApuDevice::new(
                    SimConfig::default()
                        .with_l4_bytes(8 << 20)
                        .with_exec_mode(ExecMode::TimingOnly),
                );
                let h = dev.alloc(total_bytes).expect("alloc");
                let chunk = total_bytes / txns;
                let chunks: Vec<ChunkCopy> = (0..txns)
                    .map(|i| ChunkCopy::new(i * chunk, i * chunk, chunk))
                    .collect();
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = dev
                        .run_task(|ctx| ctx.dma_l4_to_l2_chunks(h, &chunks))
                        .expect("dma");
                    total += r.duration;
                }
                total
            });
        });
    }
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
