//! Ablation: lookup-table size vs broadcast-friendly layout (DESIGN.md
//! §5.3) — simulated device time of a scalar broadcast through L3
//! lookups as the contiguous window shrinks from `K·N`-style sizes down
//! to the friendly window.

use std::time::Duration;

use apu_sim::{ApuDevice, ExecMode, SimConfig, Vr};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gvml::prelude::*;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("broadcast_layout");
    group.sample_size(10);
    for &sigma in &[32usize, 512, 4096, 65536 / 2] {
        group.bench_with_input(BenchmarkId::new("lookup", sigma), &sigma, |b, &sigma| {
            b.iter_custom(|iters| {
                let mut dev = ApuDevice::new(
                    SimConfig::default()
                        .with_l4_bytes(4 << 20)
                        .with_exec_mode(ExecMode::TimingOnly),
                );
                let mut total = Duration::ZERO;
                for _ in 0..iters {
                    let r = dev
                        .run_task(|ctx| {
                            ctx.core_mut().create_grp_index_u16(Vr::new(1), sigma)?;
                            ctx.lookup(Vr::new(0), Vr::new(1), 0, sigma)
                        })
                        .expect("lookup");
                    total += r.duration;
                }
                total
            });
        });
    }
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
