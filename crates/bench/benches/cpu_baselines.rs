//! Host wall-clock micro-benchmarks of the CPU reference
//! implementations (the real comparison side of Fig. 13 / Fig. 14).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phoenix::common::cpu_threads;
use rag::corpus::CorpusSpec;
use rag::EmbeddingStore;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("cpu_baselines");
    group.sample_size(10);

    let bytes = 4 << 20;
    let hist_data = phoenix::histogram::generate(bytes, 1);
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("histogram_1t", |b| {
        b.iter(|| phoenix::histogram::cpu(&hist_data))
    });
    group.bench_function("histogram_mt", |b| {
        b.iter(|| phoenix::histogram::cpu_mt(&hist_data, cpu_threads()))
    });

    let text = phoenix::wordcount::generate(1 << 20, 2);
    group.throughput(Throughput::Bytes(1 << 20));
    group.bench_function("wordcount_1t", |b| {
        b.iter(|| phoenix::wordcount::cpu(&text))
    });

    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 20_000,
        },
        3,
    );
    let q = store.query(0);
    group.throughput(Throughput::Bytes(store.spec().embedding_bytes()));
    group.bench_with_input(
        BenchmarkId::new("rag_enns", "20k-chunks"),
        &store,
        |b, store| b.iter(|| rag::cpu_retrieve(store, &q, 5, cpu_threads())),
    );
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
