//! Ablation: off-chip memory technology for the RAG embedding stream
//! (DESIGN.md §5.5) — simulated DRAM time for HBM2e vs the device's
//! native DDR4 across transfer sizes.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hbm_sim::{DramSpec, MemorySystem};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("offchip_memory");
    group.sample_size(10);
    for &mb in &[8u64, 64] {
        let bytes = mb << 20;
        group.throughput(Throughput::Bytes(bytes));
        for (label, spec) in [
            ("hbm2e", DramSpec::hbm2e_16gb()),
            ("ddr4", DramSpec::ddr4_apu()),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{mb}MB")),
                &spec,
                |b, spec| {
                    b.iter_custom(|iters| {
                        let mut total = Duration::ZERO;
                        for _ in 0..iters {
                            let mut mem = MemorySystem::new(spec.clone());
                            let r = mem.stream_read(0, bytes);
                            total += Duration::from_nanos(r.ns as u64);
                        }
                        total
                    });
                },
            );
        }
    }
    group.finish();
}

fn deterministic_config() -> Criterion {
    // Simulated-time samples are deterministic (zero variance), which
    // breaks Criterion's distribution plots; keep reports text-only.
    Criterion::default().without_plots()
}

criterion_group! {
    name = benches;
    config = deterministic_config();
    targets = bench
}
criterion_main!(benches);
