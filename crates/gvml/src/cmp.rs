//! Comparison operations and marker-register manipulation.
//!
//! Comparisons write boolean *marks* into a marker register; marked
//! entries can then be counted (`count_m`), used to mask copies, or
//! serially extracted through the RSP FIFO. This mirrors GVML's
//! mark-based programming style (`gvml_eq_16`, `gvml_cnt_m`,
//! `gvml_cpy_16_msk`, ...).

use apu_sim::{ApuCore, Marker, VecOp, Vr};

use crate::float::gf16_to_f32;
use crate::Result;

/// Comparison and marker operations.
pub trait CmpOps {
    /// `eq_16`: mark elements where `a == b`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn eq_16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// Mark elements equal to an immediate.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn eq_imm_16(&mut self, mrk: Marker, a: Vr, imm: u16) -> Result<()>;

    /// `gt_u16`: mark elements where `a > b` (unsigned).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn gt_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// `lt_u16`: mark elements where `a < b` (unsigned).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn lt_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// `ge_u16`: mark elements where `a >= b` (unsigned).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn ge_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// `le_u16`: mark elements where `a <= b` (unsigned).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn le_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// Signed `a < b` comparison (GVML `lt_s16`; charged like `lt_u16`).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn lt_s16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// `lt_gf16`: mark elements where `a < b` in GSI float16 ordering.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn lt_gf16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()>;

    /// `count_m`: number of marked entries (239 cycles).
    ///
    /// Returns 0 in timing-only mode.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range marker index.
    fn count_m(&mut self, mrk: Marker) -> Result<u32>;

    /// Inverts every mark.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range marker index.
    fn not_m(&mut self, mrk: Marker) -> Result<()>;

    /// ANDs marker `b` into marker `a`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range marker indices.
    fn and_m(&mut self, a: Marker, b: Marker) -> Result<()>;

    /// `cpy_16_msk`: copies `src` into `dst` only at marked positions.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices or aliased `dst`/`src`.
    fn cpy_16_msk(&mut self, dst: Vr, src: Vr, mrk: Marker) -> Result<()>;

    /// Broadcasts an immediate into `dst` only at marked positions
    /// (`cpy_imm_16_msk`).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices.
    fn cpy_imm_16_msk(&mut self, dst: Vr, imm: u16, mrk: Marker) -> Result<()>;

    /// Serially extracts the values of marked entries (paired with their
    /// element indices) through the RSP FIFO — the expensive intra-VR
    /// gather Phoenix-style workloads must pay for scattered results.
    /// Costs one `count_m` plus one PIO store per marked element.
    ///
    /// Returns an empty vector in timing-only mode (the count is still
    /// charged as if `expected_marked` entries were extracted; pass the
    /// workload's expectation so timing matches functional mode).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range indices.
    fn extract_marked(
        &mut self,
        src: Vr,
        mrk: Marker,
        expected_marked: usize,
    ) -> Result<Vec<(usize, u16)>>;
}

fn compare<F>(core: &mut ApuCore, mrk: Marker, a: Vr, b: Vr, f: F) -> Result<()>
where
    F: Fn(u16, u16) -> bool,
{
    core.marker(mrk)?;
    core.vr(a)?;
    core.vr(b)?;
    if !core.is_functional() {
        return Ok(());
    }
    let (m, x, y) = core.marker_with_vrs(mrk, a, b)?;
    for ((o, &xv), &yv) in m.iter_mut().zip(x.iter()).zip(y.iter()) {
        *o = f(xv, yv);
    }
    Ok(())
}

impl CmpOps for ApuCore {
    fn eq_16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::Eq16);
        compare(self, mrk, a, b, |x, y| x == y)
    }

    fn eq_imm_16(&mut self, mrk: Marker, a: Vr, imm: u16) -> Result<()> {
        self.charge(VecOp::Eq16);
        self.marker(mrk)?;
        self.vr(a)?;
        if !self.is_functional() {
            return Ok(());
        }
        let (m, x, _) = self.marker_with_vrs(mrk, a, a)?;
        for (o, &xv) in m.iter_mut().zip(x.iter()) {
            *o = xv == imm;
        }
        Ok(())
    }

    fn gt_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::GtU16);
        compare(self, mrk, a, b, |x, y| x > y)
    }

    fn lt_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::LtU16);
        compare(self, mrk, a, b, |x, y| x < y)
    }

    fn ge_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::GeU16);
        compare(self, mrk, a, b, |x, y| x >= y)
    }

    fn le_u16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::LeU16);
        compare(self, mrk, a, b, |x, y| x <= y)
    }

    fn lt_s16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::LtU16);
        compare(self, mrk, a, b, |x, y| (x as i16) < (y as i16))
    }

    fn lt_gf16(&mut self, mrk: Marker, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::LtGf16);
        compare(self, mrk, a, b, |x, y| gf16_to_f32(x) < gf16_to_f32(y))
    }

    fn count_m(&mut self, mrk: Marker) -> Result<u32> {
        self.charge(VecOp::CountM);
        self.marker(mrk)?;
        if !self.is_functional() {
            return Ok(0);
        }
        Ok(self.marker(mrk)?.iter().filter(|&&m| m).count() as u32)
    }

    fn not_m(&mut self, mrk: Marker) -> Result<()> {
        self.charge(VecOp::Not16);
        if !self.is_functional() {
            self.marker(mrk)?;
            return Ok(());
        }
        for m in self.marker_mut(mrk)?.iter_mut() {
            *m = !*m;
        }
        Ok(())
    }

    fn and_m(&mut self, a: Marker, b: Marker) -> Result<()> {
        self.charge(VecOp::And16);
        self.marker(a)?;
        self.marker(b)?;
        if !self.is_functional() {
            return Ok(());
        }
        if a == b {
            return Ok(());
        }
        let other = self.marker(b)?.to_vec();
        for (m, o) in self.marker_mut(a)?.iter_mut().zip(other) {
            *m &= o;
        }
        Ok(())
    }

    fn cpy_16_msk(&mut self, dst: Vr, src: Vr, mrk: Marker) -> Result<()> {
        self.charge(VecOp::Cpy);
        self.vr(dst)?;
        self.vr(src)?;
        self.marker(mrk)?;
        if !self.is_functional() {
            return Ok(());
        }
        let marks = self.marker(mrk)?.to_vec();
        let (d, s) = self.vr_pair_mut(dst, src)?;
        for ((o, &v), &mk) in d.iter_mut().zip(s.iter()).zip(marks.iter()) {
            if mk {
                *o = v;
            }
        }
        Ok(())
    }

    fn cpy_imm_16_msk(&mut self, dst: Vr, imm: u16, mrk: Marker) -> Result<()> {
        self.charge(VecOp::CpyImm);
        self.vr(dst)?;
        self.marker(mrk)?;
        if !self.is_functional() {
            return Ok(());
        }
        let marks = self.marker(mrk)?.to_vec();
        let d = self.vr_mut(dst)?;
        for (o, &mk) in d.iter_mut().zip(marks.iter()) {
            if mk {
                *o = imm;
            }
        }
        Ok(())
    }

    fn extract_marked(
        &mut self,
        src: Vr,
        mrk: Marker,
        expected_marked: usize,
    ) -> Result<Vec<(usize, u16)>> {
        self.vr(src)?;
        self.marker(mrk)?;
        let n = if self.is_functional() {
            self.marker(mrk)?.iter().filter(|&&m| m).count()
        } else {
            expected_marked
        };
        self.charge(VecOp::CountM);
        let fifo_cost = apu_sim::Cycles::new(self.config().timing.pio_st_per_elem * n as u64);
        self.charge_cycles(apu_sim::core::CycleClass::Pio, fifo_cost);
        self.note_pio_transfer(n as u64);
        if !self.is_functional() {
            return Ok(Vec::new());
        }
        let marks = self.marker(mrk)?.to_vec();
        let vals = self.vr(src)?;
        Ok(marks
            .iter()
            .enumerate()
            .filter(|(_, &m)| m)
            .map(|(i, _)| (i, vals[i]))
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn comparisons_set_marks() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16 % 10);
            fill(core, Vr::new(1), |_| 5);
            core.lt_u16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            let m = core.marker(Marker::new(0))?;
            assert!(m[4] && !m[5] && !m[7]);
            core.ge_u16(Marker::new(1), Vr::new(0), Vr::new(1))?;
            assert!(core.marker(Marker::new(1))?[5]);
            core.eq_16(Marker::new(2), Vr::new(0), Vr::new(1))?;
            assert!(core.marker(Marker::new(2))?[5]);
            assert!(!core.marker(Marker::new(2))?[6]);
            Ok(())
        });
    }

    #[test]
    fn signed_compare_differs_from_unsigned() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| (-1i16) as u16);
            fill(core, Vr::new(1), |_| 1);
            core.lt_u16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            assert!(!core.marker(Marker::new(0))?[0]); // 0xFFFF > 1 unsigned
            core.lt_s16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            assert!(core.marker(Marker::new(0))?[0]); // -1 < 1 signed
            Ok(())
        });
    }

    #[test]
    fn gf16_compare_orders_by_value() {
        use crate::float::gf16_from_f32;
        with_core(|core| {
            fill(core, Vr::new(0), |_| gf16_from_f32(2.0));
            fill(core, Vr::new(1), |_| gf16_from_f32(1000.0));
            core.lt_gf16(Marker::new(0), Vr::new(0), Vr::new(1))?;
            assert!(core.marker(Marker::new(0))?[0]);
            Ok(())
        });
    }

    #[test]
    fn count_and_logic_on_marks() {
        with_core(|core| {
            let n = core.vr_len();
            fill(core, Vr::new(0), |i| (i % 4) as u16);
            core.eq_imm_16(Marker::new(0), Vr::new(0), 1)?;
            assert_eq!(core.count_m(Marker::new(0))?, n as u32 / 4);
            core.not_m(Marker::new(0))?;
            assert_eq!(core.count_m(Marker::new(0))?, 3 * n as u32 / 4);
            core.eq_imm_16(Marker::new(1), Vr::new(0), 2)?;
            core.and_m(Marker::new(0), Marker::new(1))?;
            assert_eq!(core.count_m(Marker::new(0))?, n as u32 / 4);
            Ok(())
        });
    }

    #[test]
    fn masked_copies() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            fill(core, Vr::new(1), |_| 999);
            core.eq_imm_16(Marker::new(0), Vr::new(0), 3)?;
            core.cpy_16_msk(Vr::new(1), Vr::new(0), Marker::new(0))?;
            assert_eq!(core.vr(Vr::new(1))?[3], 3);
            assert_eq!(core.vr(Vr::new(1))?[4], 999);
            core.cpy_imm_16_msk(Vr::new(1), 0, Marker::new(0))?;
            assert_eq!(core.vr(Vr::new(1))?[3], 0);
            Ok(())
        });
    }

    #[test]
    fn extract_marked_returns_pairs_and_charges_per_element() {
        let ((pairs, delta), n) = with_core(|core| {
            let n = core.vr_len();
            fill(core, Vr::new(0), |i| i as u16);
            core.eq_imm_16(Marker::new(0), Vr::new(0), 7)?;
            // indices 7, 65543 % 65536 == 7... with vr_len 32768 only i=7
            let t0 = core.cycles();
            let pairs = core.extract_marked(Vr::new(0), Marker::new(0), 0)?;
            let delta = (core.cycles() - t0).get();
            Ok(((pairs, delta), n))
        });
        assert_eq!(pairs, vec![(7, 7)]);
        assert_eq!(delta, 239 + 2 + 61);
        assert!(n > 7);
    }
}
