#![warn(missing_docs)]

//! GVML-equivalent vector math library for the simulated compute-in-SRAM
//! device.
//!
//! The GSI Vector Math Library (GVML) is the vendor's C API for vector
//! operations on the APU; this crate is its Rust equivalent on top of
//! [`apu_sim`]. It provides every operation of the paper's Table 5
//! (arithmetic, logical, comparison, trigonometric, reduction) and the
//! on-chip data-movement operations of Table 4 (`cpy`, `cpy_subgrp`,
//! `cpy_imm`, element shifts), with cycle costs charged from the device
//! calibration table.
//!
//! Operations are exposed as extension traits on [`apu_sim::ApuCore`],
//! grouped by category; import [`prelude`] to get all of them:
//!
//! ```rust
//! use apu_sim::{ApuDevice, SimConfig, Vr};
//! use gvml::prelude::*;
//!
//! # fn main() -> Result<(), apu_sim::Error> {
//! let mut dev = ApuDevice::new(SimConfig::default());
//! dev.run_task(|ctx| {
//!     let core = ctx.core_mut();
//!     core.cpy_imm_16(Vr::new(0), 21)?;
//!     core.add_u16(Vr::new(1), Vr::new(0), Vr::new(0))?;
//!     assert_eq!(core.vr(Vr::new(1))?[0], 42);
//!     Ok(())
//! })?;
//! # Ok(())
//! # }
//! ```
//!
//! # Fidelity notes
//!
//! * Every operation charges the *measured* per-command latency of the
//!   paper's Tables 4–5 plus the VCU issue overhead; cycle accounting is
//!   identical in functional and timing-only modes.
//! * Bit-level construction of arithmetic from Table 2 micro-ops is
//!   demonstrated and tested in `apu_sim::micro`; for speed, this crate
//!   computes element-wise results directly and charges the calibrated
//!   command cost, which is what the VCU-issued microcode would take.
//! * Subgroup reductions ([`ReduceOps`]) are built from staged intra-VR
//!   shifts and element-wise adds, so their (non-linear) cost *emerges*
//!   from data-movement primitives — the behaviour Eq. 1 of the paper
//!   models analytically.

pub mod arith;
pub mod bitserial;
pub mod cmp;
pub mod fixed;
pub mod float;
pub mod index;
pub mod minmax;
pub mod movement;
pub mod reduce;
pub mod shift;

mod ops_util;

pub use arith::ArithOps;
pub use bitserial::BitSerialOps;
pub use cmp::CmpOps;
pub use fixed::FixedOps;
pub use float::{f16_from_f32, f16_to_f32, gf16_from_f32, gf16_to_f32, FloatOps};
pub use index::IndexOps;
pub use minmax::MinMaxOps;
pub use movement::MoveOps;
pub use reduce::ReduceOps;
pub use shift::ShiftOps;

/// Convenience re-exports: all operation traits plus the core types they
/// operate on.
pub mod prelude {
    pub use crate::arith::ArithOps;
    pub use crate::bitserial::BitSerialOps;
    pub use crate::cmp::CmpOps;
    pub use crate::fixed::FixedOps;
    pub use crate::float::FloatOps;
    pub use crate::index::IndexOps;
    pub use crate::minmax::MinMaxOps;
    pub use crate::movement::MoveOps;
    pub use crate::reduce::ReduceOps;
    pub use crate::shift::ShiftOps;
    pub use apu_sim::{Marker, Vmr, Vr};
}

/// Crate-wide result alias (errors are [`apu_sim::Error`]).
pub type Result<T> = apu_sim::Result<T>;
