//! Internal helpers: alias-safe element-wise operation plumbing shared by
//! every operation module.

use apu_sim::{ApuCore, Vr};

use crate::Result;

/// Runs an element-wise binary operation `dst[i] = f(a[i], b[i])`,
/// handling every aliasing combination of the three registers. The caller
/// has already charged the command cost; this only moves data, and only
/// in functional mode.
pub(crate) fn bin_op<F>(core: &mut ApuCore, dst: Vr, a: Vr, b: Vr, f: F) -> Result<()>
where
    F: Fn(u16, u16) -> u16,
{
    // Validate indices in every mode.
    core.vr(dst)?;
    core.vr(a)?;
    core.vr(b)?;
    if !core.is_functional() {
        return Ok(());
    }
    if dst == a && dst == b {
        let d = core.vr_mut(dst)?;
        for x in d.iter_mut() {
            *x = f(*x, *x);
        }
    } else if dst == a {
        let (d, s) = core.vr_pair_mut(dst, b)?;
        for (x, y) in d.iter_mut().zip(s.iter()) {
            *x = f(*x, *y);
        }
    } else if dst == b {
        let (d, s) = core.vr_pair_mut(dst, a)?;
        for (x, y) in d.iter_mut().zip(s.iter()) {
            *x = f(*y, *x);
        }
    } else {
        let (d, x, y) = core.vr3_mut(dst, a, b)?;
        for ((o, &xv), &yv) in d.iter_mut().zip(x.iter()).zip(y.iter()) {
            *o = f(xv, yv);
        }
    }
    Ok(())
}

/// Runs an element-wise unary operation `dst[i] = f(src[i])`, handling
/// `dst == src` aliasing. Same contract as [`bin_op`].
pub(crate) fn unary_op<F>(core: &mut ApuCore, dst: Vr, src: Vr, f: F) -> Result<()>
where
    F: Fn(u16) -> u16,
{
    core.vr(dst)?;
    core.vr(src)?;
    if !core.is_functional() {
        return Ok(());
    }
    if dst == src {
        let d = core.vr_mut(dst)?;
        for x in d.iter_mut() {
            *x = f(*x);
        }
    } else {
        let (d, s) = core.vr_pair_mut(dst, src)?;
        for (x, y) in d.iter_mut().zip(s.iter()) {
            *x = f(*y);
        }
    }
    Ok(())
}

#[cfg(test)]
pub(crate) mod test_util {
    use apu_sim::{ApuCore, ApuDevice, SimConfig, Vr};

    /// Builds a small device and runs `f` against core 0, panicking on
    /// error (tests only).
    pub(crate) fn with_core<R>(f: impl FnOnce(&mut ApuCore) -> crate::Result<R>) -> R {
        let cfg = SimConfig {
            l4_bytes: 1 << 20,
            ..SimConfig::default()
        };
        let mut dev = ApuDevice::new(cfg);
        let mut out = None;
        dev.run_task(|ctx| {
            out = Some(f(ctx.core_mut())?);
            Ok(())
        })
        .expect("test task failed");
        out.unwrap()
    }

    /// Fills a VR with the given pattern function.
    pub(crate) fn fill(core: &mut ApuCore, vr: Vr, f: impl Fn(usize) -> u16) {
        for (i, v) in core.vr_mut(vr).unwrap().iter_mut().enumerate() {
            *v = f(i);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::test_util::*;
    use super::*;

    #[test]
    fn bin_op_handles_all_alias_shapes() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 5);
            fill(core, Vr::new(1), |_| 3);
            // distinct
            bin_op(core, Vr::new(2), Vr::new(0), Vr::new(1), |a, b| a + b)?;
            assert_eq!(core.vr(Vr::new(2))?[0], 8);
            // dst == a
            bin_op(core, Vr::new(0), Vr::new(0), Vr::new(1), |a, b| a + b)?;
            assert_eq!(core.vr(Vr::new(0))?[0], 8);
            // dst == b (non-commutative check)
            fill(core, Vr::new(0), |_| 10);
            bin_op(core, Vr::new(1), Vr::new(0), Vr::new(1), |a, b| a - b)?;
            assert_eq!(core.vr(Vr::new(1))?[0], 7);
            // all aliased
            bin_op(core, Vr::new(0), Vr::new(0), Vr::new(0), |a, b| a + b)?;
            assert_eq!(core.vr(Vr::new(0))?[0], 20);
            // a == b, distinct dst
            bin_op(core, Vr::new(3), Vr::new(0), Vr::new(0), |a, b| a + b)?;
            assert_eq!(core.vr(Vr::new(3))?[0], 40);
            Ok(())
        });
    }

    #[test]
    fn unary_op_aliases() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            unary_op(core, Vr::new(1), Vr::new(0), |x| x.wrapping_mul(2))?;
            assert_eq!(core.vr(Vr::new(1))?[10], 20);
            unary_op(core, Vr::new(1), Vr::new(1), |x| x + 1)?;
            assert_eq!(core.vr(Vr::new(1))?[10], 21);
            Ok(())
        });
    }
}
