//! Index-generation operations (`gvml_create_grp_index_u16` and friends),
//! used to build lookup indices and group-relative addressing.

use apu_sim::{ApuCore, Error, VecOp, Vr};

use crate::Result;

/// Index generation.
pub trait IndexOps {
    /// Writes each element's group-relative index: `dst[i] = i % grp_len`
    /// (`gvml_create_grp_index_u16`).
    ///
    /// # Errors
    ///
    /// Fails unless `grp_len` divides the VR length and fits in 16 bits.
    fn create_grp_index_u16(&mut self, dst: Vr, grp_len: usize) -> Result<()>;

    /// Writes each element's global index modulo 2¹⁶: `dst[i] = i & 0xFFFF`.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range register index.
    fn create_index_u16(&mut self, dst: Vr) -> Result<()>;

    /// Writes each element's group number: `dst[i] = i / grp_len`.
    ///
    /// # Errors
    ///
    /// Fails unless `grp_len` divides the VR length and the group count
    /// fits in 16 bits.
    fn create_grp_num_u16(&mut self, dst: Vr, grp_len: usize) -> Result<()>;
}

impl IndexOps for ApuCore {
    fn create_grp_index_u16(&mut self, dst: Vr, grp_len: usize) -> Result<()> {
        let n = self.vr_len();
        if grp_len == 0 || !n.is_multiple_of(grp_len) || grp_len > 65536 {
            return Err(Error::InvalidArg(format!(
                "group length {grp_len} must divide VR length {n} and fit u16"
            )));
        }
        // Index generation is a short microcode sequence comparable to an
        // immediate broadcast plus an add per bit; charged as cpy_imm +
        // add_u16 (the device generates indices with a bit-slice pattern
        // write).
        self.charge(VecOp::CpyImm);
        self.charge(VecOp::AddU16);
        self.vr(dst)?;
        if self.is_functional() {
            for (i, v) in self.vr_mut(dst)?.iter_mut().enumerate() {
                *v = (i % grp_len) as u16;
            }
        }
        Ok(())
    }

    fn create_index_u16(&mut self, dst: Vr) -> Result<()> {
        self.charge(VecOp::CpyImm);
        self.charge(VecOp::AddU16);
        self.vr(dst)?;
        if self.is_functional() {
            for (i, v) in self.vr_mut(dst)?.iter_mut().enumerate() {
                *v = (i & 0xFFFF) as u16;
            }
        }
        Ok(())
    }

    fn create_grp_num_u16(&mut self, dst: Vr, grp_len: usize) -> Result<()> {
        let n = self.vr_len();
        if grp_len == 0 || !n.is_multiple_of(grp_len) || n / grp_len > 65536 {
            return Err(Error::InvalidArg(format!(
                "group length {grp_len} invalid for VR length {n}"
            )));
        }
        self.charge(VecOp::CpyImm);
        self.charge(VecOp::AddU16);
        self.vr(dst)?;
        if self.is_functional() {
            for (i, v) in self.vr_mut(dst)?.iter_mut().enumerate() {
                *v = (i / grp_len) as u16;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::with_core;

    #[test]
    fn grp_index_wraps_per_group() {
        with_core(|core| {
            core.create_grp_index_u16(Vr::new(0), 8)?;
            let v = core.vr(Vr::new(0))?;
            assert_eq!(v[0], 0);
            assert_eq!(v[7], 7);
            assert_eq!(v[8], 0);
            assert_eq!(v[17], 1);
            Ok(())
        });
    }

    #[test]
    fn global_index_wraps_at_u16() {
        with_core(|core| {
            core.create_index_u16(Vr::new(0))?;
            let v = core.vr(Vr::new(0))?;
            assert_eq!(v[1000], 1000);
            assert_eq!(v[core.vr_len() - 1], (core.vr_len() - 1) as u16);
            Ok(())
        });
    }

    #[test]
    fn grp_num_counts_groups() {
        with_core(|core| {
            core.create_grp_num_u16(Vr::new(0), 1024)?;
            let v = core.vr(Vr::new(0))?;
            assert_eq!(v[0], 0);
            assert_eq!(v[1024], 1);
            assert_eq!(v[5000], 4);
            Ok(())
        });
    }

    #[test]
    fn validation() {
        with_core(|core| {
            assert!(core.create_grp_index_u16(Vr::new(0), 0).is_err());
            assert!(core.create_grp_index_u16(Vr::new(0), 7).is_err());
            assert!(core.create_grp_num_u16(Vr::new(0), 3).is_err());
            Ok(())
        });
    }
}
