//! Integer arithmetic and logic vector operations (paper Table 5).
//!
//! Integer arithmetic wraps on overflow, matching the device's bit-serial
//! adders which simply drop the carry out of the top bit-slice. Division
//! by zero produces the all-ones pattern (`0xFFFF` / `-1`), matching the
//! non-restoring divider's behaviour with a zero divisor.

use apu_sim::{ApuCore, VecOp, Vr};

use crate::ops_util::{bin_op, unary_op};
use crate::Result;

/// Arithmetic and bit-wise logic on 16-bit vector registers.
pub trait ArithOps {
    /// `and_16`: element-wise bit-wise AND.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn and_16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `or_16`: element-wise bit-wise OR.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn or_16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `xor_16`: element-wise bit-wise XOR.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn xor_16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `not_16`: element-wise bit-wise NOT.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn not_16(&mut self, dst: Vr, src: Vr) -> Result<()>;

    /// `add_u16`: element-wise unsigned addition (wrapping).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn add_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `add_s16`: element-wise signed addition (wrapping).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn add_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `sub_u16`: element-wise unsigned subtraction (wrapping).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn sub_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `sub_s16`: element-wise signed subtraction (wrapping).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn sub_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `mul_u16`: element-wise unsigned multiplication (low 16 bits).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn mul_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `mul_s16`: element-wise signed multiplication (low 16 bits).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn mul_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `div_u16`: element-wise unsigned division; `x / 0 = 0xFFFF`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn div_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `div_s16`: element-wise signed division; `x / 0 = -1`,
    /// `i16::MIN / -1` wraps to `i16::MIN`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn div_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `recip_u16`: element-wise fixed-point reciprocal in Q0.16:
    /// `dst = round(65536 / src)` saturated to `0xFFFF`; `recip(0) =
    /// 0xFFFF`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn recip_u16(&mut self, dst: Vr, src: Vr) -> Result<()>;

    /// `ashift` right: element-wise signed arithmetic shift right by an
    /// immediate (`sr_imm` in GVML).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices or `shift > 15`.
    fn sr_imm_s16(&mut self, dst: Vr, src: Vr, shift: u32) -> Result<()>;

    /// `ashift` left: element-wise shift left by an immediate
    /// (`sl_imm` in GVML).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices or `shift > 15`.
    fn sl_imm_16(&mut self, dst: Vr, src: Vr, shift: u32) -> Result<()>;

    /// Logical (unsigned) shift right by an immediate.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices or `shift > 15`.
    fn sr_imm_u16(&mut self, dst: Vr, src: Vr, shift: u32) -> Result<()>;

    /// `popcnt_16`: element-wise population count.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn popcnt_16(&mut self, dst: Vr, src: Vr) -> Result<()>;
}

fn check_shift(shift: u32) -> Result<()> {
    if shift > 15 {
        Err(apu_sim::Error::InvalidArg(format!(
            "shift amount {shift} exceeds 15"
        )))
    } else {
        Ok(())
    }
}

impl ArithOps for ApuCore {
    fn and_16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::And16);
        bin_op(self, dst, a, b, |x, y| x & y)
    }

    fn or_16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::Or16);
        bin_op(self, dst, a, b, |x, y| x | y)
    }

    fn xor_16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::Xor16);
        bin_op(self, dst, a, b, |x, y| x ^ y)
    }

    fn not_16(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::Not16);
        unary_op(self, dst, src, |x| !x)
    }

    fn add_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::AddU16);
        bin_op(self, dst, a, b, u16::wrapping_add)
    }

    fn add_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::AddS16);
        bin_op(self, dst, a, b, |x, y| {
            (x as i16).wrapping_add(y as i16) as u16
        })
    }

    fn sub_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::SubU16);
        bin_op(self, dst, a, b, u16::wrapping_sub)
    }

    fn sub_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::SubS16);
        bin_op(self, dst, a, b, |x, y| {
            (x as i16).wrapping_sub(y as i16) as u16
        })
    }

    fn mul_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::MulU16);
        bin_op(self, dst, a, b, u16::wrapping_mul)
    }

    fn mul_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::MulS16);
        bin_op(self, dst, a, b, |x, y| {
            (x as i16).wrapping_mul(y as i16) as u16
        })
    }

    fn div_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::DivU16);
        bin_op(self, dst, a, b, |x, y| x.checked_div(y).unwrap_or(0xFFFF))
    }

    fn div_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::DivS16);
        bin_op(self, dst, a, b, |x, y| {
            let (x, y) = (x as i16, y as i16);
            if y == 0 {
                -1i16 as u16
            } else {
                x.wrapping_div(y) as u16
            }
        })
    }

    fn recip_u16(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::RecipU16);
        unary_op(self, dst, src, |x| {
            if x == 0 {
                0xFFFF
            } else {
                let r = (65536u32 + (x as u32) / 2) / x as u32;
                r.min(0xFFFF) as u16
            }
        })
    }

    fn sr_imm_s16(&mut self, dst: Vr, src: Vr, shift: u32) -> Result<()> {
        check_shift(shift)?;
        self.charge(VecOp::AShift);
        unary_op(self, dst, src, |x| ((x as i16) >> shift) as u16)
    }

    fn sl_imm_16(&mut self, dst: Vr, src: Vr, shift: u32) -> Result<()> {
        check_shift(shift)?;
        self.charge(VecOp::AShift);
        unary_op(self, dst, src, |x| x << shift)
    }

    fn sr_imm_u16(&mut self, dst: Vr, src: Vr, shift: u32) -> Result<()> {
        check_shift(shift)?;
        self.charge(VecOp::AShift);
        unary_op(self, dst, src, |x| x >> shift)
    }

    fn popcnt_16(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::Popcnt16);
        unary_op(self, dst, src, |x| x.count_ones() as u16)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn logic_ops() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 0b1100);
            fill(core, Vr::new(1), |_| 0b1010);
            core.and_16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            core.or_16(Vr::new(3), Vr::new(0), Vr::new(1))?;
            core.xor_16(Vr::new(4), Vr::new(0), Vr::new(1))?;
            core.not_16(Vr::new(5), Vr::new(0))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 0b1000);
            assert_eq!(core.vr(Vr::new(3))?[0], 0b1110);
            assert_eq!(core.vr(Vr::new(4))?[0], 0b0110);
            assert_eq!(core.vr(Vr::new(5))?[0], !0b1100);
            Ok(())
        });
    }

    #[test]
    fn add_sub_wrap() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| u16::MAX);
            fill(core, Vr::new(1), |_| 1);
            core.add_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 0);
            core.sub_u16(Vr::new(2), Vr::new(1), Vr::new(0))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 2);
            // signed wrap
            fill(core, Vr::new(0), |_| i16::MAX as u16);
            core.add_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0] as i16, i16::MIN);
            Ok(())
        });
    }

    #[test]
    fn mul_takes_low_bits() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 300);
            fill(core, Vr::new(1), |_| 300);
            core.mul_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], (300u32 * 300 % 65536) as u16);
            fill(core, Vr::new(0), |_| (-30i16) as u16);
            fill(core, Vr::new(1), |_| 5);
            core.mul_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0] as i16, -150);
            Ok(())
        });
    }

    #[test]
    fn div_semantics() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 100);
            fill(core, Vr::new(1), |i| if i == 0 { 0 } else { 7 });
            core.div_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 0xFFFF);
            assert_eq!(core.vr(Vr::new(2))?[1], 14);
            fill(core, Vr::new(0), |_| (-100i16) as u16);
            fill(core, Vr::new(1), |_| 7);
            core.div_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0] as i16, -14);
            // MIN / -1 wraps
            fill(core, Vr::new(0), |_| i16::MIN as u16);
            fill(core, Vr::new(1), |_| (-1i16) as u16);
            core.div_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0] as i16, i16::MIN);
            Ok(())
        });
    }

    #[test]
    fn recip_is_q016() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| [0u16, 1, 2, 4, 256, 65535][i % 6]);
            core.recip_u16(Vr::new(1), Vr::new(0))?;
            let r = core.vr(Vr::new(1))?;
            assert_eq!(r[0], 0xFFFF); // 1/0 saturates
            assert_eq!(r[1], 0xFFFF); // 65536 saturates
            assert_eq!(r[2], 32768);
            assert_eq!(r[3], 16384);
            assert_eq!(r[4], 256);
            assert_eq!(r[5], 1);
            Ok(())
        });
    }

    #[test]
    fn shifts() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| (-64i16) as u16);
            core.sr_imm_s16(Vr::new(1), Vr::new(0), 3)?;
            assert_eq!(core.vr(Vr::new(1))?[0] as i16, -8);
            core.sr_imm_u16(Vr::new(1), Vr::new(0), 3)?;
            assert_eq!(core.vr(Vr::new(1))?[0], ((-64i16) as u16) >> 3);
            core.sl_imm_16(Vr::new(1), Vr::new(0), 2)?;
            assert_eq!(core.vr(Vr::new(1))?[0], ((-64i16) as u16) << 2);
            assert!(core.sl_imm_16(Vr::new(1), Vr::new(0), 16).is_err());
            Ok(())
        });
    }

    #[test]
    fn popcnt() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            core.popcnt_16(Vr::new(1), Vr::new(0))?;
            for i in 0..1000 {
                assert_eq!(core.vr(Vr::new(1))?[i], (i as u16).count_ones() as u16);
            }
            Ok(())
        });
    }

    #[test]
    fn cycle_costs_match_table5() {
        let (add, mul, div) = with_core(|core| {
            let t0 = core.cycles();
            core.add_u16(Vr::new(0), Vr::new(1), Vr::new(2))?;
            let t1 = core.cycles();
            core.mul_s16(Vr::new(0), Vr::new(1), Vr::new(2))?;
            let t2 = core.cycles();
            core.div_u16(Vr::new(0), Vr::new(1), Vr::new(2))?;
            let t3 = core.cycles();
            Ok(((t1 - t0).get(), (t2 - t1).get(), (t3 - t2).get()))
        });
        assert_eq!(add, 12 + 2);
        assert_eq!(mul, 201 + 2);
        assert_eq!(div, 664 + 2);
    }
}
