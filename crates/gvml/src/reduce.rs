//! Subgroup-based hierarchical reductions.
//!
//! Reductions aggregate elements *within* a vector register, which the
//! bit-processor array cannot do in one step: data must be moved across
//! columns with intra-VR shifts between element-wise adds. The device
//! therefore reduces a subgroup of `s` elements in `log₂ s` stages,
//! halving the span each time. Stage costs are *not* uniform — a shift by
//! a multiple of 4 elements stays inside a physical bank (cheap,
//! `8 + k/4` cycles), while the final 1- and 2-element moves go through
//! neighbour read-latch paths (microcoded, ~40 cycles per element) — so
//! the total grows non-linearly in `log₂ s`, with coefficients that drift
//! with the group size `r` because of per-stage group-boundary masking.
//! This emergent behaviour is what Eq. 1 of the paper models as a cubic
//! polynomial in `log₂ s` with `log₂ r`-dependent coefficients.
//!
//! [`sg_add_cycles`] exposes the exact cost the simulator charges, so the
//! analytical framework (`cis-model`) can fit Eq. 1 against it.

use apu_sim::{ApuCore, DeviceTiming, Error, Vr};

use crate::Result;

/// Cycles per element for the microcoded neighbour-path shift used by the
/// final (non-bank-aligned) reduction stages: 16 bit-slices × 2 micro-ops
/// plus command overhead.
const NEIGHBOUR_SHIFT_PER_ELEM: u64 = 40;

/// Fixed per-stage alignment/bookkeeping cost.
const STAGE_ALIGN_BASE: u64 = 15;

/// Additional per-stage masking cost per `log₂ r` (group-boundary masks
/// get deeper as groups grow).
const STAGE_ALIGN_PER_LOG_R: u64 = 3;

fn log2_exact(x: usize) -> Option<u32> {
    if x.is_power_of_two() {
        Some(x.trailing_zeros())
    } else {
        None
    }
}

/// The intra-VR shift cost for one reduction stage of span `m`.
fn stage_shift_cycles(t: &DeviceTiming, m: usize) -> u64 {
    if m.is_multiple_of(4) {
        t.shift_bank(m / 4).get()
    } else {
        NEIGHBOUR_SHIFT_PER_ELEM * m as u64
    }
}

/// Total cycles the simulator charges for `add_subgrp_s16` with subgroup
/// size `s` inside groups of size `r` (both powers of two, `s ≤ r`).
///
/// This is the ground truth that the analytical framework's Eq. 1
/// polynomial is fitted against.
pub fn sg_add_cycles(t: &DeviceTiming, r: usize, s: usize) -> u64 {
    if s <= 1 {
        // Degenerate subgroup: a plain element-wise copy.
        return t.cpy + t.cmd_issue;
    }
    let log_r = log2_exact(r).unwrap_or(0) as u64;
    let mut total = 0u64;
    let mut m = s / 2;
    while m >= 1 {
        total += stage_shift_cycles(t, m);
        total += t.add_s16 + t.cmd_issue;
        total += STAGE_ALIGN_BASE + STAGE_ALIGN_PER_LOG_R * log_r;
        if m == 1 {
            break;
        }
        m /= 2;
    }
    total
}

/// Total cycles for the max/min subgroup reductions (adds a compare and a
/// masked select per stage instead of an add).
pub fn sg_minmax_cycles(t: &DeviceTiming, r: usize, s: usize) -> u64 {
    if s <= 1 {
        return t.cpy + t.cmd_issue;
    }
    let log_r = log2_exact(r).unwrap_or(0) as u64;
    let mut total = 0u64;
    let mut m = s / 2;
    while m >= 1 {
        total += stage_shift_cycles(t, m);
        total += t.gt_u16 + t.cpy + 2 * t.cmd_issue;
        total += STAGE_ALIGN_BASE + STAGE_ALIGN_PER_LOG_R * log_r;
        if m == 1 {
            break;
        }
        m /= 2;
    }
    total
}

fn validate(n: usize, s: usize, r: usize) -> Result<()> {
    if log2_exact(s).is_none() || log2_exact(r).is_none() {
        return Err(Error::InvalidArg(format!(
            "subgroup {s} and group {r} must be powers of two"
        )));
    }
    if s > r || r > n || !n.is_multiple_of(r) {
        return Err(Error::InvalidArg(format!(
            "need subgroup {s} <= group {r} <= VR length {n} with group dividing length"
        )));
    }
    Ok(())
}

/// Hierarchical subgroup reductions.
pub trait ReduceOps {
    /// `add_subgrp_s16`: within each `grp_len`-element group, sums every
    /// aligned subgroup of `subgrp_len` elements (wrapping i16
    /// arithmetic). Each subgroup's sum lands at its head element; the
    /// remaining lanes are zeroed.
    ///
    /// Both sizes must be powers of two with
    /// `subgrp_len <= grp_len <= vr_len()`.
    ///
    /// # Errors
    ///
    /// Fails on invalid sizes or register indices.
    fn add_subgrp_s16(&mut self, dst: Vr, src: Vr, subgrp_len: usize, grp_len: usize)
        -> Result<()>;

    /// Maximum over each aligned subgroup (unsigned). The max lands at
    /// each subgroup's head; remaining lanes are zeroed. An optional
    /// `tag` register is permuted alongside the values, so the head of
    /// `tag` ends up holding the tag of the maximal element — the
    /// building block for arg-max / top-k.
    ///
    /// # Errors
    ///
    /// Fails on invalid sizes, register indices, or when `tag` aliases
    /// `dst`/`src`.
    fn max_subgrp_u16(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        grp_len: usize,
        tag: Option<(Vr, Vr)>,
    ) -> Result<()>;

    /// Minimum over each aligned subgroup (unsigned); same contract as
    /// [`ReduceOps::max_subgrp_u16`].
    ///
    /// # Errors
    ///
    /// Fails on invalid sizes, register indices, or when `tag` aliases
    /// `dst`/`src`.
    fn min_subgrp_u16(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        grp_len: usize,
        tag: Option<(Vr, Vr)>,
    ) -> Result<()>;
}

impl ReduceOps for ApuCore {
    fn add_subgrp_s16(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        grp_len: usize,
    ) -> Result<()> {
        validate(self.vr_len(), subgrp_len, grp_len)?;
        self.vr(dst)?;
        self.vr(src)?;
        let cost = sg_add_cycles(&self.config().timing, grp_len, subgrp_len);
        self.charge_cycles(
            apu_sim::core::CycleClass::Compute,
            apu_sim::Cycles::new(cost),
        );
        if !self.is_functional() {
            return Ok(());
        }
        let src_data = self.vr(src)?.to_vec();
        let d = self.vr_mut(dst)?;
        d.fill(0);
        for (dg, sg) in d
            .chunks_exact_mut(subgrp_len)
            .zip(src_data.chunks_exact(subgrp_len))
        {
            let acc = sg.iter().fold(0i16, |acc, &e| acc.wrapping_add(e as i16));
            dg[0] = acc as u16;
        }
        Ok(())
    }

    fn max_subgrp_u16(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        grp_len: usize,
        tag: Option<(Vr, Vr)>,
    ) -> Result<()> {
        minmax(self, dst, src, subgrp_len, grp_len, tag, true)
    }

    fn min_subgrp_u16(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        grp_len: usize,
        tag: Option<(Vr, Vr)>,
    ) -> Result<()> {
        minmax(self, dst, src, subgrp_len, grp_len, tag, false)
    }
}

fn minmax(
    core: &mut ApuCore,
    dst: Vr,
    src: Vr,
    subgrp_len: usize,
    grp_len: usize,
    tag: Option<(Vr, Vr)>,
    want_max: bool,
) -> Result<()> {
    validate(core.vr_len(), subgrp_len, grp_len)?;
    core.vr(dst)?;
    core.vr(src)?;
    if let Some((tag_dst, tag_src)) = tag {
        core.vr(tag_dst)?;
        core.vr(tag_src)?;
        if tag_dst == dst || tag_dst == src || tag_src == dst {
            return Err(Error::InvalidArg(
                "tag registers must not alias the value registers".into(),
            ));
        }
    }
    let mut cost = sg_minmax_cycles(&core.config().timing, grp_len, subgrp_len);
    if tag.is_some() {
        // Tags ride along with one extra masked copy per stage.
        let stages = subgrp_len.trailing_zeros() as u64;
        cost += stages * (core.config().timing.cpy + core.config().timing.cmd_issue);
    }
    core.charge_cycles(
        apu_sim::core::CycleClass::Compute,
        apu_sim::Cycles::new(cost),
    );
    if !core.is_functional() {
        return Ok(());
    }
    let n = core.vr_len();
    let src_data = core.vr(src)?.to_vec();
    let tag_data = match tag {
        Some((_, tag_src)) => Some(core.vr(tag_src)?.to_vec()),
        None => None,
    };
    // Compute per-subgroup extrema and the tag of the extremal element
    // (first occurrence wins ties, matching the staged hardware fold which
    // keeps the earlier lane on equality).
    let mut d_out = vec![0u16; n];
    let mut t_out = vec![0u16; n];
    for (head, slice) in src_data.chunks_exact(subgrp_len).enumerate() {
        let head = head * subgrp_len;
        // First occurrence wins ties (strict comparison), matching the
        // staged hardware fold which keeps the earlier lane on equality.
        let mut best = 0usize;
        let mut best_v = slice[0];
        for (i, &v) in slice.iter().enumerate() {
            let better = if want_max { v > best_v } else { v < best_v };
            if better {
                best = i;
                best_v = v;
            }
        }
        d_out[head] = best_v;
        if let Some(tags) = &tag_data {
            t_out[head] = tags[head + best];
        }
    }
    core.vr_mut(dst)?.copy_from_slice(&d_out);
    if let Some((tag_dst, _)) = tag {
        core.vr_mut(tag_dst)?.copy_from_slice(&t_out);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn subgroup_sums_land_at_heads() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 1);
            core.add_subgrp_s16(Vr::new(1), Vr::new(0), 64, 1024)?;
            let v = core.vr(Vr::new(1))?;
            assert_eq!(v[0], 64);
            assert_eq!(v[1], 0);
            assert_eq!(v[64], 64);
            assert_eq!(v[63], 0);
            Ok(())
        });
    }

    #[test]
    fn signed_sums_wrap() {
        with_core(|core| {
            fill(
                core,
                Vr::new(0),
                |i| {
                    if i % 2 == 0 {
                        30000u16
                    } else {
                        10000
                    }
                },
            );
            core.add_subgrp_s16(Vr::new(1), Vr::new(0), 2, 2)?;
            // 30000 + 10000 = 40000 wraps to -25536 in i16
            assert_eq!(core.vr(Vr::new(1))?[0] as i16, (40000u32 as u16) as i16);
            Ok(())
        });
    }

    #[test]
    fn in_place_reduction_allowed() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| (i % 4) as u16);
            core.add_subgrp_s16(Vr::new(0), Vr::new(0), 4, 4)?;
            assert_eq!(core.vr(Vr::new(0))?[0], 6);
            assert_eq!(core.vr(Vr::new(0))?[1], 0);
            Ok(())
        });
    }

    #[test]
    fn validation_rejects_bad_sizes() {
        with_core(|core| {
            assert!(core.add_subgrp_s16(Vr::new(1), Vr::new(0), 3, 8).is_err());
            assert!(core.add_subgrp_s16(Vr::new(1), Vr::new(0), 16, 8).is_err());
            assert!(core
                .add_subgrp_s16(Vr::new(1), Vr::new(0), 8, core.vr_len() * 2)
                .is_err());
            Ok(())
        });
    }

    #[test]
    fn cost_grows_with_subgroup_size() {
        let t = apu_sim::DeviceTiming::leda_e();
        let c16 = sg_add_cycles(&t, 1024, 16);
        let c256 = sg_add_cycles(&t, 1024, 256);
        let c1024 = sg_add_cycles(&t, 1024, 1024);
        assert!(c16 < c256 && c256 < c1024);
        // and mildly with group size at fixed subgroup size
        assert!(sg_add_cycles(&t, 4096, 64) > sg_add_cycles(&t, 64, 64));
    }

    #[test]
    fn reduction_is_much_slower_than_elementwise() {
        // The paper: intra-VR group ops are about 10x slower than
        // inter-VR ops.
        let t = apu_sim::DeviceTiming::leda_e();
        let reduction = sg_add_cycles(&t, 1024, 1024);
        assert!(reduction > 10 * t.add_s16);
    }

    #[test]
    fn charged_cycles_match_cost_function() {
        let (charged, expected) = with_core(|core| {
            let expected = sg_add_cycles(&core.config().timing, 512, 128);
            let t0 = core.cycles();
            core.add_subgrp_s16(Vr::new(1), Vr::new(0), 128, 512)?;
            Ok(((core.cycles() - t0).get(), expected))
        });
        assert_eq!(charged, expected);
    }

    #[test]
    fn max_subgroup_with_tags_finds_argmax() {
        with_core(|core| {
            let n = core.vr_len();
            fill(core, Vr::new(0), |i| ((i * 37) % 251) as u16);
            // tag register: global index
            fill(core, Vr::new(1), |i| i as u16);
            core.max_subgrp_u16(
                Vr::new(2),
                Vr::new(0),
                64,
                64,
                Some((Vr::new(3), Vr::new(1))),
            )?;
            let vals = core.vr(Vr::new(0))?.to_vec();
            let maxes = core.vr(Vr::new(2))?.to_vec();
            let tags = core.vr(Vr::new(3))?.to_vec();
            for head in (0..n.min(4096)).step_by(64) {
                let slice = &vals[head..head + 64];
                let m = *slice.iter().max().unwrap();
                assert_eq!(maxes[head], m);
                let argmax = tags[head] as usize;
                assert_eq!(vals[argmax], m);
            }
            Ok(())
        });
    }

    #[test]
    fn min_subgroup() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| 100 + (i % 32) as u16);
            core.min_subgrp_u16(Vr::new(1), Vr::new(0), 32, 32, None)?;
            assert_eq!(core.vr(Vr::new(1))?[0], 100);
            assert_eq!(core.vr(Vr::new(1))?[32], 100);
            Ok(())
        });
    }

    #[test]
    fn tag_aliasing_rejected() {
        with_core(|core| {
            assert!(core
                .max_subgrp_u16(Vr::new(2), Vr::new(0), 4, 4, Some((Vr::new(2), Vr::new(1))))
                .is_err());
            Ok(())
        });
    }
}
