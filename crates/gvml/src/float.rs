//! 16-bit floating-point support: IEEE binary16 and the custom GSI format
//! (1 sign, 6 exponent, 9 mantissa bits).
//!
//! The APU natively supports both formats (paper §2.1.1). The conversion
//! routines here are software models used by the functional simulator;
//! on-device the bit processors operate on the encodings directly.

use apu_sim::{ApuCore, VecOp, Vr};

use crate::ops_util::bin_op;
use crate::Result;

/// Encodes an `f32` as IEEE binary16 (round-to-nearest-even), returning
/// the raw bit pattern.
///
/// ```
/// use gvml::{f16_from_f32, f16_to_f32};
/// assert_eq!(f16_to_f32(f16_from_f32(1.5)), 1.5);
/// assert!(f16_to_f32(f16_from_f32(1e9)).is_infinite()); // overflow
/// ```
pub fn f16_from_f32(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let frac = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN
        return sign | 0x7C00 | if frac != 0 { 0x0200 } else { 0 };
    }
    let unbiased = exp - 127;
    let half_exp = unbiased + 15;
    if half_exp >= 0x1F {
        return sign | 0x7C00; // overflow to infinity
    }
    if half_exp <= 0 {
        // Subnormal or underflow to zero.
        if half_exp < -10 {
            return sign;
        }
        let mant = frac | 0x0080_0000; // implicit bit
        let shift = (14 - half_exp) as u32;
        let half_frac = mant >> shift;
        // round to nearest (ties away from zero is fine at this precision)
        let round = (mant >> (shift - 1)) & 1;
        return sign | (half_frac as u16 + round as u16);
    }
    let half_frac = (frac >> 13) as u16;
    let round_bit = (frac >> 12) & 1;
    let sticky = frac & 0x0FFF;
    let mut out = sign | ((half_exp as u16) << 10) | half_frac;
    if round_bit == 1 && (sticky != 0 || (half_frac & 1) == 1) {
        out = out.wrapping_add(1); // may carry into exponent: correct behaviour
    }
    out
}

/// Decodes an IEEE binary16 bit pattern to `f32`.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let frac = (h & 0x03FF) as u32;
    let bits = if exp == 0 {
        if frac == 0 {
            sign
        } else {
            // Subnormal: value = frac × 2⁻²⁴; normalize so the implicit
            // bit lands at position 10, giving 1.m × 2^(−14−k).
            let mut k = 0u32;
            let mut f = frac;
            while f & 0x0400 == 0 {
                f <<= 1;
                k += 1;
            }
            f &= 0x03FF;
            sign | ((113 - k) << 23) | (f << 13)
        }
    } else if exp == 0x1F {
        sign | 0x7F80_0000 | (frac << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (frac << 13)
    };
    f32::from_bits(bits)
}

/// GSI float16 exponent bias (6-bit exponent).
const GF16_BIAS: i32 = 31;

/// Encodes an `f32` in the GSI float16 format: 1 sign bit, 6 exponent
/// bits (bias 31), 9 mantissa bits. Values overflow to the maximum finite
/// encoding (the format has no infinities).
///
/// ```
/// use gvml::{gf16_from_f32, gf16_to_f32};
/// let x = gf16_to_f32(gf16_from_f32(3.25));
/// assert!((x - 3.25).abs() < 0.01);
/// ```
pub fn gf16_from_f32(x: f32) -> u16 {
    if x == 0.0 || x.is_nan() {
        return 0;
    }
    let sign = if x.is_sign_negative() { 0x8000u16 } else { 0 };
    let mag = x.abs();
    let exp = mag.log2().floor() as i32;
    let e = exp + GF16_BIAS;
    if e <= 0 {
        return sign; // underflow to zero (no subnormals modeled)
    }
    if e >= 0x3F {
        return sign | 0x7FFF; // saturate to max finite
    }
    let mant = ((mag / (2.0f32).powi(exp) - 1.0) * 512.0).round() as u32;
    if mant >= 512 {
        // rounding carried into the exponent
        let e2 = e + 1;
        if e2 >= 0x3F {
            return sign | 0x7FFF;
        }
        return sign | ((e2 as u16) << 9);
    }
    sign | ((e as u16) << 9) | (mant as u16)
}

/// Decodes a GSI float16 bit pattern to `f32`.
pub fn gf16_to_f32(g: u16) -> f32 {
    let sign = if g & 0x8000 != 0 { -1.0f32 } else { 1.0 };
    let e = ((g >> 9) & 0x3F) as i32;
    let mant = (g & 0x01FF) as f32;
    if e == 0 && mant == 0.0 {
        return 0.0 * sign;
    }
    sign * (1.0 + mant / 512.0) * (2.0f32).powi(e - GF16_BIAS)
}

/// Floating-point vector operations (IEEE binary16 encodings in the VR).
pub trait FloatOps {
    /// `mul_f16`: element-wise binary16 multiplication (77 cycles).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn mul_f16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `add_f16`: element-wise binary16 addition. Not in Table 5; charged
    /// like `mul_f16` (the device's f16 add and mul have comparable
    /// microcode depth).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn add_f16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `exp_f16`: element-wise binary16 exponential (40,295 cycles — by
    /// far the most expensive vector command in Table 5).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn exp_f16(&mut self, dst: Vr, src: Vr) -> Result<()>;
}

impl FloatOps for ApuCore {
    fn mul_f16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::MulF16);
        bin_op(self, dst, a, b, |x, y| {
            f16_from_f32(f16_to_f32(x) * f16_to_f32(y))
        })
    }

    fn add_f16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::MulF16);
        bin_op(self, dst, a, b, |x, y| {
            f16_from_f32(f16_to_f32(x) + f16_to_f32(y))
        })
    }

    fn exp_f16(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::ExpF16);
        crate::ops_util::unary_op(self, dst, src, |x| f16_from_f32(f16_to_f32(x).exp()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn f16_roundtrip_exact_values() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 1.5, 65504.0, -0.25] {
            assert_eq!(f16_to_f32(f16_from_f32(v)), v, "value {v}");
        }
    }

    #[test]
    fn f16_rounds_inexact_values() {
        let x = 0.1f32;
        let r = f16_to_f32(f16_from_f32(x));
        assert!((r - x).abs() < 1e-4);
    }

    #[test]
    fn f16_specials() {
        assert!(f16_to_f32(f16_from_f32(f32::INFINITY)).is_infinite());
        assert!(f16_to_f32(f16_from_f32(f32::NAN)).is_nan());
        assert!(f16_to_f32(f16_from_f32(1e9)).is_infinite());
        assert_eq!(f16_to_f32(f16_from_f32(1e-10)), 0.0);
        // subnormal survives
        let sub = 3.0e-6f32;
        let r = f16_to_f32(f16_from_f32(sub));
        assert!((r - sub).abs() / sub < 0.1);
    }

    #[test]
    fn gf16_roundtrip_and_range() {
        for &v in &[1.0f32, -2.5, 3.25, 1000.0, 1.0e-6, -7.125e4] {
            let r = gf16_to_f32(gf16_from_f32(v));
            assert!((r - v).abs() / v.abs() < 2e-3, "value {v} decoded as {r}");
        }
        assert_eq!(gf16_to_f32(gf16_from_f32(0.0)), 0.0);
        // 6-bit exponent covers a wider range than IEEE f16
        let big = 2.0e9f32;
        let r = gf16_to_f32(gf16_from_f32(big));
        assert!((r - big).abs() / big < 2e-3);
    }

    #[test]
    fn gf16_saturates() {
        let huge = 1.0e30f32;
        let enc = gf16_from_f32(huge);
        assert_eq!(enc, 0x7FFF);
        assert!(gf16_to_f32(enc) > 1.0e9);
    }

    #[test]
    fn mul_f16_vector() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| f16_from_f32(1.5));
            fill(core, Vr::new(1), |_| f16_from_f32(-2.0));
            core.mul_f16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(f16_to_f32(core.vr(Vr::new(2))?[7]), -3.0);
            Ok(())
        });
    }

    #[test]
    fn exp_f16_charges_heavily() {
        let cycles = with_core(|core| {
            let before = core.cycles();
            core.exp_f16(Vr::new(1), Vr::new(0))?;
            Ok((core.cycles() - before).get())
        });
        assert_eq!(cycles, 40295 + 2);
    }

    #[test]
    fn exp_of_zero_is_one() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| f16_from_f32(0.0));
            core.exp_f16(Vr::new(1), Vr::new(0))?;
            assert_eq!(f16_to_f32(core.vr(Vr::new(1))?[0]), 1.0);
            Ok(())
        });
    }
}
