//! Arithmetic built **entirely from Table-2 micro-operations** — the
//! bit-serial construction the APU's microcode actually uses.
//!
//! The main GVML layer computes element-wise results directly and
//! charges calibrated command costs (see the crate docs); this module
//! keeps an executable proof that the paper's micro-op ISA (read
//! latches, wired-AND multi-reads, neighbour moves, negated write
//! bit-lines) is computationally complete: ripple-carry addition,
//! subtraction via two's complement, increment, and the bit-wise
//! primitives, all verified against scalar semantics. Each issued
//! micro-op costs one cycle, so these routines also show *why* the
//! vendor's fused commands (e.g. `add_u16` at 12 cycles) beat naive
//! bit-serial sequences (~150 micro-ops).

use apu_sim::{ApuCore, BitOp, Error, LatchSrc, MicroOp, SliceMask, Vr, WriteSrc};

use crate::Result;

fn distinct(regs: &[Vr], what: &str) -> Result<()> {
    for (i, a) in regs.iter().enumerate() {
        for b in &regs[i + 1..] {
            if a == b {
                return Err(Error::InvalidArg(format!(
                    "bit-serial {what}: register {a} repeated"
                )));
            }
        }
    }
    Ok(())
}

/// Clears a VR through the read/write logic (an empty multi-read drives
/// zero onto the read latch).
fn clear(core: &mut ApuCore, vr: Vr) -> Result<()> {
    core.issue_micro(&MicroOp::ReadVr {
        mask: SliceMask::FULL,
        vrs: vec![],
    })?;
    core.issue_micro(&MicroOp::WriteVr {
        mask: SliceMask::FULL,
        vr: vr.index(),
        src: WriteSrc::Rl,
    })
}

/// Ripple-carry add writing sum bits straight into `dst`; requires
/// `dst`, `a`, `b`, `carry` pairwise distinct. `carry` is clobbered.
fn raw_add(core: &mut ApuCore, dst: Vr, a: Vr, b: Vr, carry: Vr) -> Result<()> {
    distinct(&[dst, a, b, carry], "raw add")?;
    let (ai, bi, ci, di) = (a.index(), b.index(), carry.index(), dst.index());
    clear(core, carry)?;
    for bit in 0..16 {
        let m = SliceMask::single(bit);
        // carry' must be derived from the ORIGINAL a, b, c of this bit,
        // so compute it first and stage it one slice north; the sum can
        // then safely overwrite dst (which never aliases an operand).
        if bit < 15 {
            let m_next = SliceMask::single(bit + 1);
            // t = c & (a ^ b) staged in dst (dst bit not yet written)
            core.issue_micro(&MicroOp::ReadVr {
                mask: m,
                vrs: vec![ai],
            })?;
            core.issue_micro(&MicroOp::OpVr {
                mask: m,
                op: BitOp::Xor,
                vr: bi,
            })?;
            core.issue_micro(&MicroOp::OpVr {
                mask: m,
                op: BitOp::And,
                vr: ci,
            })?;
            core.issue_micro(&MicroOp::WriteVr {
                mask: m,
                vr: di,
                src: WriteSrc::Rl,
            })?;
            // RL = (a & b) | t  == carry-out
            core.issue_micro(&MicroOp::ReadVr {
                mask: m,
                vrs: vec![ai, bi],
            })?;
            core.issue_micro(&MicroOp::OpVr {
                mask: m,
                op: BitOp::Or,
                vr: di,
            })?;
            core.issue_micro(&MicroOp::WriteVr {
                mask: m,
                vr: di,
                src: WriteSrc::Rl,
            })?;
            // move carry-out into `carry` slice bit+1 via the
            // south-neighbour read-latch view
            core.issue_micro(&MicroOp::ReadLatch {
                mask: m_next,
                src: LatchSrc::RlSouth,
            })?;
            core.issue_micro(&MicroOp::WriteVr {
                mask: m_next,
                vr: ci,
                src: WriteSrc::Rl,
            })?;
        }
        // sum bit: dst = a ^ b ^ c (carry slice `bit` still original)
        core.issue_micro(&MicroOp::ReadVr {
            mask: m,
            vrs: vec![ai],
        })?;
        core.issue_micro(&MicroOp::OpVr {
            mask: m,
            op: BitOp::Xor,
            vr: bi,
        })?;
        core.issue_micro(&MicroOp::OpVr {
            mask: m,
            op: BitOp::Xor,
            vr: ci,
        })?;
        core.issue_micro(&MicroOp::WriteVr {
            mask: m,
            vr: di,
            src: WriteSrc::Rl,
        })?;
    }
    Ok(())
}

/// Bit-serial arithmetic built from raw micro-operations.
pub trait BitSerialOps {
    /// `dst = a + b` (wrapping) as a 16-stage ripple-carry adder built
    /// from micro-ops. `carry` and `scratch` are clobbered; `dst` may
    /// alias `a` or `b`.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range registers or when `carry`/`scratch` alias
    /// anything else.
    fn add_u16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr, carry: Vr, scratch: Vr) -> Result<()>;

    /// `dst = a - b` via `a + !b + 1`. `dst` must not alias any other
    /// register; `carry` and `scratch` are clobbered.
    ///
    /// # Errors
    ///
    /// Fails on aliasing or out-of-range registers.
    fn sub_u16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr, carry: Vr, scratch: Vr) -> Result<()>;

    /// In-place increment: `dst = dst + 1`, clobbering `carry` and
    /// `scratch`.
    ///
    /// # Errors
    ///
    /// Fails on aliasing or out-of-range registers.
    fn inc_u16_bitserial(&mut self, dst: Vr, carry: Vr, scratch: Vr) -> Result<()>;

    /// `dst = !src` through the negated write bit-line (WBLB).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range registers.
    fn not_16_bitserial(&mut self, dst: Vr, src: Vr) -> Result<()>;

    /// `dst = a & b` through a wired-AND multi-operand read.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range registers.
    fn and_16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `dst = a ^ b` through read-op-combine.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range registers.
    fn xor_16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;
}

impl BitSerialOps for ApuCore {
    fn add_u16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr, carry: Vr, scratch: Vr) -> Result<()> {
        distinct(&[carry, scratch, a, b], "add scratch")?;
        distinct(&[dst, carry, scratch], "add dst")?;
        if dst == a || dst == b {
            // stage in scratch, then copy
            raw_add(self, scratch, a, b, carry)?;
            self.issue_micro(&MicroOp::ReadVr {
                mask: SliceMask::FULL,
                vrs: vec![scratch.index()],
            })?;
            self.issue_micro(&MicroOp::WriteVr {
                mask: SliceMask::FULL,
                vr: dst.index(),
                src: WriteSrc::Rl,
            })
        } else {
            raw_add(self, dst, a, b, carry)
        }
    }

    fn sub_u16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr, carry: Vr, scratch: Vr) -> Result<()> {
        distinct(&[dst, a, b, carry, scratch], "sub")?;
        self.not_16_bitserial(scratch, b)?;
        raw_add(self, dst, a, scratch, carry)?;
        self.inc_u16_bitserial(dst, carry, scratch)
    }

    fn inc_u16_bitserial(&mut self, dst: Vr, carry: Vr, scratch: Vr) -> Result<()> {
        distinct(&[dst, carry, scratch], "inc")?;
        let (di, ci, si) = (dst.index(), carry.index(), scratch.index());
        // carry = 1 in slice 0, 0 elsewhere
        clear(self, carry)?;
        self.issue_micro(&MicroOp::ReadVr {
            mask: SliceMask::single(0),
            vrs: vec![],
        })?;
        self.issue_micro(&MicroOp::WriteVr {
            mask: SliceMask::single(0),
            vr: ci,
            src: WriteSrc::RlNeg, // !0 = 1
        })?;
        for bit in 0..16 {
            let m = SliceMask::single(bit);
            // t = d & c (carry-out), staged before d is overwritten
            self.issue_micro(&MicroOp::ReadVr {
                mask: m,
                vrs: vec![di, ci],
            })?;
            self.issue_micro(&MicroOp::WriteVr {
                mask: m,
                vr: si,
                src: WriteSrc::Rl,
            })?;
            // d = d ^ c
            self.issue_micro(&MicroOp::ReadVr {
                mask: m,
                vrs: vec![di],
            })?;
            self.issue_micro(&MicroOp::OpVr {
                mask: m,
                op: BitOp::Xor,
                vr: ci,
            })?;
            self.issue_micro(&MicroOp::WriteVr {
                mask: m,
                vr: di,
                src: WriteSrc::Rl,
            })?;
            if bit < 15 {
                let m_next = SliceMask::single(bit + 1);
                // carry slice bit+1 = t (scratch slice bit)
                self.issue_micro(&MicroOp::ReadVr {
                    mask: m,
                    vrs: vec![si],
                })?;
                self.issue_micro(&MicroOp::ReadLatch {
                    mask: m_next,
                    src: LatchSrc::RlSouth,
                })?;
                self.issue_micro(&MicroOp::WriteVr {
                    mask: m_next,
                    vr: ci,
                    src: WriteSrc::Rl,
                })?;
            }
        }
        Ok(())
    }

    fn not_16_bitserial(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.issue_micro(&MicroOp::ReadVr {
            mask: SliceMask::FULL,
            vrs: vec![src.index()],
        })?;
        self.issue_micro(&MicroOp::WriteVr {
            mask: SliceMask::FULL,
            vr: dst.index(),
            src: WriteSrc::RlNeg,
        })
    }

    fn and_16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.issue_micro(&MicroOp::ReadVr {
            mask: SliceMask::FULL,
            vrs: vec![a.index(), b.index()],
        })?;
        self.issue_micro(&MicroOp::WriteVr {
            mask: SliceMask::FULL,
            vr: dst.index(),
            src: WriteSrc::Rl,
        })
    }

    fn xor_16_bitserial(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.issue_micro(&MicroOp::ReadVr {
            mask: SliceMask::FULL,
            vrs: vec![a.index()],
        })?;
        self.issue_micro(&MicroOp::OpVr {
            mask: SliceMask::FULL,
            op: BitOp::Xor,
            vr: b.index(),
        })?;
        self.issue_micro(&MicroOp::WriteVr {
            mask: SliceMask::FULL,
            vr: dst.index(),
            src: WriteSrc::Rl,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    const A: Vr = Vr::new(0);
    const B: Vr = Vr::new(1);
    const D: Vr = Vr::new(2);
    const C: Vr = Vr::new(3);
    const S: Vr = Vr::new(4);

    #[test]
    fn bitserial_add_matches_wrapping_add() {
        with_core(|core| {
            fill(core, A, |i| (i as u16).wrapping_mul(977).wrapping_add(3));
            fill(core, B, |i| (i as u16).wrapping_mul(31337));
            core.add_u16_bitserial(D, A, B, C, S)?;
            let a = core.vr(A)?.to_vec();
            let b = core.vr(B)?.to_vec();
            let d = core.vr(D)?;
            for i in 0..2000 {
                assert_eq!(d[i], a[i].wrapping_add(b[i]), "lane {i}");
            }
            Ok(())
        });
    }

    #[test]
    fn bitserial_add_supports_destination_aliasing() {
        with_core(|core| {
            fill(core, A, |i| i as u16);
            fill(core, B, |_| 999);
            core.add_u16_bitserial(A, A, B, C, S)?;
            assert_eq!(core.vr(A)?[5], 5 + 999);
            Ok(())
        });
    }

    #[test]
    fn bitserial_sub_matches_wrapping_sub() {
        with_core(|core| {
            fill(core, A, |i| (i as u16).wrapping_mul(123));
            fill(core, B, |i| (i as u16).wrapping_mul(7919).wrapping_add(5));
            core.sub_u16_bitserial(D, A, B, C, S)?;
            let a = core.vr(A)?.to_vec();
            let b = core.vr(B)?.to_vec();
            let d = core.vr(D)?;
            for i in 0..2000 {
                assert_eq!(d[i], a[i].wrapping_sub(b[i]), "lane {i}");
            }
            Ok(())
        });
    }

    #[test]
    fn bitserial_increment_wraps() {
        with_core(|core| {
            fill(core, D, |i| if i == 0 { u16::MAX } else { i as u16 });
            core.inc_u16_bitserial(D, C, S)?;
            assert_eq!(core.vr(D)?[0], 0);
            assert_eq!(core.vr(D)?[41], 42);
            Ok(())
        });
    }

    #[test]
    fn bitserial_logic_primitives() {
        with_core(|core| {
            fill(core, A, |i| i as u16);
            fill(core, B, |i| (i as u16).rotate_left(3));
            core.not_16_bitserial(D, A)?;
            assert_eq!(core.vr(D)?[100], !100u16);
            core.and_16_bitserial(D, A, B)?;
            assert_eq!(core.vr(D)?[77], 77u16 & 77u16.rotate_left(3));
            core.xor_16_bitserial(D, A, B)?;
            assert_eq!(core.vr(D)?[77], 77u16 ^ 77u16.rotate_left(3));
            Ok(())
        });
    }

    #[test]
    fn bitserial_add_costs_far_more_than_the_fused_command() {
        let (bitserial, fused) = with_core(|core| {
            let t0 = core.cycles();
            core.add_u16_bitserial(D, A, B, C, S)?;
            let t1 = core.cycles();
            crate::ArithOps::add_u16(core, D, A, B)?;
            let t2 = core.cycles();
            Ok(((t1 - t0).get(), (t2 - t1).get()))
        });
        assert!(
            bitserial > 8 * fused,
            "bit-serial {bitserial} vs fused {fused}"
        );
    }

    #[test]
    fn aliasing_is_rejected() {
        with_core(|core| {
            assert!(core.add_u16_bitserial(D, A, B, C, C).is_err());
            assert!(core.add_u16_bitserial(D, A, B, A, S).is_err());
            assert!(core.add_u16_bitserial(C, A, B, C, S).is_err());
            assert!(core.sub_u16_bitserial(A, A, B, C, S).is_err());
            assert!(core.inc_u16_bitserial(D, D, S).is_err());
            Ok(())
        });
    }
}
