//! Intra-VR element shifts.
//!
//! The paper distinguishes two shift mechanisms with wildly different
//! costs (Table 4):
//!
//! * `shift_e(k)` — shift VR entries toward the head/tail by an arbitrary
//!   `k`, serialized through the RSP FIFO at **373 cycles per element** of
//!   shift magnitude;
//! * `shift_e(4k)` — an intra-bank shift of `4·k` elements at only
//!   **8 + k cycles**, possible because the data stays inside each
//!   physical bank and moves on the bank's internal lines.
//!
//! Minimizing use of the former is one of the paper's core optimization
//! principles; [`ShiftOps::shift_elements`] automatically routes through
//! the cheap path when the magnitude is a multiple of 4.

use apu_sim::{ApuCore, Error, Vr};

use crate::Result;

/// Shift direction within the vector register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShiftDir {
    /// Element `i` receives element `i + k` (data moves toward index 0).
    TowardHead,
    /// Element `i` receives element `i - k` (data moves toward the end).
    TowardTail,
}

/// Intra-VR element shift operations.
pub trait ShiftOps {
    /// Shifts all elements of `vr` by `k` positions, zero-filling the
    /// vacated tail/head. Cost: `8 + k/4` cycles when `k % 4 == 0`
    /// (intra-bank path), `373·k` otherwise.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range register or `k >= vr_len()`.
    fn shift_elements(&mut self, vr: Vr, k: usize, dir: ShiftDir) -> Result<()>;

    /// Forces the expensive general shift path regardless of alignment
    /// (used to measure the cost difference).
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range register or `k >= vr_len()`.
    fn shift_elements_slow(&mut self, vr: Vr, k: usize, dir: ShiftDir) -> Result<()>;
}

fn do_shift(core: &mut ApuCore, vr: Vr, k: usize, dir: ShiftDir) -> Result<()> {
    core.vr(vr)?;
    if !core.is_functional() || k == 0 {
        return Ok(());
    }
    let v = core.vr_mut(vr)?;
    match dir {
        ShiftDir::TowardHead => {
            v.copy_within(k.., 0);
            let n = v.len();
            v[n - k..].fill(0);
        }
        ShiftDir::TowardTail => {
            let n = v.len();
            v.copy_within(..n - k, k);
            v[..k].fill(0);
        }
    }
    Ok(())
}

impl ShiftOps for ApuCore {
    fn shift_elements(&mut self, vr: Vr, k: usize, dir: ShiftDir) -> Result<()> {
        if k >= self.vr_len() {
            return Err(Error::InvalidArg(format!(
                "shift magnitude {k} exceeds VR length {}",
                self.vr_len()
            )));
        }
        let t = &self.config().timing;
        let cost = if k.is_multiple_of(4) {
            t.shift_bank(k / 4)
        } else {
            t.shift_e(k)
        };
        let issue = apu_sim::Cycles::new(t.cmd_issue);
        self.charge_cycles(apu_sim::core::CycleClass::Compute, cost + issue);
        do_shift(self, vr, k, dir)
    }

    fn shift_elements_slow(&mut self, vr: Vr, k: usize, dir: ShiftDir) -> Result<()> {
        if k >= self.vr_len() {
            return Err(Error::InvalidArg(format!(
                "shift magnitude {k} exceeds VR length {}",
                self.vr_len()
            )));
        }
        let t = &self.config().timing;
        let cost = t.shift_e(k);
        let issue = apu_sim::Cycles::new(t.cmd_issue);
        self.charge_cycles(apu_sim::core::CycleClass::Compute, cost + issue);
        do_shift(self, vr, k, dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn shift_toward_head_moves_data_down() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            core.shift_elements(Vr::new(0), 4, ShiftDir::TowardHead)?;
            let v = core.vr(Vr::new(0))?;
            assert_eq!(v[0], 4);
            assert_eq!(v[100], 104);
            let n = v.len();
            assert_eq!(v[n - 1], 0);
            Ok(())
        });
    }

    #[test]
    fn shift_toward_tail_moves_data_up() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            core.shift_elements(Vr::new(0), 8, ShiftDir::TowardTail)?;
            let v = core.vr(Vr::new(0))?;
            assert_eq!(v[0], 0);
            assert_eq!(v[7], 0);
            assert_eq!(v[8], 0u16);
            assert_eq!(v[9], 1);
            Ok(())
        });
    }

    #[test]
    fn aligned_shift_is_cheap_unaligned_expensive() {
        let (cheap, expensive) = with_core(|core| {
            let t0 = core.cycles();
            core.shift_elements(Vr::new(0), 1024, ShiftDir::TowardHead)?;
            let t1 = core.cycles();
            core.shift_elements(Vr::new(0), 3, ShiftDir::TowardHead)?;
            let t2 = core.cycles();
            Ok(((t1 - t0).get(), (t2 - t1).get()))
        });
        assert_eq!(cheap, 8 + 1024 / 4 + 2);
        assert_eq!(expensive, 373 * 3 + 2);
        // the paper's point: orders of magnitude apart per element moved
        assert!((expensive as f64 / 3.0) > 100.0 * (cheap as f64 / 1024.0));
    }

    #[test]
    fn forced_slow_path() {
        let slow = with_core(|core| {
            let t0 = core.cycles();
            core.shift_elements_slow(Vr::new(0), 4, ShiftDir::TowardHead)?;
            Ok((core.cycles() - t0).get())
        });
        assert_eq!(slow, 373 * 4 + 2);
    }

    #[test]
    fn zero_shift_is_noop_but_charged() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            let t0 = core.cycles();
            core.shift_elements(Vr::new(0), 0, ShiftDir::TowardHead)?;
            assert_eq!(core.vr(Vr::new(0))?[5], 5);
            assert_eq!((core.cycles() - t0).get(), 8 + 2);
            Ok(())
        });
    }

    #[test]
    fn oversized_shift_rejected() {
        with_core(|core| {
            let n = core.vr_len();
            assert!(core
                .shift_elements(Vr::new(0), n, ShiftDir::TowardHead)
                .is_err());
            Ok(())
        });
    }
}
