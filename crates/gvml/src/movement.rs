//! Intra-core data movement: VR↔VR copies, immediate broadcast, and
//! subgroup duplication (the enabler of the paper's DMA coalescing
//! optimization).

use apu_sim::{ApuCore, Error, VecOp, Vr};

use crate::ops_util::unary_op;
use crate::Result;

/// Elements per physical bank (32 K elements striped over 16 banks).
fn bank_elems(core: &ApuCore) -> usize {
    core.vr_len() / apu_sim::core::NUM_BANKS
}

/// VR↔VR movement operations.
pub trait MoveOps {
    /// `cpy`: element-wise VR→VR copy (29 cycles).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn cpy_16(&mut self, dst: Vr, src: Vr) -> Result<()>;

    /// `cpy_imm`: broadcast an immediate to every element (13 cycles).
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range register index.
    fn cpy_imm_16(&mut self, dst: Vr, imm: u16) -> Result<()>;

    /// `cpy_subgrp`: replicate the leading `subgrp_len` elements of each
    /// `grp_len`-element group of `src` across the whole group in `dst`
    /// (82 cycles, plus a bank-crossing penalty when the subgroup is not
    /// bank-aligned).
    ///
    /// With `grp_len == vr_len()` this duplicates one chunk across the
    /// entire register — the "reuse VR" pattern of the paper's Fig. 10.
    ///
    /// # Errors
    ///
    /// Fails unless `subgrp_len` divides `grp_len` and `grp_len` divides
    /// the VR length, or on aliased registers.
    fn cpy_subgrp_16(&mut self, dst: Vr, src: Vr, subgrp_len: usize, grp_len: usize) -> Result<()>;

    /// Replicates only into the destination range `[dst_start, dst_end)`,
    /// leaving the rest of `dst` untouched (the partial-target flexibility
    /// noted in §4.3). Same cost as a full subgroup copy.
    ///
    /// # Errors
    ///
    /// Same as [`MoveOps::cpy_subgrp_16`], plus range validation.
    fn cpy_subgrp_16_range(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        dst_start: usize,
        dst_end: usize,
    ) -> Result<()>;
}

impl MoveOps for ApuCore {
    fn cpy_16(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::Cpy);
        if dst == src {
            self.vr(dst)?;
            return Ok(());
        }
        unary_op(self, dst, src, |x| x)
    }

    fn cpy_imm_16(&mut self, dst: Vr, imm: u16) -> Result<()> {
        self.charge(VecOp::CpyImm);
        self.vr(dst)?;
        if self.is_functional() {
            self.vr_mut(dst)?.fill(imm);
        }
        Ok(())
    }

    fn cpy_subgrp_16(&mut self, dst: Vr, src: Vr, subgrp_len: usize, grp_len: usize) -> Result<()> {
        let n = self.vr_len();
        validate_subgrp(n, subgrp_len, grp_len)?;
        self.charge(VecOp::CpySubgrp);
        self.charge_bank_crossing(subgrp_len);
        if dst == src {
            return Err(Error::InvalidArg(
                "cpy_subgrp source and destination must differ".into(),
            ));
        }
        self.vr(dst)?;
        self.vr(src)?;
        if !self.is_functional() {
            return Ok(());
        }
        let (d, s) = self.vr_pair_mut(dst, src)?;
        // Each group replicates its leading subgroup; copy it subgroup-
        // sized chunk by chunk (grp_len is a multiple of subgrp_len).
        for (dg, sg) in d.chunks_exact_mut(grp_len).zip(s.chunks_exact(grp_len)) {
            let pattern = &sg[..subgrp_len];
            for c in dg.chunks_exact_mut(subgrp_len) {
                c.copy_from_slice(pattern);
            }
        }
        Ok(())
    }

    fn cpy_subgrp_16_range(
        &mut self,
        dst: Vr,
        src: Vr,
        subgrp_len: usize,
        dst_start: usize,
        dst_end: usize,
    ) -> Result<()> {
        let n = self.vr_len();
        if subgrp_len == 0 || dst_start >= dst_end || dst_end > n {
            return Err(Error::InvalidArg(format!(
                "invalid subgroup range [{dst_start}, {dst_end}) with subgroup {subgrp_len}"
            )));
        }
        self.charge(VecOp::CpySubgrp);
        self.charge_bank_crossing(subgrp_len);
        if dst == src {
            return Err(Error::InvalidArg(
                "cpy_subgrp source and destination must differ".into(),
            ));
        }
        self.vr(dst)?;
        self.vr(src)?;
        if !self.is_functional() {
            return Ok(());
        }
        let (d, s) = self.vr_pair_mut(dst, src)?;
        // The destination range cycles through s[0..subgrp_len]; the last
        // chunk may be partial.
        let pattern = &s[..subgrp_len.min(s.len())];
        for c in d[dst_start..dst_end].chunks_mut(subgrp_len) {
            c.copy_from_slice(&pattern[..c.len()]);
        }
        Ok(())
    }
}

/// Shared private helper: penalty charging for non-bank-aligned subgroup
/// traffic.
trait BankCross {
    fn charge_bank_crossing(&mut self, subgrp_len: usize);
}

impl BankCross for ApuCore {
    fn charge_bank_crossing(&mut self, subgrp_len: usize) {
        let be = bank_elems(self);
        if !subgrp_len.is_multiple_of(be) && !be.is_multiple_of(subgrp_len) {
            let penalty = self.config().timing.bank_cross_penalty;
            self.charge_cycles(
                apu_sim::core::CycleClass::Compute,
                apu_sim::Cycles::new(penalty),
            );
        }
    }
}

fn validate_subgrp(n: usize, subgrp_len: usize, grp_len: usize) -> Result<()> {
    if subgrp_len == 0
        || grp_len == 0
        || !grp_len.is_multiple_of(subgrp_len)
        || !n.is_multiple_of(grp_len)
    {
        return Err(Error::InvalidArg(format!(
            "subgroup {subgrp_len} must divide group {grp_len}, which must divide VR length {n}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn cpy_and_broadcast() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            core.cpy_16(Vr::new(1), Vr::new(0))?;
            assert_eq!(core.vr(Vr::new(1))?[123], 123);
            core.cpy_imm_16(Vr::new(1), 7)?;
            assert!(core.vr(Vr::new(1))?.iter().all(|&v| v == 7));
            // self-copy is a charged no-op
            core.cpy_16(Vr::new(1), Vr::new(1))?;
            Ok(())
        });
    }

    #[test]
    fn subgroup_duplicates_across_whole_vr() {
        with_core(|core| {
            let n = core.vr_len();
            fill(
                core,
                Vr::new(0),
                |i| if i < 256 { 1000 + i as u16 } else { 0 },
            );
            core.cpy_subgrp_16(Vr::new(1), Vr::new(0), 256, n)?;
            let d = core.vr(Vr::new(1))?;
            for (i, &v) in d.iter().enumerate().take(n) {
                assert_eq!(v, 1000 + (i % 256) as u16);
            }
            Ok(())
        });
    }

    #[test]
    fn subgroup_within_groups() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            core.cpy_subgrp_16(Vr::new(1), Vr::new(0), 4, 16)?;
            let d = core.vr(Vr::new(1))?;
            assert_eq!(&d[0..8], &[0, 1, 2, 3, 0, 1, 2, 3]);
            assert_eq!(&d[16..20], &[16, 17, 18, 19]);
            assert_eq!(d[20], 16);
            Ok(())
        });
    }

    #[test]
    fn subgroup_range_targets_portion() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| i as u16);
            core.cpy_imm_16(Vr::new(1), 9999)?;
            core.cpy_subgrp_16_range(Vr::new(1), Vr::new(0), 4, 100, 108)?;
            let d = core.vr(Vr::new(1))?;
            assert_eq!(d[99], 9999);
            assert_eq!(&d[100..108], &[0, 1, 2, 3, 0, 1, 2, 3]);
            assert_eq!(d[108], 9999);
            Ok(())
        });
    }

    #[test]
    fn subgroup_validation() {
        with_core(|core| {
            let n = core.vr_len();
            assert!(core.cpy_subgrp_16(Vr::new(1), Vr::new(0), 3, 16).is_err());
            assert!(core.cpy_subgrp_16(Vr::new(1), Vr::new(0), 0, 16).is_err());
            assert!(core.cpy_subgrp_16(Vr::new(1), Vr::new(1), 4, n).is_err());
            assert!(core
                .cpy_subgrp_16_range(Vr::new(1), Vr::new(0), 4, 10, 10)
                .is_err());
            Ok(())
        });
    }

    #[test]
    fn unaligned_subgroup_pays_bank_penalty() {
        let (aligned, unaligned) = with_core(|core| {
            let n = core.vr_len();
            // 2048 elements is exactly one bank: aligned.
            let t0 = core.cycles();
            core.cpy_subgrp_16(Vr::new(1), Vr::new(0), 2048, n)?;
            let t1 = core.cycles();
            // 96 elements neither divides nor is a multiple of a bank.
            core.cpy_subgrp_16_range(Vr::new(1), Vr::new(0), 96, 0, 960)?;
            let t2 = core.cycles();
            Ok(((t1 - t0).get(), (t2 - t1).get()))
        });
        assert_eq!(aligned, 82 + 2);
        assert_eq!(unaligned, 82 + 2 + 5);
    }
}
