//! Element-wise min/max, absolute value, and saturating arithmetic.
//!
//! GVML provides these as single vector commands; they decode to a
//! compare plus a masked select (min/max) or an add with carry-clamp
//! (saturating ops), so they are charged as compare + copy and add +
//! compare respectively.

use apu_sim::{ApuCore, VecOp, Vr};

use crate::ops_util::{bin_op, unary_op};
use crate::Result;

/// Element-wise min/max, absolute value, and saturating arithmetic.
pub trait MinMaxOps {
    /// `min_u16`: element-wise unsigned minimum.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn min_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `max_u16`: element-wise unsigned maximum.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn max_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `min_s16` / `max_s16`: signed variants.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn min_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// Signed element-wise maximum.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn max_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `abs_s16`: element-wise absolute value (`i16::MIN` stays put, as
    /// two's-complement hardware does).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn abs_s16(&mut self, dst: Vr, src: Vr) -> Result<()>;

    /// `add_sat_u16`: unsigned saturating addition.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn add_sat_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `sub_sat_u16`: unsigned saturating subtraction.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn sub_sat_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;

    /// `add_sat_s16`: signed saturating addition.
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn add_sat_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()>;
}

impl MinMaxOps for ApuCore {
    fn min_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::LtU16);
        self.charge(VecOp::Cpy);
        bin_op(self, dst, a, b, |x, y| x.min(y))
    }

    fn max_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::GtU16);
        self.charge(VecOp::Cpy);
        bin_op(self, dst, a, b, |x, y| x.max(y))
    }

    fn min_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::LtU16);
        self.charge(VecOp::Cpy);
        bin_op(self, dst, a, b, |x, y| ((x as i16).min(y as i16)) as u16)
    }

    fn max_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::GtU16);
        self.charge(VecOp::Cpy);
        bin_op(self, dst, a, b, |x, y| ((x as i16).max(y as i16)) as u16)
    }

    fn abs_s16(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::SubS16);
        self.charge(VecOp::Cpy);
        unary_op(self, dst, src, |x| (x as i16).wrapping_abs() as u16)
    }

    fn add_sat_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::AddU16);
        self.charge(VecOp::LtU16);
        bin_op(self, dst, a, b, u16::saturating_add)
    }

    fn sub_sat_u16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::SubU16);
        self.charge(VecOp::GtU16);
        bin_op(self, dst, a, b, u16::saturating_sub)
    }

    fn add_sat_s16(&mut self, dst: Vr, a: Vr, b: Vr) -> Result<()> {
        self.charge(VecOp::AddS16);
        self.charge(VecOp::LtU16);
        bin_op(self, dst, a, b, |x, y| {
            (x as i16).saturating_add(y as i16) as u16
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn min_max_unsigned_and_signed() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 5);
            fill(core, Vr::new(1), |_| (-3i16) as u16);
            core.min_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 5); // 0xFFFD > 5 unsigned
            core.min_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0] as i16, -3);
            core.max_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 5);
            core.max_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], (-3i16) as u16);
            Ok(())
        });
    }

    #[test]
    fn abs_handles_min_like_hardware() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| {
                [(-5i16) as u16, 7, i16::MIN as u16][i % 3]
            });
            core.abs_s16(Vr::new(1), Vr::new(0))?;
            let v = core.vr(Vr::new(1))?;
            assert_eq!(v[0] as i16, 5);
            assert_eq!(v[1] as i16, 7);
            assert_eq!(v[2] as i16, i16::MIN); // wraps, like the silicon
            Ok(())
        });
    }

    #[test]
    fn saturating_arithmetic() {
        with_core(|core| {
            fill(core, Vr::new(0), |_| 65000);
            fill(core, Vr::new(1), |_| 1000);
            core.add_sat_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0], u16::MAX);
            core.sub_sat_u16(Vr::new(2), Vr::new(1), Vr::new(0))?;
            assert_eq!(core.vr(Vr::new(2))?[0], 0);
            fill(core, Vr::new(0), |_| i16::MAX as u16);
            fill(core, Vr::new(1), |_| 10);
            core.add_sat_s16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            assert_eq!(core.vr(Vr::new(2))?[0] as i16, i16::MAX);
            Ok(())
        });
    }

    #[test]
    fn charges_compare_plus_select() {
        let d = with_core(|core| {
            let t0 = core.cycles();
            core.min_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
            Ok((core.cycles() - t0).get())
        });
        assert_eq!(d, (13 + 2) + (29 + 2));
    }
}
