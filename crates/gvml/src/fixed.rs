//! Fixed-point trigonometric operations (`sin_fx`, `cos_fx`).
//!
//! Convention: the input is an unsigned Q0.16 fraction of a full turn
//! (`0x0000` = 0, `0x4000` = π/2, `0x8000` = π), and the output is a
//! signed Q1.14 value in [-1, 1] (`0x4000` = +1.0). This matches the
//! angle-addressed CORDIC tables the device microcode uses.

use apu_sim::{ApuCore, VecOp, Vr};

use crate::ops_util::unary_op;
use crate::Result;

/// Unit of the Q1.14 output format: the encoding of +1.0.
pub const FX_ONE: i16 = 1 << 14;

/// Encodes an angle in turns (1.0 = full circle) as the Q0.16 input.
pub fn fx_angle_from_turns(turns: f64) -> u16 {
    let frac = turns.rem_euclid(1.0);
    (frac * 65536.0).round() as u32 as u16
}

/// Decodes a Q1.14 result to `f64`.
pub fn fx_to_f64(v: u16) -> f64 {
    (v as i16) as f64 / FX_ONE as f64
}

fn sin_fx_scalar(angle: u16) -> u16 {
    let turns = angle as f64 / 65536.0;
    let v = (turns * std::f64::consts::TAU).sin();
    ((v * FX_ONE as f64).round() as i32).clamp(-(FX_ONE as i32), FX_ONE as i32) as i16 as u16
}

fn cos_fx_scalar(angle: u16) -> u16 {
    let turns = angle as f64 / 65536.0;
    let v = (turns * std::f64::consts::TAU).cos();
    ((v * FX_ONE as f64).round() as i32).clamp(-(FX_ONE as i32), FX_ONE as i32) as i16 as u16
}

/// Fixed-point trigonometry.
pub trait FixedOps {
    /// `sin_fx`: element-wise fixed-point sine (761 cycles).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn sin_fx(&mut self, dst: Vr, src: Vr) -> Result<()>;

    /// `cos_fx`: element-wise fixed-point cosine (761 cycles).
    ///
    /// # Errors
    ///
    /// Fails on out-of-range register indices.
    fn cos_fx(&mut self, dst: Vr, src: Vr) -> Result<()>;
}

impl FixedOps for ApuCore {
    fn sin_fx(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::SinFx);
        unary_op(self, dst, src, sin_fx_scalar)
    }

    fn cos_fx(&mut self, dst: Vr, src: Vr) -> Result<()> {
        self.charge(VecOp::CosFx);
        unary_op(self, dst, src, cos_fx_scalar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops_util::test_util::{fill, with_core};

    #[test]
    fn cardinal_angles() {
        with_core(|core| {
            let angles = [0.0, 0.25, 0.5, 0.75];
            fill(core, Vr::new(0), |i| fx_angle_from_turns(angles[i % 4]));
            core.sin_fx(Vr::new(1), Vr::new(0))?;
            core.cos_fx(Vr::new(2), Vr::new(0))?;
            let s = core.vr(Vr::new(1))?;
            let c = core.vr(Vr::new(2))?;
            assert_eq!(fx_to_f64(s[0]), 0.0); // sin 0
            assert_eq!(fx_to_f64(s[1]), 1.0); // sin π/2
            assert!(fx_to_f64(s[2]).abs() < 1e-3); // sin π
            assert_eq!(fx_to_f64(c[0]), 1.0); // cos 0
            assert!(fx_to_f64(c[1]).abs() < 1e-3); // cos π/2
            assert_eq!(fx_to_f64(c[2]), -1.0); // cos π
            assert!(fx_to_f64(c[3]).abs() < 1e-3); // cos 3π/2
            Ok(())
        });
    }

    #[test]
    fn pythagorean_identity_holds() {
        with_core(|core| {
            fill(core, Vr::new(0), |i| (i * 97) as u16);
            core.sin_fx(Vr::new(1), Vr::new(0))?;
            core.cos_fx(Vr::new(2), Vr::new(0))?;
            for i in 0..512 {
                let s = fx_to_f64(core.vr(Vr::new(1))?[i]);
                let c = fx_to_f64(core.vr(Vr::new(2))?[i]);
                let err = (s * s + c * c - 1.0).abs();
                assert!(err < 5e-4, "identity violated at {i}: {err}");
            }
            Ok(())
        });
    }

    #[test]
    fn cycle_cost() {
        let d = with_core(|core| {
            let t0 = core.cycles();
            core.sin_fx(Vr::new(1), Vr::new(0))?;
            Ok((core.cycles() - t0).get())
        });
        assert_eq!(d, 761 + 2);
    }

    #[test]
    fn angle_helpers() {
        assert_eq!(fx_angle_from_turns(0.0), 0);
        assert_eq!(fx_angle_from_turns(0.5), 0x8000);
        assert_eq!(fx_angle_from_turns(1.25), 0x4000); // wraps
        assert_eq!(fx_angle_from_turns(-0.25), 0xC000); // negative wraps
    }
}
