//! Synthetic corpus and embedding store.
//!
//! The paper chunks each corpus into 16,384-token segments and embeds
//! every chunk: 10 GB → 163 K chunks (120 MB of embeddings), 50 GB →
//! 819 K (600 MB), 200 GB → 3.3 M (2.4 GB). The retrieval kernel's cost
//! depends only on (#chunks × dimension), so the store generates
//! deterministic pseudo-embeddings instead of embedding real text, and
//! only materializes them at functional (small) scales.
//!
//! Embedding values are quantized to −6..=6 so a 384-dimension dot
//! product (≤ 13,824) fits a 16-bit device lane exactly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Embedding dimensionality (the paper's 120 MB / 163 K chunks ≈ 2-byte
/// 384-dim vectors).
pub const EMBED_DIM: usize = 384;
/// Tokens per corpus chunk.
pub const CHUNK_TOKENS: usize = 16_384;
/// Quantized embedding magnitude bound.
pub const EMBED_MAX: i16 = 6;

/// A corpus size point.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorpusSpec {
    /// Nominal corpus size in bytes (the paper's 10/50/200 GB axis).
    pub corpus_bytes: u64,
    /// Number of chunks.
    pub chunks: usize,
}

impl CorpusSpec {
    /// Derives the chunk count from a corpus size using the paper's
    /// ratio (163 K chunks per 10 GB).
    pub fn from_corpus_bytes(bytes: u64) -> Self {
        let chunks = ((bytes as f64) * 163_000.0 / 10e9).round() as usize;
        CorpusSpec {
            corpus_bytes: bytes,
            chunks: chunks.max(1),
        }
    }

    /// The paper's three evaluation points.
    pub fn paper_points() -> [CorpusSpec; 3] {
        [
            CorpusSpec::from_corpus_bytes(10_000_000_000),
            CorpusSpec::from_corpus_bytes(50_000_000_000),
            CorpusSpec::from_corpus_bytes(200_000_000_000),
        ]
    }

    /// Embedding bytes (chunks × dim × 2).
    pub fn embedding_bytes(&self) -> u64 {
        self.chunks as u64 * EMBED_DIM as u64 * 2
    }

    /// Human-readable label ("10 GB").
    pub fn label(&self) -> String {
        format!("{:.0} GB", self.corpus_bytes as f64 / 1e9)
    }
}

/// Deterministic embedding store.
///
/// Chunk embeddings derive from the seed; `materialized` stores are
/// backed by real vectors (functional runs and tests), size-only stores
/// carry just the spec (timing-only paper-scale runs).
#[derive(Debug, Clone)]
pub struct EmbeddingStore {
    spec: CorpusSpec,
    seed: u64,
    epoch: u64,
    data: Option<Vec<i16>>, // chunk-major [chunks × EMBED_DIM]
}

impl EmbeddingStore {
    /// Creates a materialized store (generates `chunks × dim` values).
    pub fn materialized(spec: CorpusSpec, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let data = (0..spec.chunks * EMBED_DIM)
            .map(|_| rng.gen_range(-EMBED_MAX..=EMBED_MAX))
            .collect();
        EmbeddingStore {
            spec,
            seed,
            epoch: 0,
            data: Some(data),
        }
    }

    /// Creates a size-only store for timing-only runs.
    pub fn size_only(spec: CorpusSpec, seed: u64) -> Self {
        EmbeddingStore {
            spec,
            seed,
            epoch: 0,
            data: None,
        }
    }

    /// Wraps explicit chunk-major embeddings (`chunks × EMBED_DIM`) as a
    /// materialized store — e.g. a reordered copy of another store, or
    /// k-means centroids used as a probe corpus (see [`crate::ivf`]).
    /// The `seed` only parameterizes [`EmbeddingStore::query`].
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` is not a multiple of [`EMBED_DIM`].
    pub fn from_embeddings(corpus_bytes: u64, data: Vec<i16>, seed: u64) -> Self {
        assert!(
            data.len().is_multiple_of(EMBED_DIM),
            "embedding data length {} is not a multiple of {EMBED_DIM}",
            data.len()
        );
        let spec = CorpusSpec {
            corpus_bytes,
            chunks: data.len() / EMBED_DIM,
        };
        EmbeddingStore {
            spec,
            seed,
            epoch: 0,
            data: Some(data),
        }
    }

    /// The corpus spec.
    pub fn spec(&self) -> &CorpusSpec {
        &self.spec
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The store's content epoch (0 for static stores).
    ///
    /// A mutable corpus (see [`crate::mutable`]) stamps every base,
    /// delta, and compacted segment store with a distinct epoch. The
    /// epoch is folded into the batch kernel's fast-forward memo key, so
    /// a timing replay recorded against one corpus generation can never
    /// be charged against a different one — a compaction that changes
    /// the chunk count (or merely the content) forces a fresh timed run.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns the store stamped with `epoch` (builder-style).
    #[must_use]
    pub fn with_epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Whether vectors are materialized.
    pub fn is_materialized(&self) -> bool {
        self.data.is_some()
    }

    /// One chunk's embedding.
    ///
    /// # Panics
    ///
    /// Panics if the store is size-only or `chunk` is out of range.
    pub fn embedding(&self, chunk: usize) -> &[i16] {
        let data = self.data.as_ref().expect("store not materialized");
        &data[chunk * EMBED_DIM..(chunk + 1) * EMBED_DIM]
    }

    /// All embeddings, chunk-major.
    ///
    /// # Panics
    ///
    /// Panics if the store is size-only.
    pub fn raw(&self) -> &[i16] {
        self.data.as_ref().expect("store not materialized")
    }

    /// A deterministic query embedding.
    pub fn query(&self, query_id: u64) -> Vec<i16> {
        // Separate seed domain so queries never collide with chunks.
        const QUERY_DOMAIN: u64 = 0x5175_6572_795f_5365; // "Query_Se"
        let mut rng = StdRng::seed_from_u64(self.seed ^ QUERY_DOMAIN.wrapping_add(query_id));
        (0..EMBED_DIM)
            .map(|_| rng.gen_range(-EMBED_MAX..=EMBED_MAX))
            .collect()
    }

    /// Splits the corpus into `n` contiguous shards for multi-device
    /// serving (see `rag::ShardedRagServer`).
    ///
    /// Chunks are partitioned in order — shard `i` takes
    /// `chunks/n + (i < chunks%n)` chunks — so shard sizes differ by at
    /// most one and concatenating the shards in order reconstructs the
    /// corpus exactly. Each shard's store **slices this store's data**
    /// (never regenerates from the seed, which would change values);
    /// shards of a size-only store are size-only. Shard chunk ids are
    /// local (0-based); [`CorpusShard::base`] maps them back to global
    /// ids. The nominal `corpus_bytes` is split proportionally.
    ///
    /// Degenerate requests return **fewer shards rather than broken
    /// ones**: `n` is clamped to ≥ 1, and when `n > chunks` only
    /// `chunks` single-chunk shards come back (a zero-chunk corpus
    /// yields one empty shard so callers always get at least one).
    /// Every returned shard of a non-empty corpus is non-empty, so
    /// downstream per-shard kernels never see a zero-chunk store.
    pub fn shards(&self, n: usize) -> Vec<CorpusShard> {
        let chunks = self.spec.chunks;
        let n = n.max(1).min(chunks.max(1));
        let mut out = Vec::with_capacity(n);
        let mut base = 0usize;
        for i in 0..n {
            let len = chunks / n + usize::from(i < chunks % n);
            let data = self
                .data
                .as_ref()
                .map(|d| d[base * EMBED_DIM..(base + len) * EMBED_DIM].to_vec());
            let corpus_bytes = if chunks == 0 {
                0
            } else {
                self.spec.corpus_bytes * len as u64 / chunks as u64
            };
            out.push(CorpusShard {
                store: EmbeddingStore {
                    spec: CorpusSpec {
                        corpus_bytes,
                        chunks: len,
                    },
                    seed: self.seed,
                    epoch: self.epoch,
                    data,
                },
                base: base as u32,
            });
            base += len;
        }
        out
    }
}

/// One contiguous shard of a parent [`EmbeddingStore`], produced by
/// [`EmbeddingStore::shards`]: the shard's own store (with shard-local,
/// 0-based chunk ids) plus the global id of its first chunk.
#[derive(Debug, Clone)]
pub struct CorpusShard {
    /// The shard's embedding store; `store.spec().chunks` is the shard
    /// length.
    pub store: EmbeddingStore,
    /// Global chunk id of the shard's first chunk: a shard-local hit for
    /// chunk `c` refers to global chunk `base + c`.
    pub base: u32,
}

impl CorpusShard {
    /// Half-open global chunk-id range `[base, base + len)` this shard
    /// covers.
    pub fn range(&self) -> std::ops::Range<u32> {
        self.base..self.base + self.store.spec().chunks as u32
    }
}

/// A deterministic **clustered** corpus for approximate-retrieval
/// studies: `topics` well-separated centers in the embedding band, each
/// chunk drawn as its (randomly assigned) center plus small per-element
/// noise. An IVF index over such a corpus recovers the topic structure,
/// so a query aimed near one center finds its true top-k inside a
/// handful of clusters — the regime where cluster pruning trades
/// essentially no recall for a large scan reduction.
///
/// The generator also hands out *topic-conditioned queries*
/// ([`ClusteredCorpus::query_near`]): a query is its topic's center
/// plus noise, modeling the skewed, locality-heavy query streams real
/// retrieval serving sees.
#[derive(Debug, Clone)]
pub struct ClusteredCorpus {
    /// The materialized embedding store (chunk order is random across
    /// topics, so contiguous corpus shards mix topics).
    pub store: EmbeddingStore,
    centers: Vec<Vec<i16>>,
    topic_of: Vec<u16>,
    seed: u64,
}

impl ClusteredCorpus {
    /// Generates a clustered corpus: `topics` centers with coordinates
    /// in −[`EMBED_MAX`]..=[`EMBED_MAX`], and per-chunk noise uniform in
    /// `-noise..=noise` (clamped back into the band).
    pub fn new(spec: CorpusSpec, topics: usize, noise: i16, seed: u64) -> Self {
        let topics = topics.max(1);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x436c_7573_7465_7253); // "ClusterS"
        let centers: Vec<Vec<i16>> = (0..topics)
            .map(|_| {
                (0..EMBED_DIM)
                    .map(|_| rng.gen_range(-EMBED_MAX..=EMBED_MAX))
                    .collect()
            })
            .collect();
        let mut topic_of = Vec::with_capacity(spec.chunks);
        let mut data = Vec::with_capacity(spec.chunks * EMBED_DIM);
        for _ in 0..spec.chunks {
            let t = rng.gen_range(0..topics);
            topic_of.push(t as u16);
            for &c in &centers[t] {
                let v = c + rng.gen_range(-noise..=noise);
                data.push(v.clamp(-EMBED_MAX, EMBED_MAX));
            }
        }
        ClusteredCorpus {
            store: EmbeddingStore {
                spec,
                seed,
                epoch: 0,
                data: Some(data),
            },
            centers,
            topic_of,
            seed,
        }
    }

    /// Number of topic centers.
    pub fn topics(&self) -> usize {
        self.centers.len()
    }

    /// The generating topic of one chunk.
    pub fn topic_of(&self, chunk: usize) -> usize {
        self.topic_of[chunk] as usize
    }

    /// A deterministic query aimed at `topic`: the topic center plus
    /// per-element noise in −2..=2, clamped to the embedding band. Its
    /// exact top-k concentrates in the chunks of that topic.
    pub fn query_near(&self, topic: usize, query_id: u64) -> Vec<i16> {
        const TOPIC_QUERY_DOMAIN: u64 = 0x546f_7069_6351_7279; // "TopicQry"
        let topic = topic % self.centers.len();
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ TOPIC_QUERY_DOMAIN.wrapping_add((topic as u64) << 32 | query_id),
        );
        self.centers[topic]
            .iter()
            .map(|&c| (c + rng.gen_range(-2..=2)).clamp(-EMBED_MAX, EMBED_MAX))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_points_match_table_sizes() {
        let pts = CorpusSpec::paper_points();
        assert_eq!(pts[0].chunks, 163_000);
        // 819K and 3.3M chunks within rounding
        assert!((810_000..=825_000).contains(&pts[1].chunks));
        assert!((3_250_000..=3_300_000).contains(&pts[2].chunks));
        // embedding sizes ≈ 120 MB / 600 MB / 2.4 GB
        assert!((115e6..130e6).contains(&(pts[0].embedding_bytes() as f64)));
        assert!((2.3e9..2.6e9).contains(&(pts[2].embedding_bytes() as f64)));
    }

    #[test]
    fn store_is_deterministic() {
        let spec = CorpusSpec {
            corpus_bytes: 0,
            chunks: 10,
        };
        let a = EmbeddingStore::materialized(spec, 1);
        let b = EmbeddingStore::materialized(spec, 1);
        assert_eq!(a.raw(), b.raw());
        assert_eq!(a.query(0), b.query(0));
        assert_ne!(a.query(0), a.query(1));
    }

    #[test]
    fn values_stay_in_band() {
        let spec = CorpusSpec {
            corpus_bytes: 0,
            chunks: 100,
        };
        let s = EmbeddingStore::materialized(spec, 2);
        assert!(s
            .raw()
            .iter()
            .all(|&v| (-EMBED_MAX..=EMBED_MAX).contains(&v)));
        // worst-case dot product fits i16
        assert!(EMBED_DIM as i32 * (EMBED_MAX as i32).pow(2) <= i16::MAX as i32);
    }

    #[test]
    fn shards_partition_the_corpus_exactly() {
        let spec = CorpusSpec {
            corpus_bytes: 1000,
            chunks: 10,
        };
        let s = EmbeddingStore::materialized(spec, 5);
        let shards = s.shards(3);
        assert_eq!(shards.len(), 3);
        // 10 = 4 + 3 + 3, contiguous bases.
        assert_eq!(
            shards
                .iter()
                .map(|sh| sh.store.spec().chunks)
                .collect::<Vec<_>>(),
            vec![4, 3, 3]
        );
        assert_eq!(
            shards.iter().map(|sh| sh.base).collect::<Vec<_>>(),
            vec![0, 4, 7]
        );
        assert_eq!(shards[1].range(), 4..7);
        // Shard data is a slice of the parent, not a regeneration.
        for sh in &shards {
            for local in 0..sh.store.spec().chunks {
                assert_eq!(
                    sh.store.embedding(local),
                    s.embedding(sh.base as usize + local)
                );
            }
            // Queries are shared across shards (same seed).
            assert_eq!(sh.store.query(9), s.query(9));
        }
        // Nominal bytes split proportionally (within integer rounding).
        let total: u64 = shards.iter().map(|sh| sh.store.spec().corpus_bytes).sum();
        assert!((997..=1000).contains(&total));
    }

    #[test]
    fn sharding_edge_cases_stay_well_formed() {
        let spec = CorpusSpec {
            corpus_bytes: 64,
            chunks: 2,
        };
        let s = EmbeddingStore::materialized(spec, 8);
        // n = 0 clamps to one shard covering everything.
        let whole = s.shards(0);
        assert_eq!(whole.len(), 1);
        assert_eq!(whole[0].store.spec().chunks, 2);
        assert_eq!(whole[0].store.raw(), s.raw());
        // More shards than chunks: fewer, non-empty shards come back
        // (regression: this used to produce empty trailing shards whose
        // zero-chunk stores broke per-shard kernels).
        let over = s.shards(4);
        assert_eq!(over.len(), 2);
        assert_eq!(
            over.iter()
                .map(|sh| sh.store.spec().chunks)
                .collect::<Vec<_>>(),
            vec![1, 1]
        );
        assert!(over.iter().all(|sh| !sh.range().is_empty()));
        assert_eq!(over[1].range(), 1..2);
        // Size-only parents give size-only shards.
        let dry = EmbeddingStore::size_only(CorpusSpec::from_corpus_bytes(10_000_000_000), 3);
        let dry_shards = dry.shards(4);
        assert!(dry_shards.iter().all(|sh| !sh.store.is_materialized()));
        assert_eq!(
            dry_shards
                .iter()
                .map(|sh| sh.store.spec().chunks)
                .sum::<usize>(),
            163_000
        );
    }

    #[test]
    fn zero_chunk_corpus_yields_one_empty_shard() {
        // Regression: a zero-chunk corpus must not panic and callers
        // still get a (single, empty) shard to iterate.
        let spec = CorpusSpec {
            corpus_bytes: 0,
            chunks: 0,
        };
        for s in [
            EmbeddingStore::materialized(spec, 1),
            EmbeddingStore::size_only(spec, 1),
        ] {
            for n in [0usize, 1, 5] {
                let shards = s.shards(n);
                assert_eq!(shards.len(), 1, "n={n}");
                assert_eq!(shards[0].store.spec().chunks, 0);
                assert!(shards[0].range().is_empty());
            }
        }
    }

    #[test]
    fn oversharding_still_partitions_exactly() {
        let spec = CorpusSpec {
            corpus_bytes: 300,
            chunks: 3,
        };
        let s = EmbeddingStore::materialized(spec, 9);
        let shards = s.shards(100);
        assert_eq!(shards.len(), 3);
        let mut next = 0u32;
        for sh in &shards {
            assert_eq!(sh.base, next);
            assert_eq!(sh.store.spec().chunks, 1);
            assert_eq!(sh.store.embedding(0), s.embedding(sh.base as usize));
            next = sh.range().end;
        }
        assert_eq!(next as usize, spec.chunks);
    }

    #[test]
    fn from_embeddings_wraps_data_verbatim() {
        let spec = CorpusSpec {
            corpus_bytes: 0,
            chunks: 3,
        };
        let src = EmbeddingStore::materialized(spec, 4);
        let wrapped = EmbeddingStore::from_embeddings(64, src.raw().to_vec(), 4);
        assert_eq!(wrapped.spec().chunks, 3);
        assert_eq!(wrapped.spec().corpus_bytes, 64);
        assert!(wrapped.is_materialized());
        assert_eq!(wrapped.raw(), src.raw());
        assert_eq!(wrapped.query(7), src.query(7));
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn from_embeddings_rejects_ragged_data() {
        let _ = EmbeddingStore::from_embeddings(0, vec![1i16; EMBED_DIM + 1], 0);
    }

    #[test]
    fn clustered_corpus_is_deterministic_and_in_band() {
        let spec = CorpusSpec {
            corpus_bytes: 0,
            chunks: 200,
        };
        let a = ClusteredCorpus::new(spec, 8, 1, 5);
        let b = ClusteredCorpus::new(spec, 8, 1, 5);
        assert_eq!(a.store.raw(), b.store.raw());
        assert_eq!(a.query_near(3, 0), b.query_near(3, 0));
        assert_ne!(a.query_near(3, 0), a.query_near(3, 1));
        assert_eq!(a.topics(), 8);
        assert!(a
            .store
            .raw()
            .iter()
            .all(|&v| (-EMBED_MAX..=EMBED_MAX).contains(&v)));
        // Chunks sit near their generating center: a chunk's dot with
        // its own topic's query beats a random other topic's query for
        // the overwhelming majority of chunks.
        let dot = |x: &[i16], y: &[i16]| -> i64 {
            x.iter().zip(y).map(|(&a, &b)| a as i64 * b as i64).sum()
        };
        let mut closer = 0usize;
        for c in 0..spec.chunks {
            let own = a.query_near(a.topic_of(c), 1);
            let other = a.query_near((a.topic_of(c) + 1) % 8, 1);
            if dot(a.store.embedding(c), &own) > dot(a.store.embedding(c), &other) {
                closer += 1;
            }
        }
        assert!(closer >= spec.chunks * 95 / 100, "only {closer} close");
    }

    #[test]
    fn size_only_reports_spec() {
        let spec = CorpusSpec::from_corpus_bytes(10_000_000_000);
        let s = EmbeddingStore::size_only(spec, 3);
        assert!(!s.is_materialized());
        assert_eq!(s.spec().chunks, 163_000);
    }
}
