//! RAG serving: an online query front-end over the device command queue.
//!
//! [`RagServer`] accepts retrieval queries with arrival timestamps (an
//! open-loop stream) and submits each one **individually** through an
//! [`apu_sim::DeviceQueue`] as a batchable task keyed by
//! [`crate::batch::retrieval_batch_key`]. Batch formation happens in the
//! queue's continuous-batching dispatcher: at every dispatch opportunity
//! the scheduler coalesces up to [`ServeConfig::max_batch`] compatible
//! queries (VR-limited to [`MAX_BATCH`]) whose arrivals fall within
//! [`ServeConfig::batch_window`] of the head of the line, and runs them
//! as one [`crate::batch::retrieve_batch`] kernel. The queue path returns
//! *exactly* the hits the synchronous path returns; what the queue adds
//! is realistic dispatch: queueing delay, priority, admission control,
//! batch coalescing, and per-query latency accounting on the virtual
//! timeline.
//!
//! [`ShardedRagServer`] scales the same front-end across a
//! [`DeviceCluster`]: the corpus is split into contiguous shards
//! ([`EmbeddingStore::shards`]), each shard gets its own simulated
//! device + off-chip memory + command queue, every query fans out to all
//! shards, and the per-shard top-k results are merged into the exact
//! global top-k (shard kernels report global chunk ids, so the merge is
//! a plain [`top_k`] over the concatenation). A faulted or shedding
//! shard *degrades* the queries it drops — they still serve from the
//! healthy shards, flagged via [`QueryCompletion::is_degraded`] —
//! instead of failing them.
//!
//! With [`ServeConfig::replicas`] ≥ 2 every corpus shard is held by a
//! *replica set* of devices (an [`apu_sim::Placement`] over
//! `shards × replicas` device queues). Reads load-balance across the
//! healthy members of each set; when a replica faults, the drain loop
//! transparently resubmits the lost `(query, shard)` pieces on the
//! surviving members ([`DeviceCluster::submit_failover`]) with the
//! query's **original arrival**, so the failover delay is charged to
//! queue wait and stage sums stay exact. A single replica fault
//! therefore yields the *exact*, non-degraded top-k; a query degrades
//! only when a **whole** replica set is down.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;
use std::time::Duration;

use apu_sim::queue::percentile;
use apu_sim::trace::prometheus_text;
use apu_sim::{
    chrome_trace_json_grouped, ApuDevice, ChromeTraceSink, Completion, DeviceCluster, DeviceQueue,
    Error, FaultPlan, Placement, Priority, QueueConfig, QueueStats, RetryPolicy, RoutePolicy,
    SimConfig, StageBreakdown, TaskHandle, TaskSpec, TenantId, TraceEvent,
};
use hbm_sim::{DramSpec, MemorySystem};

use crate::batch::{retrieval_batch_key_for, run_boxed_batch, run_boxed_batch_at, MAX_BATCH};
use crate::corpus::{CorpusShard, EmbeddingStore};
use crate::ivf::{run_boxed_ivf_batch_at, IndexMode, IvfIndex, IvfStats};
use crate::mutable::{
    run_boxed_snapshot_batch, run_compaction_task, snapshot_batch_key, CompactionPlan,
    CompactionTicket, CorpusStats, MutableCorpus, Segment, Snapshot,
};
use crate::topk::top_k;
use crate::{Hit, Result};

/// Configuration of a [`RagServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retrieved chunks per query.
    pub k: usize,
    /// Largest batch to form (clamped to the VR-limited [`MAX_BATCH`]).
    pub max_batch: usize,
    /// A batch closes when the next query arrives later than this after
    /// the batch's first query (bounds batching-induced latency).
    pub batch_window: Duration,
    /// Command-queue configuration (admission control bound).
    pub queue: QueueConfig,
    /// Priority retrieval batches are submitted at.
    pub priority: Priority,
    /// Per-query time-to-live: a query that cannot start within `ttl`
    /// of its arrival is shed as `DeadlineExceeded` without dispatching
    /// (graceful degradation under overload). `None` disables shedding.
    /// A per-query TTL ([`QuerySpec::ttl`]) overrides this default.
    pub ttl: Option<Duration>,
    /// Bounded retry-with-backoff for transiently faulted queries.
    /// `None` disables retries.
    pub retry: Option<RetryPolicy>,
    /// Tail-latency hedging on a [`ShardedRagServer`]: when set, every
    /// shard fan-out task gets a speculative **hedge copy** submitted
    /// this long after the primary's arrival at [`Priority::High`] with
    /// the *primary's* deadline. Per `(query, shard)` the first
    /// successful copy wins the merge, so a shard whose primary is stuck
    /// behind a deep backlog answers from the hedge instead. Served
    /// queries that used at least one hedge copy are flagged via
    /// [`QueryCompletion::hedged`]. Hedge copies are extra shard-tasks:
    /// they inflate the queue counters but never the query count. A
    /// single-device [`RagServer`] ignores this (one queue — a duplicate
    /// would race itself). With replication the hedge copy goes to a
    /// *different* replica than the primary whenever one exists.
    pub hedge: Option<Duration>,
    /// Replicas per corpus shard on a [`ShardedRagServer`]: the server
    /// builds `shards × replicas` devices, load-balances each query's
    /// shard reads across its replica set, and transparently fails a
    /// lost read over to a surviving replica, so any single-replica
    /// fault still yields the exact, non-degraded top-k. `1` (or `0`,
    /// clamped) disables replication and is byte-identical to the
    /// unreplicated server. A single-device [`RagServer`] ignores this.
    pub replicas: usize,
    /// How retrievals execute by default: [`IndexMode::Flat`] (the
    /// paper's exact scan) or [`IndexMode::Ivf`] cluster-pruned search.
    /// A sharded server builds one IVF index **per shard slice** and
    /// keeps the exact global top-k merge unchanged; a per-query
    /// [`QuerySpec::index`] overrides this default, and queries with
    /// different index modes never share a batch
    /// ([`crate::batch::retrieval_batch_key_for`]).
    pub index: IndexMode,
    /// Priority background compaction tasks are submitted at on a
    /// mutable server (see [`ShardedRagServer::new_mutable`]). The
    /// default, [`Priority::Low`], lets interactive queries overtake the
    /// merge at every dispatch opportunity; the `serve_mutation` bench
    /// measures the in-SLO goodput gap against running compaction at
    /// interactive priority. Ignored on an immutable server.
    pub compaction_priority: Priority,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            k: 5,
            max_batch: MAX_BATCH,
            batch_window: Duration::from_millis(2),
            queue: QueueConfig::default(),
            priority: Priority::Normal,
            ttl: None,
            retry: None,
            hedge: None,
            replicas: 1,
            index: IndexMode::Flat,
            compaction_priority: Priority::Low,
        }
    }
}

/// Submission parameters of one query: arrival time plus optional
/// tenant tag, per-query priority, and per-query TTL (overriding the
/// server-wide [`ServeConfig`] defaults). Build with [`QuerySpec::new`]
/// and pass to [`RagServer::submit_query`] /
/// [`ShardedRagServer::submit_query`].
#[derive(Debug, Clone)]
pub struct QuerySpec {
    arrival: Duration,
    tenant: TenantId,
    priority: Option<Priority>,
    ttl: Option<Duration>,
    index: Option<IndexMode>,
    query: Vec<i16>,
}

impl QuerySpec {
    /// A query arriving at `arrival` on the virtual timeline, with the
    /// server-wide defaults for everything else.
    pub fn new(arrival: Duration, query: Vec<i16>) -> Self {
        QuerySpec {
            arrival,
            tenant: TenantId::default(),
            priority: None,
            ttl: None,
            index: None,
            query,
        }
    }

    /// Tags the query with a tenant for fair-share scheduling and
    /// per-tenant accounting (see [`apu_sim::SchedPolicy::SloAware`]).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Overrides the server-wide submission priority for this query.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Overrides the server-wide TTL for this query: it is shed unless
    /// it can start within `ttl` of its arrival.
    #[must_use]
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }

    /// Overrides the server-wide [`ServeConfig::index`] mode for this
    /// query — e.g. an exact flat scan for one audit query on an
    /// otherwise IVF-served stream. Queries with different index modes
    /// never share a batch.
    #[must_use]
    pub fn index(mut self, index: IndexMode) -> Self {
        self.index = Some(index);
        self
    }
}

/// Identifier of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryTicket(u64);

impl QueryTicket {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One served query: scheduling timestamps and its outcome — either the
/// top-k hits or the error it retired with (shed deadline, injected
/// fault, kernel failure). Failed queries are first-class completions;
/// they are never silently dropped from a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct QueryCompletion {
    /// Ticket returned at submission.
    pub ticket: QueryTicket,
    /// Tenant the query was submitted under ([`QuerySpec::tenant`];
    /// default tenant 0).
    pub tenant: TenantId,
    /// The query's own arrival time.
    pub arrival: Duration,
    /// Dispatch time of the batch that carried it (shed queries reuse
    /// their deadline).
    pub started_at: Duration,
    /// Retire time of that batch.
    pub finished_at: Duration,
    /// How many queries shared the batch.
    pub batch_size: usize,
    /// Dispatch attempts consumed (1 without retries).
    pub attempts: u32,
    /// Per-stage latency attribution (`queue_wait / dispatch / dma /
    /// device`); the components sum exactly to
    /// [`QueryCompletion::latency`].
    pub stages: StageBreakdown,
    /// How many corpus shards answered this query (always 1 of 1 on a
    /// single-device [`RagServer`]). A served query with `shards_ok <
    /// shards_total` is *degraded*: its hits are exact over the healthy
    /// shards only.
    pub shards_ok: usize,
    /// How many corpus shards the query was fanned out to.
    pub shards_total: usize,
    /// Whether at least one shard served this query from its hedge copy
    /// rather than the primary (see [`ServeConfig::hedge`]). Always
    /// `false` without hedging.
    pub hedged: bool,
    /// Failover resubmissions this query consumed across its shard
    /// reads (see [`ServeConfig::replicas`]). Always 0 without
    /// replication. The failed attempts behind this count never book
    /// latency or stage time — only the winning copy does, and its
    /// stage sum still equals [`QueryCompletion::latency`].
    pub failovers: u32,
    /// Top-k hits — identical to the synchronous
    /// [`crate::batch::retrieve_batch`] path — or the retirement error.
    pub outcome: std::result::Result<Vec<Hit>, Error>,
}

impl QueryCompletion {
    /// End-to-end latency: the query's own arrival to batch retire (so
    /// waiting for the batch window is charged to the early arrivals).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.arrival
    }

    /// Whether the query was served successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Whether the query was served from a strict subset of its corpus
    /// shards (some shard faulted or shed it). Degraded queries count as
    /// served — their hits are exact over the shards that answered —
    /// but a caller that needs whole-corpus recall can detect and retry
    /// them.
    pub fn is_degraded(&self) -> bool {
        self.outcome.is_ok() && self.shards_ok < self.shards_total
    }

    /// The served hits, or `None` for a failed query.
    pub fn hits(&self) -> Option<&[Hit]> {
        self.outcome.as_deref().ok()
    }

    /// The retirement error, or `None` for a served query.
    pub fn error(&self) -> Option<&Error> {
        self.outcome.as_ref().err()
    }

    /// Consumes the completion into its hits.
    ///
    /// # Errors
    ///
    /// Returns the retirement error of a failed query.
    pub fn into_hits(self) -> Result<Vec<Hit>> {
        self.outcome
    }
}

/// Replication counters of a serve run (the `apu_replica_*` series in
/// [`ServeReport::prometheus_text`]). All zeros — except one group of
/// one replica — on an unreplicated run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Logical shard groups served (the corpus shard count).
    pub groups: usize,
    /// Replicas per shard group ([`ServeConfig::replicas`], clamped).
    pub per_shard: usize,
    /// Failover resubmissions issued across the run.
    pub failovers: u64,
    /// Up→down replica health transitions observed.
    pub down: u64,
    /// Queries whose final answer used at least one failover copy.
    pub failover_served: u64,
}

/// Outcome of serving a drained query stream.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-query completions, in finish order (ticket order for ties).
    pub completions: Vec<QueryCompletion>,
    /// Command-queue counters for the run. On a sharded run this is the
    /// [`QueueStats::merge`] of every shard's queue, so task-level
    /// counters (`submitted`, `completed`, `dispatches`, …) count
    /// *shard-tasks* — queries × shards — not queries; use
    /// [`ServeReport::served`] / [`ServeReport::failed`] for query-level
    /// accounting.
    pub queue: QueueStats,
    /// Per-queue counters. A single-device [`RagServer`] reports one
    /// entry (equal to `queue`); an unreplicated [`ShardedRagServer`]
    /// one entry per corpus shard, in shard order. With replication
    /// ([`ServeConfig::replicas`] ≥ 2) entry `i` is **device** `i` of
    /// the `shards × replicas` pool — replica `r` of shard `s` is entry
    /// `s * replicas + r`.
    pub shards: Vec<QueueStats>,
    /// Replication counters (placement shape, failovers, health
    /// transitions).
    pub replica: ReplicaStats,
    /// IVF probe counters accumulated over the run's IVF-mode
    /// dispatches (the `apu_ivf_*` series in
    /// [`ServeReport::prometheus_text`]). All zeros on a pure flat-scan
    /// run.
    pub ivf: IvfStats,
    /// Live-corpus counters as of the end of the drain (the
    /// `apu_corpus_*` series in [`ServeReport::prometheus_text`]). All
    /// zeros on an immutable server.
    pub corpus: CorpusStats,
}

impl ServeReport {
    /// Per-query end-to-end latency percentile (nearest rank), over
    /// successfully served queries.
    ///
    /// Returns [`Duration::ZERO`] when there is no served query to rank
    /// — an empty report, or one whose queries all failed (shed,
    /// faulted, or rejected). Callers gating on a latency objective
    /// should check [`ServeReport::served`] first: an all-failed run
    /// trivially "meets" any percentile target. A whole replica set
    /// going down is one way to get here: once every replica of some
    /// shard has failed a query, the query retires failed (not
    /// degraded) and contributes no latency sample — failover attempts
    /// are never ranked, only winning copies are.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        let samples: Vec<Duration> = self
            .completions
            .iter()
            .filter(|c| c.is_ok())
            .map(|c| c.latency())
            .collect();
        if samples.is_empty() {
            return Duration::ZERO;
        }
        percentile(&samples, q)
    }

    /// Queries served successfully.
    pub fn served(&self) -> usize {
        self.completions.iter().filter(|c| c.is_ok()).count()
    }

    /// Queries that retired with an error (shed, faulted, or failed).
    pub fn failed(&self) -> usize {
        self.completions.len() - self.served()
    }

    /// Served queries answered by only a subset of their corpus shards
    /// (see [`QueryCompletion::is_degraded`]). Always 0 on a
    /// single-device [`RagServer`].
    pub fn degraded(&self) -> usize {
        self.completions.iter().filter(|c| c.is_degraded()).count()
    }

    /// Sustained successfully-served queries per second over the queue
    /// makespan.
    pub fn throughput_qps(&self) -> f64 {
        let wall = self.queue.makespan.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.served() as f64 / wall
        }
    }

    /// Accumulated per-stage latency totals over successfully served
    /// queries (see [`StageBreakdown`]): where a request's time went —
    /// queue wait vs command issue vs DMA vs device compute.
    pub fn stage_totals(&self) -> StageBreakdown {
        self.queue.stage_totals()
    }

    /// The run's queue counters, stage totals, latency quantiles, and
    /// replication counters (`apu_replica_*`) in the Prometheus text
    /// exposition format, ready to serve from a `/metrics` endpoint or
    /// dump next to a bench log.
    pub fn prometheus_text(&self) -> String {
        let mut out = prometheus_text(&self.queue, None);
        let r = &self.replica;
        let series: [(&str, &str, &str, u64); 5] = [
            (
                "apu_replica_groups",
                "gauge",
                "Logical shard groups served by the run.",
                r.groups as u64,
            ),
            (
                "apu_replica_per_shard",
                "gauge",
                "Replicas per shard group.",
                r.per_shard as u64,
            ),
            (
                "apu_replica_failovers_total",
                "counter",
                "Failover resubmissions issued.",
                r.failovers,
            ),
            (
                "apu_replica_down_total",
                "counter",
                "Replica up->down health transitions observed.",
                r.down,
            ),
            (
                "apu_replica_failover_served_total",
                "counter",
                "Queries whose final answer used a failover copy.",
                r.failover_served,
            ),
        ];
        for (name, kind, help, value) in series {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        let v = &self.ivf;
        let ivf_series: [(&str, &str, u64); 5] = [
            (
                "apu_ivf_searches_total",
                "Batched IVF dispatches executed.",
                v.searches,
            ),
            (
                "apu_ivf_queries_total",
                "Queries served through an IVF index.",
                v.queries,
            ),
            (
                "apu_ivf_probes_total",
                "Probed clusters summed over IVF queries.",
                v.probes,
            ),
            (
                "apu_ivf_clusters_scanned_total",
                "Distinct clusters scanned, summed over IVF dispatches.",
                v.clusters_scanned,
            ),
            (
                "apu_ivf_candidates_total",
                "Candidate chunks exactly rescored by IVF dispatches.",
                v.candidates,
            ),
        ];
        for (name, help, value) in ivf_series {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
            ));
        }
        let c = &self.corpus;
        let corpus_series: [(&str, &str, &str, u64); 8] = [
            (
                "apu_corpus_live_docs",
                "gauge",
                "Live (non-tombstoned) documents across base and deltas.",
                c.live_docs,
            ),
            (
                "apu_corpus_delta_docs",
                "gauge",
                "Documents held in uncompacted delta segments.",
                c.delta_docs,
            ),
            (
                "apu_corpus_tombstones",
                "gauge",
                "Deleted documents awaiting compaction.",
                c.tombstones,
            ),
            (
                "apu_corpus_inserts_total",
                "counter",
                "Documents ingested over the corpus lifetime.",
                c.inserts,
            ),
            (
                "apu_corpus_deletes_total",
                "counter",
                "Documents deleted over the corpus lifetime.",
                c.deletes,
            ),
            (
                "apu_corpus_snapshots_total",
                "counter",
                "Immutable snapshots published.",
                c.snapshots,
            ),
            (
                "apu_corpus_compactions_total",
                "counter",
                "Background compactions applied.",
                c.compactions,
            ),
            (
                "apu_corpus_compaction_failures_total",
                "counter",
                "Background compactions abandoned after retries.",
                c.compaction_failures,
            ),
        ];
        for (name, kind, help, value) in corpus_series {
            out.push_str(&format!(
                "# HELP {name} {help}\n# TYPE {name} {kind}\n{name} {value}\n"
            ));
        }
        out
    }

    /// Mean batch size over served queries.
    pub fn mean_batch_size(&self) -> f64 {
        if self.completions.is_empty() {
            0.0
        } else {
            let total: usize = self.completions.iter().map(|c| c.batch_size).sum();
            total as f64 / self.completions.len() as f64
        }
    }
}

struct PendingQuery {
    ticket: QueryTicket,
    spec: QuerySpec,
    /// Immutable corpus snapshot captured at admission on a mutable
    /// server; `None` on a static corpus (the pre-mutation fast path).
    snapshot: Option<Arc<Snapshot>>,
}

/// An online RAG retrieval server over one device.
///
/// Submit queries with [`RagServer::submit`], then [`RagServer::drain`]
/// to form batches, run them through the device command queue, and
/// collect per-query completions.
pub struct RagServer<'a> {
    dev: &'a mut ApuDevice,
    hbm: &'a mut MemorySystem,
    store: &'a EmbeddingStore,
    cfg: ServeConfig,
    pending: Vec<PendingQuery>,
    next_ticket: u64,
    /// IVF indexes built lazily per `nlist`, cached across drains.
    ivf: HashMap<usize, IvfIndex>,
}

impl<'a> RagServer<'a> {
    /// Opens a server over a device, its off-chip embedding memory, and
    /// a corpus.
    pub fn new(
        dev: &'a mut ApuDevice,
        hbm: &'a mut MemorySystem,
        store: &'a EmbeddingStore,
        cfg: ServeConfig,
    ) -> Self {
        RagServer {
            dev,
            hbm,
            store,
            cfg,
            pending: Vec::new(),
            next_ticket: 0,
            ivf: HashMap::new(),
        }
    }

    /// Queries accepted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one query arriving at `arrival` on the virtual timeline,
    /// with the server-wide tenant/priority/TTL defaults (shorthand for
    /// [`RagServer::submit_query`] with a bare [`QuerySpec`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound, or [`Error::InvalidArg`] for a bad dimension
    /// (checked later by the batch kernel as well).
    pub fn submit(&mut self, arrival: Duration, query: Vec<i16>) -> Result<QueryTicket> {
        self.submit_query(QuerySpec::new(arrival, query))
    }

    /// Accepts one query with explicit per-query submission parameters
    /// (tenant tag, priority, TTL).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound.
    pub fn submit_query(&mut self, spec: QuerySpec) -> Result<QueryTicket> {
        if self.pending.len() >= self.cfg.queue.max_pending {
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.queue.max_pending,
            });
        }
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingQuery {
            ticket,
            spec,
            snapshot: None,
        });
        Ok(ticket)
    }

    /// Runs every pending query through the device command queue — one
    /// batchable submission per query, coalesced by the queue's
    /// continuous-batching dispatcher — and returns per-query
    /// completions. Failures are contained: a shed, faulted, or failed
    /// query retires with an `Err` outcome in its [`QueryCompletion`]
    /// while the rest of the stream keeps serving.
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations; pending queries
    /// are consumed either way.
    pub fn drain(&mut self) -> Result<ServeReport> {
        let mut queries = std::mem::take(&mut self.pending);
        queries.sort_by_key(|p| (p.spec.arrival, p.ticket.0));

        let store = self.store;
        let k = self.cfg.k;
        let cfg_index = self.cfg.index;
        // Build (once, cached across drains) every IVF index this drain
        // needs; training happens on the host, outside virtual time.
        for p in &queries {
            if let IndexMode::Ivf { nlist, .. } = p.spec.index.unwrap_or(cfg_index) {
                self.ivf
                    .entry(nlist)
                    .or_insert_with(|| IvfIndex::build(store, nlist));
            }
        }
        let ivf_indexes = &self.ivf;
        let ivf_cell = RefCell::new(IvfStats::default());
        let hbm = RefCell::new(&mut *self.hbm);
        let mut queue_cfg = self
            .cfg
            .queue
            .clone()
            .with_max_batch(self.cfg.max_batch.clamp(1, MAX_BATCH))
            .with_max_batch_wait(self.cfg.batch_window);
        if let Some(policy) = self.cfg.retry {
            queue_cfg = queue_cfg.with_retry(policy);
        }
        let mut queue = DeviceQueue::new(&mut *self.dev, queue_cfg);
        let mut tickets: HashMap<TaskHandle, (QueryTicket, Duration)> = HashMap::new();
        for p in queries {
            let hbm = &hbm;
            let mode = p.spec.index.unwrap_or(cfg_index);
            let key = retrieval_batch_key_for(store, k, mode);
            let run: apu_sim::queue::BatchRunner<'_> = match mode {
                IndexMode::Flat => Box::new(move |dev: &mut ApuDevice, payloads| {
                    let mut hbm = hbm.borrow_mut();
                    run_boxed_batch(dev, &mut hbm, store, payloads, k)
                }),
                IndexMode::Ivf { nlist, nprobe } => {
                    let index = &ivf_indexes[&nlist];
                    let stats = &ivf_cell;
                    Box::new(move |dev: &mut ApuDevice, payloads| {
                        let mut hbm = hbm.borrow_mut();
                        let (report, outputs, ds) =
                            run_boxed_ivf_batch_at(dev, &mut hbm, index, payloads, k, nprobe, 0)?;
                        stats.borrow_mut().absorb(&ds);
                        Ok((report, outputs))
                    })
                }
            };
            let arrival = p.spec.arrival;
            let mut task = TaskSpec::batch(key, Box::new(p.spec.query), run)
                .priority(p.spec.priority.unwrap_or(self.cfg.priority))
                .at(arrival)
                .tenant(p.spec.tenant);
            if let Some(ttl) = p.spec.ttl.or(self.cfg.ttl) {
                task = task.ttl(ttl);
            }
            let handle = queue.submit(task)?;
            tickets.insert(handle, (p.ticket, arrival));
        }

        let mut completions = Vec::new();
        for done in queue.drain()? {
            let (ticket, arrival) = tickets
                .remove(&done.handle)
                .expect("every completion maps to a submitted query");
            let (started_at, finished_at) = (done.started_at, done.finished_at);
            let (batch_size, attempts) = (done.batch_size, done.attempts);
            let tenant = done.tenant;
            let stages = done.stage_breakdown();
            let outcome = done.into_output();
            completions.push(QueryCompletion {
                ticket,
                tenant,
                arrival,
                started_at,
                finished_at,
                batch_size,
                attempts,
                stages,
                shards_ok: usize::from(outcome.is_ok()),
                shards_total: 1,
                hedged: false,
                failovers: 0,
                outcome,
            });
        }
        let stats = queue.stats().clone();
        let ivf = *ivf_cell.borrow();
        Ok(ServeReport {
            completions,
            shards: vec![stats.clone()],
            queue: stats,
            replica: ReplicaStats {
                groups: 1,
                per_shard: 1,
                ..ReplicaStats::default()
            },
            ivf,
            corpus: CorpusStats::default(),
        })
    }
}

/// An online RAG retrieval server sharded across a simulated multi-device
/// cluster.
///
/// The corpus is split into contiguous shards
/// ([`EmbeddingStore::shards`]); each shard owns one simulated
/// [`ApuDevice`] (independent virtual clock, fault plan, trace sink) and
/// one off-chip [`MemorySystem`]. [`ShardedRagServer::drain`] fans every
/// query out to all shards through a [`DeviceCluster`] — each shard runs
/// the same continuous-batching retrieval kernel over its slice of the
/// corpus and reports **global** chunk ids — then merges the per-shard
/// top-k into the exact global top-k with the same tie-break
/// (score descending, chunk ascending) as the single-device path, so a
/// fault-free sharded run is element-identical to [`RagServer`] on the
/// whole corpus.
///
/// Shard failures are contained, not amplified: a query dropped by one
/// shard (injected fault, TTL shed, kernel failure) still serves from
/// the remaining shards and is flagged via
/// [`QueryCompletion::is_degraded`]; it fails outright only when *every*
/// shard drops it.
///
/// # Example
///
/// ```rust
/// use std::time::Duration;
/// use apu_sim::SimConfig;
/// use rag::corpus::{CorpusSpec, EmbeddingStore};
/// use rag::{ServeConfig, ShardedRagServer};
///
/// # fn main() -> rag::Result<()> {
/// let store = EmbeddingStore::materialized(
///     CorpusSpec { corpus_bytes: 0, chunks: 4096 },
///     7,
/// );
/// let mut server = ShardedRagServer::new(
///     &store,
///     4,
///     SimConfig::default().with_l4_bytes(8 << 20),
///     ServeConfig::default(),
/// )?;
/// for i in 0..8 {
///     server.submit(Duration::from_micros(i * 50), store.query(i))?;
/// }
/// let report = server.drain()?;
/// assert_eq!(report.served(), 8);
/// assert_eq!(report.shards.len(), 4);
/// # Ok(())
/// # }
/// ```
pub struct ShardedRagServer {
    devices: Vec<ApuDevice>,
    hbms: Vec<MemorySystem>,
    shards: Vec<CorpusShard>,
    placement: Placement,
    replicas: usize,
    cfg: ServeConfig,
    pending: Vec<PendingQuery>,
    next_ticket: u64,
    traces: Option<Vec<Rc<RefCell<ChromeTraceSink>>>>,
    /// Per-`nlist` IVF indexes, one per shard slice (shared across a
    /// shard's replicas), built lazily and cached across drains.
    ivf: HashMap<usize, Vec<IvfIndex>>,
    /// The live corpus on a server built with
    /// [`ShardedRagServer::new_mutable`]; `None` keeps the static
    /// fast path byte-identical to the pre-mutation server.
    mutable: Option<MutableCorpus>,
    /// IVF indexes over mutable **base** segments, keyed by
    /// `(base epoch, nlist)`. Epochs are unique per segment generation,
    /// so a compacted base never reuses a stale index; stale entries are
    /// pruned once no live snapshot can reference them.
    mut_ivf: HashMap<(u64, usize), IvfIndex>,
}

impl ShardedRagServer {
    /// Builds a cluster of `shards × max(cfg.replicas, 1)` simulated
    /// devices, each configured from `sim`; replica `r` of shard `s`
    /// holds a copy of shard `s`'s contiguous slice of `store` on its
    /// own device + off-chip memory.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for `shards == 0` or an invalid
    /// `sim` configuration.
    pub fn new(
        store: &EmbeddingStore,
        shards: usize,
        sim: SimConfig,
        cfg: ServeConfig,
    ) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidArg(
                "a sharded server needs at least one shard".into(),
            ));
        }
        let replicas = cfg.replicas.max(1);
        let shards = store.shards(shards);
        let n_devices = shards.len() * replicas;
        let placement = Placement::new(shards.len(), replicas, n_devices)?;
        let mut devices = Vec::with_capacity(n_devices);
        let mut hbms = Vec::with_capacity(n_devices);
        for _ in 0..n_devices {
            devices.push(ApuDevice::try_new(sim.clone())?);
            hbms.push(MemorySystem::new(DramSpec::hbm2e_16gb()));
        }
        Ok(ShardedRagServer {
            devices,
            hbms,
            shards,
            placement,
            replicas,
            cfg,
            pending: Vec::new(),
            next_ticket: 0,
            traces: None,
            ivf: HashMap::new(),
            mutable: None,
            mut_ivf: HashMap::new(),
        })
    }

    /// Builds a **mutable** sharded server: the same cluster as
    /// [`ShardedRagServer::new`], plus a [`MutableCorpus`] whose base
    /// segments are `store`'s shard slices. Queries capture an immutable
    /// snapshot at admission ([`ShardedRagServer::submit_query`]) and
    /// scan exactly that snapshot — base + sealed deltas minus
    /// tombstones — through the same batched kernel path, so batching,
    /// sharding, replication, priorities, and fault containment all
    /// compose unchanged. Background compaction requested via
    /// [`ShardedRagServer::request_compaction`] runs as ordinary
    /// [`ServeConfig::compaction_priority`] work on the same queues
    /// during [`ShardedRagServer::drain`].
    ///
    /// # Errors
    ///
    /// Same as [`ShardedRagServer::new`].
    pub fn new_mutable(
        store: &EmbeddingStore,
        shards: usize,
        sim: SimConfig,
        cfg: ServeConfig,
    ) -> Result<Self> {
        let mut server = Self::new(store, shards, sim, cfg)?;
        server.mutable = Some(MutableCorpus::new(store, server.shards.len()));
        Ok(server)
    }

    /// Whether this server was built with
    /// [`ShardedRagServer::new_mutable`].
    pub fn is_mutable(&self) -> bool {
        self.mutable.is_some()
    }

    fn corpus_mut(&mut self) -> Result<&mut MutableCorpus> {
        self.mutable.as_mut().ok_or_else(|| {
            Error::InvalidArg("corpus mutation needs a server built with new_mutable".into())
        })
    }

    /// Ingests one document into the live corpus, returning its global
    /// id. Visible from the next captured snapshot — queries already
    /// admitted keep their own snapshot.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArg`] on an immutable server or an invalid
    /// embedding (wrong dimension / out-of-band values).
    pub fn insert_doc(&mut self, embedding: &[i16]) -> Result<u32> {
        self.corpus_mut()?.insert(embedding)
    }

    /// Deletes a document from the live corpus. Returns whether the
    /// document was alive. Already-admitted queries still see it: the
    /// tombstone only masks it from later snapshots.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArg`] on an immutable server.
    pub fn delete_doc(&mut self, doc: u32) -> Result<bool> {
        Ok(self.corpus_mut()?.delete(doc))
    }

    /// Replaces a document's embedding (delete + insert), returning the
    /// replacement's new id.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArg`] on an immutable server, an unknown or
    /// already-deleted `doc`, or an invalid embedding.
    pub fn update_doc(&mut self, doc: u32, embedding: &[i16]) -> Result<u32> {
        self.corpus_mut()?.update(doc, embedding)
    }

    /// Requests background compaction of one corpus shard: merge its
    /// sealed deltas and retire its tombstones into a fresh base
    /// segment. The work is captured as a plan now and submitted by the
    /// next [`ShardedRagServer::drain`] as a device task arriving at
    /// `at` with [`ServeConfig::compaction_priority`]. Returns `None`
    /// when there is nothing to compact or a compaction is already in
    /// flight for the shard.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidArg`] on an immutable server or a bad shard
    /// index.
    pub fn request_compaction(
        &mut self,
        shard: usize,
        at: Duration,
    ) -> Result<Option<CompactionTicket>> {
        self.corpus_mut()?.request_compaction(shard, at)
    }

    /// Current live-corpus counters (all zeros on an immutable server).
    pub fn corpus_stats(&self) -> CorpusStats {
        self.mutable
            .as_ref()
            .map(MutableCorpus::stats)
            .unwrap_or_default()
    }

    /// Captures the current corpus snapshot — what a query submitted
    /// right now would scan. `None` on an immutable server.
    pub fn corpus_snapshot(&mut self) -> Option<Arc<Snapshot>> {
        self.mutable.as_mut().map(MutableCorpus::snapshot)
    }

    /// Number of corpus shards (logical shard groups).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Replicas per corpus shard (1 without replication).
    pub fn replica_count(&self) -> usize {
        self.replicas
    }

    /// Total devices in the pool (`shards × replicas`).
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// The corpus shards, in shard order.
    pub fn shards(&self) -> &[CorpusShard] {
        &self.shards
    }

    /// Queries accepted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Direct access to the device of a shard's **first** replica —
    /// e.g. to reconfigure or inspect it between drains. Without
    /// replication this is simply shard `shard`'s device. Use
    /// [`ShardedRagServer::replica_device_mut`] to address a specific
    /// replica.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn device_mut(&mut self, shard: usize) -> &mut ApuDevice {
        self.replica_device_mut(shard, 0)
    }

    /// Direct access to the device holding replica `replica` of shard
    /// `shard`.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `replica` is out of range.
    pub fn replica_device_mut(&mut self, shard: usize, replica: usize) -> &mut ApuDevice {
        let device = self.placement.replicas(shard)[replica];
        &mut self.devices[device]
    }

    /// Arms fault injection on the device of a shard's **first**
    /// replica; all other devices are unaffected (failure containment
    /// is per device). Without replication this is the shard's only
    /// device.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_faults(&mut self, shard: usize, plan: FaultPlan) {
        self.inject_faults_replica(shard, 0, plan);
    }

    /// Arms fault injection on one specific replica of one shard — the
    /// kill-a-replica harness entry point.
    ///
    /// # Panics
    ///
    /// Panics if `shard` or `replica` is out of range.
    pub fn inject_faults_replica(&mut self, shard: usize, replica: usize, plan: FaultPlan) {
        self.replica_device_mut(shard, replica).inject_faults(plan);
    }

    /// Installs a Chrome trace sink on every shard's device. Idempotent;
    /// events accumulate across drains until
    /// [`ShardedRagServer::take_chrome_trace`].
    pub fn enable_tracing(&mut self) {
        if self.traces.is_some() {
            return;
        }
        let mut sinks = Vec::with_capacity(self.devices.len());
        for dev in &mut self.devices {
            let (sink, shared) = ChromeTraceSink::shared(dev.config().clock);
            dev.install_trace_sink(sink);
            sinks.push(shared);
        }
        self.traces = Some(sinks);
    }

    /// Detaches the trace sinks and renders the accumulated events as
    /// one Chrome `chrome://tracing` / Perfetto JSON document with a
    /// separate process-level track group per device ("shard 0",
    /// "shard 1", … unreplicated; "shard 0 replica 0", … with
    /// replication). Returns `None` when tracing was never enabled.
    pub fn take_chrome_trace(&mut self) -> Option<String> {
        let shared = self.traces.take()?;
        for dev in &mut self.devices {
            dev.clear_trace_sink();
        }
        let clock = self.devices[0].config().clock;
        let sinks: Vec<ChromeTraceSink> = shared
            .into_iter()
            .map(|rc| {
                Rc::try_unwrap(rc)
                    .expect("devices released their trace sinks")
                    .into_inner()
            })
            .collect();
        let names: Vec<String> = (0..sinks.len())
            .map(|d| {
                if self.replicas == 1 {
                    format!("shard {d}")
                } else {
                    let (s, r) = self
                        .placement
                        .locate(d)
                        .expect("every device holds a replica");
                    format!("shard {s} replica {r}")
                }
            })
            .collect();
        let groups: Vec<(&str, &[TraceEvent])> = names
            .iter()
            .zip(&sinks)
            .map(|(name, sink)| (name.as_str(), sink.events()))
            .collect();
        Some(chrome_trace_json_grouped(&groups, clock))
    }

    /// Accepts one query arriving at `arrival` on the virtual timeline,
    /// with the server-wide tenant/priority/TTL defaults (shorthand for
    /// [`ShardedRagServer::submit_query`] with a bare [`QuerySpec`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound (applied to queries, before the per-shard
    /// fan-out).
    pub fn submit(&mut self, arrival: Duration, query: Vec<i16>) -> Result<QueryTicket> {
        self.submit_query(QuerySpec::new(arrival, query))
    }

    /// Accepts one query with explicit per-query submission parameters
    /// (tenant tag, priority, TTL).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound (applied to queries, before the per-shard
    /// fan-out).
    pub fn submit_query(&mut self, spec: QuerySpec) -> Result<QueryTicket> {
        if self.pending.len() >= self.cfg.queue.max_pending {
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.queue.max_pending,
            });
        }
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        // On a mutable server every query pins the corpus state it was
        // admitted against; later writes and compactions cannot change
        // what it observes.
        let snapshot = self.mutable.as_mut().map(MutableCorpus::snapshot);
        self.pending.push(PendingQuery {
            ticket,
            spec,
            snapshot,
        });
        Ok(ticket)
    }

    /// Fans every pending query out to all shards — one replica per
    /// shard, picked by read load-balancing over the shard's replica
    /// set — runs the device command queues to completion, transparently
    /// fails lost reads over to surviving replicas, and merges the
    /// per-shard top-k into per-query global completions.
    ///
    /// Merge semantics per query: `started_at` is the earliest shard
    /// dispatch and `finished_at` the latest shard retire; the *critical
    /// shard* (the one retiring last) supplies the stage breakdown —
    /// every copy of the query keeps the same arrival (failover
    /// resubmissions included), so the critical shard's stages still sum
    /// exactly to the merged latency — plus `batch_size`, and `attempts`
    /// is the worst case over shards. Hits from shards that answered are
    /// merged with [`top_k`]; `shards_ok < shards_total` marks the
    /// result degraded. A query fails only when every shard dropped it,
    /// with the earliest-observed failing copy's error.
    ///
    /// Failover semantics per `(query, shard)` read: after each drain
    /// round, a read whose every copy so far failed with a
    /// *device-attributable* error ([`Error::is_transient`] — injected
    /// faults and kernel failures, **not** deadline expiry or admission
    /// shedding) is resubmitted on the least-loaded untried replica with
    /// the query's original arrival and deadline. The loop ends when no
    /// read has both a fresh failure and an untried replica, so it runs
    /// at most `replicas` rounds. Failed attempts never book latency or
    /// stage time ([`QueueStats`] books successes only).
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations; pending queries
    /// are consumed either way.
    pub fn drain(&mut self) -> Result<ServeReport> {
        let mut queries = std::mem::take(&mut self.pending);
        queries.sort_by_key(|p| (p.spec.arrival, p.ticket.0));

        // Compaction plans captured since the last drain ride this one
        // as ordinary device tasks (applied or failed after the loop).
        let plans: Vec<Arc<CompactionPlan>> = self
            .mutable
            .as_mut()
            .map(MutableCorpus::take_plans)
            .unwrap_or_default();
        let compaction_priority = self.cfg.compaction_priority;

        let k = self.cfg.k;
        let n_shards = self.shards.len();
        let n_devices = self.devices.len();
        let mut queue_cfg = self
            .cfg
            .queue
            .clone()
            .with_max_batch(self.cfg.max_batch.clamp(1, MAX_BATCH))
            .with_max_batch_wait(self.cfg.batch_window);
        if let Some(policy) = self.cfg.retry {
            queue_cfg = queue_cfg.with_retry(policy);
        }
        let hedge = self.cfg.hedge;
        let default_priority = self.cfg.priority;
        let default_ttl = self.cfg.ttl;
        let cfg_index = self.cfg.index;

        // Build (once, cached across drains) every per-shard IVF index
        // this drain needs; a shard's replicas share the index, and the
        // exact global merge is unchanged.
        for p in &queries {
            if let IndexMode::Ivf { nlist, .. } = p.spec.index.unwrap_or(cfg_index) {
                match &p.snapshot {
                    // A snapshot query indexes its own base segments;
                    // the (unique) base epoch keys the cache, so a
                    // compacted base can never serve a stale index.
                    // Deltas stay flat-scanned — they are small and
                    // short-lived by design.
                    Some(snap) => {
                        for sh in &snap.shards {
                            let base = &sh.segments[0].store;
                            if base.spec().chunks == 0 {
                                continue;
                            }
                            self.mut_ivf
                                .entry((base.epoch(), nlist))
                                .or_insert_with(|| IvfIndex::build(base, nlist));
                        }
                    }
                    None => {
                        if !self.ivf.contains_key(&nlist) {
                            let built = self
                                .shards
                                .iter()
                                .map(|sh| IvfIndex::build(&sh.store, nlist))
                                .collect();
                            self.ivf.insert(nlist, built);
                        }
                    }
                }
            }
        }
        // Drop cached indexes whose base epoch no live query references
        // and the corpus no longer holds — compaction retired them.
        if let Some(corpus) = &self.mutable {
            let live: std::collections::HashSet<u64> = corpus
                .base_epochs()
                .into_iter()
                .chain(
                    queries
                        .iter()
                        .filter_map(|p| p.snapshot.as_ref())
                        .flat_map(|snap| snap.shards.iter().map(|sh| sh.segments[0].store.epoch())),
                )
                .collect();
            self.mut_ivf.retain(|(epoch, _), _| live.contains(epoch));
        }
        let ivf_indexes = &self.ivf;
        let mut_ivf = &self.mut_ivf;
        let ivf_cell = RefCell::new(IvfStats::default());

        // Per-query submission parameters, in (arrival, ticket) order —
        // kept for the whole drain so failover rounds can rebuild a
        // query's shard task from its original parameters.
        struct QInfo {
            ticket: u64,
            arrival: Duration,
            tenant: TenantId,
            priority: Priority,
            ttl: Option<Duration>,
            index: IndexMode,
            query: Vec<i16>,
            snapshot: Option<Arc<Snapshot>>,
        }
        let infos: Vec<QInfo> = queries
            .into_iter()
            .map(|p| QInfo {
                ticket: p.ticket.0,
                arrival: p.spec.arrival,
                tenant: p.spec.tenant,
                priority: p.spec.priority.unwrap_or(default_priority),
                ttl: p.spec.ttl.or(default_ttl),
                index: p.spec.index.unwrap_or(cfg_index),
                query: p.spec.query,
                snapshot: p.snapshot,
            })
            .collect();
        let index_of: HashMap<u64, usize> = infos
            .iter()
            .enumerate()
            .map(|(i, q)| (q.ticket, i))
            .collect();

        // Borrow order matters: the per-shard closures capture these
        // cells, so they must outlive the cluster that owns the closures.
        let hbm_cells: Vec<RefCell<&mut MemorySystem>> =
            self.hbms.iter_mut().map(RefCell::new).collect();
        let shards = &self.shards;
        let mut cluster = DeviceCluster::new(
            self.devices.iter_mut().collect(),
            queue_cfg,
            // Scatter-gather pins every submission to its device; the
            // router is not consulted.
            RoutePolicy::RoundRobin,
        )?;
        cluster.set_placement(self.placement.clone())?;

        // Builds the shard-`s` copy of a query, pinned to `device`
        // (some replica of `s`). Every copy — primary, hedge, failover —
        // carries the primary's deadline: redundancy races the SLO, it
        // never extends it.
        let make_task = |info: &QInfo, s: usize, device: usize, at: Duration, prio: Priority| {
            let hbm = &hbm_cells[device];
            let shard = &shards[s];
            let run: apu_sim::queue::BatchRunner<'_> = if let Some(snap_ref) = &info.snapshot {
                // Snapshot path: scan the pinned shard view — base +
                // sealed deltas minus tombstones — through the same
                // batched kernel. The base may run through a per-epoch
                // IVF index; deltas always scan flat.
                let ivf_sel: Option<(&IvfIndex, usize)> = match info.index {
                    IndexMode::Flat => None,
                    IndexMode::Ivf { nlist, nprobe } => {
                        let base = &snap_ref.shards[s].segments[0].store;
                        if base.spec().chunks == 0 {
                            None
                        } else {
                            Some((&mut_ivf[&(base.epoch(), nlist)], nprobe))
                        }
                    }
                };
                let snap = Arc::clone(snap_ref);
                let stats = &ivf_cell;
                Box::new(move |dev: &mut ApuDevice, payloads| {
                    let mut hbm = hbm.borrow_mut();
                    let (report, outputs, ds) = run_boxed_snapshot_batch(
                        dev,
                        &mut hbm,
                        &snap.shards[s],
                        ivf_sel,
                        payloads,
                        k,
                    )?;
                    stats.borrow_mut().absorb(&ds);
                    Ok((report, outputs))
                })
            } else {
                match info.index {
                    IndexMode::Flat => Box::new(move |dev: &mut ApuDevice, payloads| {
                        let mut hbm = hbm.borrow_mut();
                        run_boxed_batch_at(dev, &mut hbm, &shard.store, payloads, k, shard.base)
                    }),
                    IndexMode::Ivf { nlist, nprobe } => {
                        let index = &ivf_indexes[&nlist][s];
                        let stats = &ivf_cell;
                        Box::new(move |dev: &mut ApuDevice, payloads| {
                            let mut hbm = hbm.borrow_mut();
                            let (report, outputs, ds) = run_boxed_ivf_batch_at(
                                dev, &mut hbm, index, payloads, k, nprobe, shard.base,
                            )?;
                            stats.borrow_mut().absorb(&ds);
                            Ok((report, outputs))
                        })
                    }
                }
            };
            // Snapshot queries batch by (shard, snapshot id, k, mode):
            // same-snapshot queries coalesce, cross-snapshot never do.
            let key = match &info.snapshot {
                Some(snap) => snapshot_batch_key(s, snap.id, k, info.index),
                None => retrieval_batch_key_for(&shard.store, k, info.index),
            };
            let mut task = TaskSpec::batch(key, Box::new(info.query.clone()), run)
                .priority(prio)
                .at(at)
                .tenant(info.tenant)
                .on_shard(device);
            if let Some(ttl) = info.ttl {
                task = task.deadline_at(info.arrival + ttl);
            }
            task
        };

        // One slot per (query ticket, logical shard): the replicas tried
        // so far and every retired copy (device, is_hedge, round).
        struct SlotState {
            tried: Vec<usize>,
            copies: Vec<(usize, bool, u32, Completion)>,
        }
        let mut slots: HashMap<(u64, usize), SlotState> = HashMap::new();
        // Value: (ticket, shard, is_hedge_copy, failover_round).
        let mut tickets: HashMap<(usize, TaskHandle), (u64, usize, bool, u32)> = HashMap::new();

        // Background compaction rides the same queues as ordinary
        // (default: low-priority) device work, one task per captured
        // plan, pinned to a replica of its shard. Each plan's unique
        // batch key means it never coalesces with queries — and gives
        // fault injection a precise target. Plans are submitted
        // interleaved with the queries in arrival order, so a plan's
        // FIFO position among equal-priority work reflects `plan.at`:
        // an interactive-priority merge competes head-to-head with the
        // queries behind it, while a low-priority merge yields to every
        // arrived query. The queue's retry policy applies unchanged; a
        // plan that cannot even be admitted fails immediately (the
        // corpus stays untouched and re-requestable).
        let mut compaction_tickets: HashMap<(usize, TaskHandle), usize> = HashMap::new();
        let mut comp_results: Vec<(usize, Option<Completion>)> = Vec::new();
        let mut plan_order: Vec<usize> = (0..plans.len()).collect();
        plan_order.sort_by_key(|&pi| (plans[pi].at, plans[pi].seq));
        let comp_specs: Vec<(usize, Duration, TaskSpec<'_>)> = plan_order
            .into_iter()
            .map(|pi| {
                let plan = &plans[pi];
                let device = cluster
                    .route_replica(plan.shard, &[])
                    .expect("every shard has at least one replica");
                let hbm = &hbm_cells[device];
                let task_plan = Arc::clone(plan);
                let run: apu_sim::queue::BatchRunner<'_> =
                    Box::new(move |dev: &mut ApuDevice, _payloads| {
                        let mut hbm = hbm.borrow_mut();
                        run_compaction_task(dev, &mut hbm, &task_plan)
                    });
                let spec = TaskSpec::batch(plan.key, Box::new(()), run)
                    .priority(compaction_priority)
                    .at(plan.at)
                    .on_shard(device);
                (pi, plan.at, spec)
            })
            .collect();
        let mut comp_queue = comp_specs.into_iter().peekable();

        for info in &infos {
            while comp_queue
                .peek()
                .is_some_and(|(_, at, _)| *at <= info.arrival)
            {
                let (pi, _, spec) = comp_queue.next().expect("peeked non-empty");
                match cluster.submit(spec) {
                    Ok(h) => {
                        compaction_tickets.insert((h.shard(), h.task()), pi);
                    }
                    Err(_) => comp_results.push((pi, None)),
                }
            }
            for s in 0..n_shards {
                let primary = cluster
                    .route_replica(s, &[])
                    .expect("every shard has at least one replica");
                let handle =
                    cluster.submit(make_task(info, s, primary, info.arrival, info.priority))?;
                tickets.insert((handle.shard(), handle.task()), (info.ticket, s, false, 0));
                let mut tried = vec![primary];
                if let Some(delay) = hedge {
                    // The hedge goes to a different replica when one
                    // exists (same device otherwise — the single-replica
                    // behavior).
                    let hd = cluster.route_replica(s, &tried).unwrap_or(primary);
                    let h = cluster.submit(make_task(
                        info,
                        s,
                        hd,
                        info.arrival + delay,
                        Priority::High,
                    ))?;
                    tickets.insert((h.shard(), h.task()), (info.ticket, s, true, 0));
                    if hd != primary {
                        tried.push(hd);
                    }
                }
                slots.insert(
                    (info.ticket, s),
                    SlotState {
                        tried,
                        copies: Vec::new(),
                    },
                );
            }
        }

        // Plans arriving after the last query still ride this drain.
        for (pi, _, spec) in comp_queue {
            match cluster.submit(spec) {
                Ok(h) => {
                    compaction_tickets.insert((h.shard(), h.task()), pi);
                }
                Err(_) => comp_results.push((pi, None)),
            }
        }

        // Drain-and-failover loop: each round drains every device, feeds
        // health tracking, then resubmits fully-failed reads on untried
        // replicas. Bounded: each failover consumes an untried replica.
        let mut failover_submissions: u64 = 0;
        let mut round: u32 = 0;
        loop {
            let cluster_report = cluster.drain()?;
            let mut touched: Vec<(u64, usize)> = Vec::new();
            for drained in cluster_report.shards {
                let device = drained.shard;
                for done in drained.completions {
                    // Compaction completions are background work: they
                    // feed the corpus, not the query merge (and not
                    // replica health — a failed merge says nothing a
                    // query read would act on).
                    if let Some(pi) = compaction_tickets.remove(&(device, done.handle)) {
                        comp_results.push((pi, Some(done)));
                        continue;
                    }
                    let (ticket, s, is_hedge, rnd) = tickets
                        .remove(&(device, done.handle))
                        .expect("every completion maps to a submitted copy");
                    // Health hears device-attributable outcomes only:
                    // deadline expiry and admission shedding say nothing
                    // about the replica.
                    if done.is_ok() {
                        cluster.record_outcome(device, true, done.finished_at);
                    } else if done.error().is_some_and(Error::is_transient) {
                        cluster.record_outcome(device, false, done.finished_at);
                    }
                    touched.push((ticket, s));
                    slots
                        .get_mut(&(ticket, s))
                        .expect("every copy belongs to a slot")
                        .copies
                        .push((device, is_hedge, rnd, done));
                }
            }
            touched.sort_unstable();
            touched.dedup();
            let mut resubmitted = false;
            for (ticket, s) in touched {
                let slot = slots.get_mut(&(ticket, s)).expect("touched slots exist");
                if slot.copies.iter().any(|(_, _, _, c)| c.is_ok()) {
                    continue;
                }
                // Fail over only pure device failures: an expired
                // deadline or a shed copy means the SLO lapsed, and
                // another replica cannot un-lapse it.
                if !slot
                    .copies
                    .iter()
                    .all(|(_, _, _, c)| c.error().is_some_and(Error::is_transient))
                {
                    continue;
                }
                let Some(next) = cluster.route_replica(s, &slot.tried) else {
                    continue; // replica set exhausted: the slot stays failed
                };
                let info = &infos[index_of[&ticket]];
                let (from, observed) = slot
                    .copies
                    .iter()
                    .map(|(d, _, _, c)| (*d, c.finished_at))
                    .max_by_key(|&(_, at)| at)
                    .expect("a failed slot has at least one copy");
                let spec = make_task(info, s, next, info.arrival, info.priority);
                let h = cluster.submit_failover(spec, from, observed)?;
                tickets.insert((h.shard(), h.task()), (ticket, s, false, round + 1));
                slot.tried.push(next);
                failover_submissions += 1;
                resubmitted = true;
            }
            if !resubmitted {
                break;
            }
            round += 1;
        }

        // Install (or abandon) compactions strictly in request order:
        // an applied plan swaps the shard's base for the merged segment
        // and retires the captured tombstones; a failed one leaves the
        // corpus untouched and re-requestable. Queries are unaffected
        // either way — every admitted query pinned its snapshot.
        if let Some(corpus) = self.mutable.as_mut() {
            comp_results.sort_by_key(|(pi, _)| plans[*pi].seq);
            for (pi, done) in comp_results {
                let plan = &plans[pi];
                match done.map(Completion::into_output::<Segment>) {
                    Some(Ok(merged)) => corpus.apply_compaction(plan, merged),
                    Some(Err(_)) | None => corpus.fail_compaction(plan),
                }
            }
        }
        // Queue counters are cumulative across drain rounds, so one
        // final per-device snapshot is the running total.
        let shard_stats: Vec<QueueStats> =
            (0..n_devices).map(|d| cluster.stats(d).clone()).collect();

        let mut queue = QueueStats::default();
        for st in &shard_stats {
            queue.merge(st);
        }

        // Merge each query's slot winners into one global completion.
        let mut completions = Vec::with_capacity(infos.len());
        let mut failover_served = 0u64;
        for info in &infos {
            // Winner per shard slot: the first successful copy (the
            // answer a client would act on), falling back to the
            // earliest-observed failure when every copy failed.
            // (is_hedge, failover_round, winner).
            let mut parts: Vec<(bool, u32, Completion)> = Vec::with_capacity(n_shards);
            let mut failovers = 0u32;
            for s in 0..n_shards {
                let slot = slots
                    .remove(&(info.ticket, s))
                    .expect("every slot was populated at submission");
                failovers += slot.copies.iter().filter(|(_, _, r, _)| *r > 0).count() as u32;
                let mut copies = slot.copies;
                copies.sort_by_key(|(d, h, r, c)| (!c.is_ok(), c.finished_at, *h, *r, *d));
                let (_, h, r, c) = copies
                    .into_iter()
                    .next()
                    .expect("every slot retires at least one copy");
                parts.push((h, r, c));
            }
            let hedged = parts.iter().any(|(h, _, c)| *h && c.is_ok());
            if parts.iter().any(|(_, r, c)| *r > 0 && c.is_ok()) {
                failover_served += 1;
            }
            let started_at = parts
                .iter()
                .map(|(_, _, c)| c.started_at)
                .min()
                .unwrap_or_default();
            let finished_at = parts
                .iter()
                .map(|(_, _, c)| c.finished_at)
                .max()
                .unwrap_or_default();
            let attempts = parts.iter().map(|(_, _, c)| c.attempts).max().unwrap_or(1);
            let tenant = parts.first().map(|(_, _, c)| c.tenant).unwrap_or_default();
            let critical = parts
                .iter()
                .map(|(_, _, c)| c)
                .max_by_key(|c| c.finished_at)
                .expect("a query fans out to at least one shard");
            let stages = critical.stage_breakdown();
            let batch_size = critical.batch_size;
            let shards_total = parts.len();
            let mut hits = Vec::new();
            let mut shards_ok = 0;
            let mut first_err = None;
            for (_, _, done) in parts {
                match done.into_output::<Vec<Hit>>() {
                    Ok(shard_hits) => {
                        shards_ok += 1;
                        hits.extend(shard_hits);
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            let outcome = match first_err {
                Some(e) if shards_ok == 0 => Err(e),
                _ => Ok(top_k(hits, k)),
            };
            completions.push(QueryCompletion {
                ticket: QueryTicket(info.ticket),
                tenant,
                arrival: info.arrival,
                started_at,
                finished_at,
                batch_size,
                attempts,
                stages,
                shards_ok,
                shards_total,
                hedged,
                failovers,
                outcome,
            });
        }
        completions.sort_by_key(|c| (c.finished_at, c.ticket.0));
        let replica = ReplicaStats {
            groups: n_shards,
            per_shard: self.replicas,
            failovers: failover_submissions,
            down: cluster.health().down_transitions(),
            failover_served,
        };
        let ivf = *ivf_cell.borrow();
        let corpus = self
            .mutable
            .as_ref()
            .map(MutableCorpus::stats)
            .unwrap_or_default();
        Ok(ServeReport {
            completions,
            queue,
            shards: shard_stats,
            replica,
            ivf,
            corpus,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::retrieve_batch;
    use crate::corpus::CorpusSpec;
    use crate::mutable::flat_scan;
    use apu_sim::SimConfig;
    use hbm_sim::DramSpec;

    fn setup(chunks: usize) -> (ApuDevice, MemorySystem, EmbeddingStore) {
        (
            ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20)),
            MemorySystem::new(DramSpec::hbm2e_16gb()),
            EmbeddingStore::materialized(
                CorpusSpec {
                    corpus_bytes: 0,
                    chunks,
                },
                77,
            ),
        )
    }

    #[test]
    fn queue_path_matches_synchronous_batch_path() {
        let (mut dev, mut hbm, store) = setup(20_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();

        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        // Synchronous reference on a fresh device: same batch, same kernel.
        let (mut dev2, mut hbm2, _) = setup(1);
        let sync = retrieve_batch(&mut dev2, &mut hbm2, &store, &queries, 5).unwrap();
        assert_eq!(report.completions.len(), 4);
        for done in &report.completions {
            assert_eq!(
                done.hits().expect("served"),
                sync.hits[done.ticket.id() as usize],
                "query {}",
                done.ticket.id()
            );
            assert_eq!(done.batch_size, 4);
        }
        assert_eq!(report.queue.dispatches, 1);
        assert_eq!(report.queue.dispatched_tasks, 4);
        assert_eq!(report.queue.max_batch_size, 4);
        assert!(report.throughput_qps() > 0.0);
    }

    #[test]
    fn stage_breakdown_sums_to_latency_and_exports() {
        let (mut dev, mut hbm, store) = setup(4096);
        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for i in 0..3 {
                server
                    .submit(Duration::from_micros(i * 5), store.query(i))
                    .unwrap();
            }
            server.drain().unwrap()
        };
        for done in &report.completions {
            assert_eq!(
                done.stages.total(),
                done.latency(),
                "ticket {}",
                done.ticket.id()
            );
            assert!(done.stages.device > Duration::ZERO);
        }
        let totals = report.stage_totals();
        assert_eq!(totals.total(), report.queue.total_latency);
        let text = report.prometheus_text();
        assert!(text.contains("apu_queue_stage_seconds_total{stage=\"device\"}"));
        assert!(text.contains("apu_queue_submitted_total 3"));
    }

    #[test]
    fn batch_window_splits_distant_arrivals() {
        let (mut dev, mut hbm, store) = setup(4096);
        let cfg = ServeConfig {
            batch_window: Duration::from_millis(1),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server
            .submit(Duration::from_micros(100), store.query(1))
            .unwrap();
        // Outside the window of the first batch: forms its own.
        server
            .submit(Duration::from_millis(50), store.query(2))
            .unwrap();
        let report = server.drain().unwrap();
        let sizes: Vec<usize> = report.completions.iter().map(|c| c.batch_size).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
        // Early arrival is charged the wait for its batch mate.
        let first = report
            .completions
            .iter()
            .find(|c| c.ticket.id() == 0)
            .unwrap();
        assert!(first.latency() >= Duration::from_micros(100));
    }

    #[test]
    fn vr_limit_caps_batch_size() {
        let (mut dev, mut hbm, store) = setup(4096);
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for i in 0..(MAX_BATCH + 3) {
            server
                .submit(Duration::ZERO, store.query(i as u64))
                .unwrap();
        }
        let report = server.drain().unwrap();
        assert_eq!(report.completions.len(), MAX_BATCH + 3);
        let max_seen = report
            .completions
            .iter()
            .map(|c| c.batch_size)
            .max()
            .unwrap();
        assert_eq!(max_seen, MAX_BATCH);
        assert_eq!(report.queue.dispatches, 2);
    }

    #[test]
    fn sharded_serving_matches_the_single_device_top_k() {
        let (mut dev, mut hbm, store) = setup(12_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();

        let single = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let mut sharded = ShardedRagServer::new(&store, 3, sim, ServeConfig::default()).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        for q in &queries {
            sharded.submit(Duration::ZERO, q.clone()).unwrap();
        }
        let report = sharded.drain().unwrap();

        assert_eq!(report.completions.len(), 4);
        assert_eq!(report.degraded(), 0);
        let single_hits: HashMap<u64, &[Hit]> = single
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.hits().expect("served")))
            .collect();
        for done in &report.completions {
            assert_eq!((done.shards_ok, done.shards_total), (3, 3));
            assert!(!done.is_degraded());
            assert_eq!(
                done.hits().expect("served"),
                single_hits[&done.ticket.id()],
                "query {}",
                done.ticket.id()
            );
            assert_eq!(done.stages.total(), done.latency());
        }
        // Cluster counters count shard-tasks: 4 queries × 3 shards.
        assert_eq!(report.queue.submitted, 12);
        assert_eq!(report.shards.len(), 3);
        assert!(report.shards.iter().all(|s| s.submitted == 4));
    }

    #[test]
    fn percentile_of_an_empty_or_all_failed_report_is_zero() {
        // Empty report: no queries at all.
        let empty = ServeReport {
            completions: Vec::new(),
            queue: QueueStats::default(),
            shards: Vec::new(),
            replica: ReplicaStats::default(),
            ivf: IvfStats::default(),
            corpus: CorpusStats::default(),
        };
        assert_eq!(empty.latency_percentile(0.5), Duration::ZERO);
        assert_eq!(empty.latency_percentile(0.99), Duration::ZERO);

        // All-failed report: every dispatch faults, and no retries.
        let (mut dev, mut hbm, store) = setup(4096);
        dev.inject_faults(FaultPlan::new(3).fail_every_kth_task(1));
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for i in 0..3 {
            server
                .submit(Duration::from_micros(i * 10), store.query(i))
                .unwrap();
        }
        let report = server.drain().unwrap();
        assert_eq!(report.served(), 0);
        assert_eq!(report.failed(), 3);
        assert_eq!(report.latency_percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn a_faulted_shard_degrades_queries_instead_of_failing_them() {
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 6_000,
            },
            77,
        );
        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let mut sharded = ShardedRagServer::new(&store, 3, sim, ServeConfig::default()).unwrap();
        // Shard 1 fails every dispatch; no retries configured.
        sharded.inject_faults(1, apu_sim::FaultPlan::new(7).fail_every_kth_task(1));
        for i in 0..4 {
            sharded.submit(Duration::ZERO, store.query(i)).unwrap();
        }
        let report = sharded.drain().unwrap();
        assert_eq!(report.served(), 4);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.degraded(), 4);
        let healthy: Vec<_> = sharded
            .shards()
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != 1)
            .flat_map(|(_, sh)| sh.range())
            .collect();
        for done in &report.completions {
            assert_eq!((done.shards_ok, done.shards_total), (2, 3));
            assert!(done.is_degraded());
            // Hits come only from the healthy shards' chunk ranges.
            for h in done.hits().unwrap() {
                assert!(healthy.contains(&h.chunk), "chunk {}", h.chunk);
            }
        }
        assert_eq!(report.shards[1].failed, 4);
        assert_eq!(report.shards[0].failed + report.shards[2].failed, 0);
    }

    #[test]
    fn a_killed_replica_fails_over_to_an_exact_result() {
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 6_000,
            },
            77,
        );
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();
        let single = {
            let (mut dev, mut hbm, _) = setup(1);
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let cfg = ServeConfig {
            replicas: 2,
            ..ServeConfig::default()
        };
        let mut sharded = ShardedRagServer::new(&store, 2, sim, cfg).unwrap();
        assert_eq!(sharded.shard_count(), 2);
        assert_eq!(sharded.replica_count(), 2);
        assert_eq!(sharded.device_count(), 4);
        // Kill one replica of shard 0 outright; no retries configured.
        sharded.inject_faults_replica(0, 0, FaultPlan::new(7).fail_every_kth_task(1));
        for q in &queries {
            sharded.submit(Duration::ZERO, q.clone()).unwrap();
        }
        let report = sharded.drain().unwrap();

        assert_eq!(report.served(), 4);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.degraded(), 0, "a surviving replica means no loss");
        let single_hits: HashMap<u64, &[Hit]> = single
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.hits().expect("served")))
            .collect();
        for done in &report.completions {
            assert_eq!((done.shards_ok, done.shards_total), (2, 2));
            assert_eq!(
                done.hits().expect("served"),
                single_hits[&done.ticket.id()],
                "query {}",
                done.ticket.id()
            );
            assert_eq!(done.stages.total(), done.latency());
        }
        // Read load-balancing routed some primaries to the dead replica;
        // those reads failed over and the health tracker downed it.
        assert!(report.replica.failovers >= 1);
        assert_eq!(report.replica.down, 1);
        assert!(report.replica.failover_served >= 1);
        assert_eq!(report.replica.groups, 2);
        assert_eq!(report.replica.per_shard, 2);
        assert!(report.completions.iter().any(|c| c.failovers > 0));
        // Per-device stats: 4 devices, and the dead one booked failures.
        assert_eq!(report.shards.len(), 4);
        assert!(report.shards[0].failed >= 1);
        let text = report.prometheus_text();
        assert!(text.contains("apu_replica_per_shard 2"));
        assert!(text.contains(&format!(
            "apu_replica_failovers_total {}",
            report.replica.failovers
        )));
    }

    #[test]
    fn a_whole_replica_set_down_degrades_not_fails() {
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 6_000,
            },
            77,
        );
        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let cfg = ServeConfig {
            replicas: 2,
            ..ServeConfig::default()
        };
        let mut sharded = ShardedRagServer::new(&store, 2, sim, cfg).unwrap();
        // Kill BOTH replicas of shard 1: failover has nowhere to go.
        for r in 0..2 {
            sharded.inject_faults_replica(1, r, FaultPlan::new(7).fail_every_kth_task(1));
        }
        for i in 0..3 {
            sharded.submit(Duration::ZERO, store.query(i)).unwrap();
        }
        let report = sharded.drain().unwrap();
        assert_eq!(report.served(), 3);
        assert_eq!(report.degraded(), 3, "shard 1 is gone entirely");
        let shard0: Vec<_> = sharded.shards()[0].range().collect();
        for done in &report.completions {
            assert_eq!((done.shards_ok, done.shards_total), (1, 2));
            assert!(done.failovers >= 1, "the second replica was tried");
            for h in done.hits().unwrap() {
                assert!(shard0.contains(&h.chunk), "chunk {}", h.chunk);
            }
        }
        assert_eq!(report.replica.down, 2);
        assert_eq!(report.replica.failover_served, 0);
    }

    #[test]
    fn ivf_serving_reports_probe_metrics_and_exact_scores() {
        let (mut dev, mut hbm, store) = setup(8_192);
        let cfg = ServeConfig {
            k: 10,
            index: IndexMode::Ivf {
                nlist: 8,
                nprobe: 2,
            },
            ..ServeConfig::default()
        };
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();
        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };
        assert_eq!(report.served(), 4);
        assert!(report.ivf.searches >= 1);
        assert_eq!(report.ivf.queries, 4);
        assert!(report.ivf.probes <= 4 * 2);
        // Pruned: fewer candidates than 4 full scans.
        assert!(report.ivf.candidates < 4 * 8_192);
        for done in &report.completions {
            let q = &queries[done.ticket.id() as usize];
            for h in done.hits().unwrap() {
                assert_eq!(
                    h.score,
                    crate::cpu::dot(store.embedding(h.chunk as usize), q),
                    "IVF rescore must be exact"
                );
            }
        }
        let text = report.prometheus_text();
        assert!(text.contains(&format!("apu_ivf_searches_total {}", report.ivf.searches)));
        assert!(text.contains("apu_ivf_candidates_total"));
    }

    #[test]
    fn sharded_ivf_full_probe_matches_flat_serving() {
        let (mut dev, mut hbm, store) = setup(6_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();
        let flat = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let cfg = ServeConfig {
            index: IndexMode::Ivf {
                nlist: 6,
                nprobe: 6,
            },
            ..ServeConfig::default()
        };
        let mut sharded = ShardedRagServer::new(&store, 3, sim, cfg).unwrap();
        for q in &queries {
            sharded.submit(Duration::ZERO, q.clone()).unwrap();
        }
        let report = sharded.drain().unwrap();
        assert_eq!(report.served(), 4);
        let flat_hits: HashMap<u64, &[Hit]> = flat
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.hits().expect("served")))
            .collect();
        for done in &report.completions {
            assert_eq!(
                done.hits().expect("served"),
                flat_hits[&done.ticket.id()],
                "nprobe == nlist must be element-identical to flat"
            );
        }
        assert!(report.ivf.searches >= 3, "one IVF dispatch per shard");
    }

    #[test]
    fn per_query_index_override_never_batches_with_flat() {
        let (mut dev, mut hbm, store) = setup(4_096);
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server
            .submit_query(
                QuerySpec::new(Duration::ZERO, store.query(1)).index(IndexMode::ivf_default()),
            )
            .unwrap();
        let report = server.drain().unwrap();
        assert_eq!(report.served(), 2);
        // Different index modes may not coalesce into one dispatch.
        assert_eq!(report.queue.dispatches, 2);
        assert!(report.completions.iter().all(|c| c.batch_size == 1));
        assert_eq!(report.ivf.queries, 1);
    }

    #[test]
    fn admission_control_rejects_backlog() {
        let (mut dev, mut hbm, store) = setup(4096);
        let cfg = ServeConfig {
            queue: QueueConfig::default().with_max_pending(2),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server.submit(Duration::ZERO, store.query(1)).unwrap();
        assert!(matches!(
            server.submit(Duration::ZERO, store.query(2)),
            Err(Error::QueueFull { .. })
        ));
        // Draining clears the backlog.
        server.drain().unwrap();
        assert!(server.submit(Duration::ZERO, store.query(2)).is_ok());
    }

    #[test]
    fn mutable_server_without_writes_matches_the_static_server() {
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 6_000,
            },
            21,
        );
        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let queries: Vec<Vec<i16>> = (0..6).map(|i| store.query(i)).collect();
        let run = |mutable: bool| {
            let mut server = if mutable {
                ShardedRagServer::new_mutable(&store, 3, sim.clone(), ServeConfig::default())
                    .unwrap()
            } else {
                ShardedRagServer::new(&store, 3, sim.clone(), ServeConfig::default()).unwrap()
            };
            for (i, q) in queries.iter().enumerate() {
                server
                    .submit(Duration::from_micros(i as u64 * 40), q.clone())
                    .unwrap();
            }
            server.drain().unwrap()
        };
        let fixed = run(false);
        let live = run(true);
        assert_eq!(live.served(), fixed.served());
        let fixed_hits: HashMap<u64, &[Hit]> = fixed
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.hits().expect("served")))
            .collect();
        for done in &live.completions {
            assert_eq!(
                done.hits().expect("served"),
                fixed_hits[&done.ticket.id()],
                "a mutable server with zero writes must answer like the static one"
            );
        }
        // All six queries share snapshot 1; the static server reports
        // all-zero corpus counters, the mutable one exports the series.
        assert_eq!(fixed.corpus, CorpusStats::default());
        assert_eq!(live.corpus.snapshots, 1);
        assert_eq!(live.corpus.live_docs, 6_000);
        assert!(live.prometheus_text().contains("apu_corpus_live_docs 6000"));
    }

    #[test]
    fn writes_compaction_and_snapshot_isolation_compose_on_the_server() {
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 600,
            },
            9,
        );
        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let mut server =
            ShardedRagServer::new_mutable(&store, 2, sim, ServeConfig::default()).unwrap();
        let k = ServeConfig::default().k;

        // q0 pins the pristine corpus.
        let snap0 = server.corpus_snapshot().unwrap();
        let q0 = server.submit(Duration::ZERO, store.query(0)).unwrap();

        // Writes after q0's admission: one ingest, one delete.
        let new_doc = server.insert_doc(&store.query(41)).unwrap();
        assert_eq!(new_doc, 600);
        assert!(server.delete_doc(3).unwrap());

        // q1 pins the mutated corpus.
        let snap1 = server.corpus_snapshot().unwrap();
        let q1 = server
            .submit(Duration::from_micros(30), store.query(0))
            .unwrap();
        assert!(snap1.id > snap0.id);

        // Compact both shards in the background during the same drain.
        let t0 = server
            .request_compaction(new_doc as usize % 2, Duration::from_micros(5))
            .unwrap();
        assert!(t0.is_some(), "the insert left a delta to merge");

        let report = server.drain().unwrap();
        assert_eq!(report.served(), 2);
        for done in &report.completions {
            let (snap, label) = if done.ticket == q0 {
                (&snap0, "pre-write snapshot")
            } else {
                assert_eq!(done.ticket, q1);
                (&snap1, "post-write snapshot")
            };
            assert_eq!(
                done.hits().expect("served"),
                flat_scan(snap, &store.query(0), k),
                "{label} must serve exactly what it pinned"
            );
        }
        // q1 saw the write set; q0 did not.
        let hits1 = flat_scan(&snap1, &store.query(41), k);
        assert!(hits1.iter().any(|h| h.chunk == new_doc));
        assert!(flat_scan(&snap1, &store.query(0), k)
            .iter()
            .all(|h| h.chunk != 3));

        // The compaction applied, and the next query serves the merged
        // base with unchanged results.
        assert_eq!(report.corpus.compactions, 1);
        assert_eq!(report.corpus.compaction_failures, 0);
        let snap2 = server.corpus_snapshot().unwrap();
        assert_eq!(snap2.live_docs(), 600);
        let q2 = server
            .submit(Duration::from_micros(400), store.query(41))
            .unwrap();
        let report2 = server.drain().unwrap();
        let done = &report2.completions[0];
        assert_eq!(done.ticket, q2);
        assert_eq!(
            done.hits().expect("served"),
            flat_scan(&snap2, &store.query(41), k)
        );
        assert!(done.hits().unwrap().iter().any(|h| h.chunk == new_doc));
    }
}
