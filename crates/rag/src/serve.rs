//! RAG serving: an online query front-end over the device command queue.
//!
//! [`RagServer`] accepts retrieval queries with arrival timestamps (an
//! open-loop stream) and submits each one **individually** through an
//! [`apu_sim::DeviceQueue`] as a batchable task keyed by
//! [`crate::batch::retrieval_batch_key`]. Batch formation happens in the
//! queue's continuous-batching dispatcher: at every dispatch opportunity
//! the scheduler coalesces up to [`ServeConfig::max_batch`] compatible
//! queries (VR-limited to [`MAX_BATCH`]) whose arrivals fall within
//! [`ServeConfig::batch_window`] of the head of the line, and runs them
//! as one [`crate::batch::retrieve_batch`] kernel. The queue path returns
//! *exactly* the hits the synchronous path returns; what the queue adds
//! is realistic dispatch: queueing delay, priority, admission control,
//! batch coalescing, and per-query latency accounting on the virtual
//! timeline.
//!
//! [`ShardedRagServer`] scales the same front-end across a
//! [`DeviceCluster`]: the corpus is split into contiguous shards
//! ([`EmbeddingStore::shards`]), each shard gets its own simulated
//! device + off-chip memory + command queue, every query fans out to all
//! shards, and the per-shard top-k results are merged into the exact
//! global top-k (shard kernels report global chunk ids, so the merge is
//! a plain [`top_k`] over the concatenation). A faulted or shedding
//! shard *degrades* the queries it drops — they still serve from the
//! healthy shards, flagged via [`QueryCompletion::is_degraded`] —
//! instead of failing them.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use apu_sim::queue::percentile;
use apu_sim::trace::prometheus_text;
use apu_sim::{
    chrome_trace_json_grouped, ApuDevice, ChromeTraceSink, Completion, DeviceCluster, DeviceQueue,
    Error, FaultPlan, Priority, QueueConfig, QueueStats, RetryPolicy, RoutePolicy, SimConfig,
    StageBreakdown, TaskHandle, TaskSpec, TenantId, TraceEvent,
};
use hbm_sim::{DramSpec, MemorySystem};

use crate::batch::{retrieval_batch_key, run_boxed_batch, run_boxed_batch_at, MAX_BATCH};
use crate::corpus::{CorpusShard, EmbeddingStore};
use crate::cpu::top_k;
use crate::{Hit, Result};

/// Configuration of a [`RagServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retrieved chunks per query.
    pub k: usize,
    /// Largest batch to form (clamped to the VR-limited [`MAX_BATCH`]).
    pub max_batch: usize,
    /// A batch closes when the next query arrives later than this after
    /// the batch's first query (bounds batching-induced latency).
    pub batch_window: Duration,
    /// Command-queue configuration (admission control bound).
    pub queue: QueueConfig,
    /// Priority retrieval batches are submitted at.
    pub priority: Priority,
    /// Per-query time-to-live: a query that cannot start within `ttl`
    /// of its arrival is shed as `DeadlineExceeded` without dispatching
    /// (graceful degradation under overload). `None` disables shedding.
    /// A per-query TTL ([`QuerySpec::ttl`]) overrides this default.
    pub ttl: Option<Duration>,
    /// Bounded retry-with-backoff for transiently faulted queries.
    /// `None` disables retries.
    pub retry: Option<RetryPolicy>,
    /// Tail-latency hedging on a [`ShardedRagServer`]: when set, every
    /// shard fan-out task gets a speculative **hedge copy** submitted
    /// this long after the primary's arrival at [`Priority::High`] with
    /// the *primary's* deadline. Per `(query, shard)` the first
    /// successful copy wins the merge, so a shard whose primary is stuck
    /// behind a deep backlog answers from the hedge instead. Served
    /// queries that used at least one hedge copy are flagged via
    /// [`QueryCompletion::hedged`]. Hedge copies are extra shard-tasks:
    /// they inflate the queue counters but never the query count. A
    /// single-device [`RagServer`] ignores this (one queue — a duplicate
    /// would race itself).
    pub hedge: Option<Duration>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            k: 5,
            max_batch: MAX_BATCH,
            batch_window: Duration::from_millis(2),
            queue: QueueConfig::default(),
            priority: Priority::Normal,
            ttl: None,
            retry: None,
            hedge: None,
        }
    }
}

/// Submission parameters of one query: arrival time plus optional
/// tenant tag, per-query priority, and per-query TTL (overriding the
/// server-wide [`ServeConfig`] defaults). Build with [`QuerySpec::new`]
/// and pass to [`RagServer::submit_query`] /
/// [`ShardedRagServer::submit_query`].
#[derive(Debug, Clone)]
pub struct QuerySpec {
    arrival: Duration,
    tenant: TenantId,
    priority: Option<Priority>,
    ttl: Option<Duration>,
    query: Vec<i16>,
}

impl QuerySpec {
    /// A query arriving at `arrival` on the virtual timeline, with the
    /// server-wide defaults for everything else.
    pub fn new(arrival: Duration, query: Vec<i16>) -> Self {
        QuerySpec {
            arrival,
            tenant: TenantId::default(),
            priority: None,
            ttl: None,
            query,
        }
    }

    /// Tags the query with a tenant for fair-share scheduling and
    /// per-tenant accounting (see [`apu_sim::SchedPolicy::SloAware`]).
    #[must_use]
    pub fn tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// Overrides the server-wide submission priority for this query.
    #[must_use]
    pub fn priority(mut self, priority: Priority) -> Self {
        self.priority = Some(priority);
        self
    }

    /// Overrides the server-wide TTL for this query: it is shed unless
    /// it can start within `ttl` of its arrival.
    #[must_use]
    pub fn ttl(mut self, ttl: Duration) -> Self {
        self.ttl = Some(ttl);
        self
    }
}

/// Identifier of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryTicket(u64);

impl QueryTicket {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One served query: scheduling timestamps and its outcome — either the
/// top-k hits or the error it retired with (shed deadline, injected
/// fault, kernel failure). Failed queries are first-class completions;
/// they are never silently dropped from a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct QueryCompletion {
    /// Ticket returned at submission.
    pub ticket: QueryTicket,
    /// Tenant the query was submitted under ([`QuerySpec::tenant`];
    /// default tenant 0).
    pub tenant: TenantId,
    /// The query's own arrival time.
    pub arrival: Duration,
    /// Dispatch time of the batch that carried it (shed queries reuse
    /// their deadline).
    pub started_at: Duration,
    /// Retire time of that batch.
    pub finished_at: Duration,
    /// How many queries shared the batch.
    pub batch_size: usize,
    /// Dispatch attempts consumed (1 without retries).
    pub attempts: u32,
    /// Per-stage latency attribution (`queue_wait / dispatch / dma /
    /// device`); the components sum exactly to
    /// [`QueryCompletion::latency`].
    pub stages: StageBreakdown,
    /// How many corpus shards answered this query (always 1 of 1 on a
    /// single-device [`RagServer`]). A served query with `shards_ok <
    /// shards_total` is *degraded*: its hits are exact over the healthy
    /// shards only.
    pub shards_ok: usize,
    /// How many corpus shards the query was fanned out to.
    pub shards_total: usize,
    /// Whether at least one shard served this query from its hedge copy
    /// rather than the primary (see [`ServeConfig::hedge`]). Always
    /// `false` without hedging.
    pub hedged: bool,
    /// Top-k hits — identical to the synchronous
    /// [`crate::batch::retrieve_batch`] path — or the retirement error.
    pub outcome: std::result::Result<Vec<Hit>, Error>,
}

impl QueryCompletion {
    /// End-to-end latency: the query's own arrival to batch retire (so
    /// waiting for the batch window is charged to the early arrivals).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.arrival
    }

    /// Whether the query was served successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// Whether the query was served from a strict subset of its corpus
    /// shards (some shard faulted or shed it). Degraded queries count as
    /// served — their hits are exact over the shards that answered —
    /// but a caller that needs whole-corpus recall can detect and retry
    /// them.
    pub fn is_degraded(&self) -> bool {
        self.outcome.is_ok() && self.shards_ok < self.shards_total
    }

    /// The served hits, or `None` for a failed query.
    pub fn hits(&self) -> Option<&[Hit]> {
        self.outcome.as_deref().ok()
    }

    /// The retirement error, or `None` for a served query.
    pub fn error(&self) -> Option<&Error> {
        self.outcome.as_ref().err()
    }

    /// Consumes the completion into its hits.
    ///
    /// # Errors
    ///
    /// Returns the retirement error of a failed query.
    pub fn into_hits(self) -> Result<Vec<Hit>> {
        self.outcome
    }
}

/// Outcome of serving a drained query stream.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-query completions, in finish order (ticket order for ties).
    pub completions: Vec<QueryCompletion>,
    /// Command-queue counters for the run. On a sharded run this is the
    /// [`QueueStats::merge`] of every shard's queue, so task-level
    /// counters (`submitted`, `completed`, `dispatches`, …) count
    /// *shard-tasks* — queries × shards — not queries; use
    /// [`ServeReport::served`] / [`ServeReport::failed`] for query-level
    /// accounting.
    pub queue: QueueStats,
    /// Per-shard queue counters, in shard order. A single-device
    /// [`RagServer`] reports one entry (equal to `queue`).
    pub shards: Vec<QueueStats>,
}

impl ServeReport {
    /// Per-query end-to-end latency percentile (nearest rank), over
    /// successfully served queries.
    ///
    /// Returns [`Duration::ZERO`] when there is no served query to rank
    /// — an empty report, or one whose queries all failed (shed,
    /// faulted, or rejected). Callers gating on a latency objective
    /// should check [`ServeReport::served`] first: an all-failed run
    /// trivially "meets" any percentile target.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        let samples: Vec<Duration> = self
            .completions
            .iter()
            .filter(|c| c.is_ok())
            .map(|c| c.latency())
            .collect();
        if samples.is_empty() {
            return Duration::ZERO;
        }
        percentile(&samples, q)
    }

    /// Queries served successfully.
    pub fn served(&self) -> usize {
        self.completions.iter().filter(|c| c.is_ok()).count()
    }

    /// Queries that retired with an error (shed, faulted, or failed).
    pub fn failed(&self) -> usize {
        self.completions.len() - self.served()
    }

    /// Served queries answered by only a subset of their corpus shards
    /// (see [`QueryCompletion::is_degraded`]). Always 0 on a
    /// single-device [`RagServer`].
    pub fn degraded(&self) -> usize {
        self.completions.iter().filter(|c| c.is_degraded()).count()
    }

    /// Sustained successfully-served queries per second over the queue
    /// makespan.
    pub fn throughput_qps(&self) -> f64 {
        let wall = self.queue.makespan.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.served() as f64 / wall
        }
    }

    /// Accumulated per-stage latency totals over successfully served
    /// queries (see [`StageBreakdown`]): where a request's time went —
    /// queue wait vs command issue vs DMA vs device compute.
    pub fn stage_totals(&self) -> StageBreakdown {
        self.queue.stage_totals()
    }

    /// The run's queue counters, stage totals, and latency quantiles in
    /// the Prometheus text exposition format, ready to serve from a
    /// `/metrics` endpoint or dump next to a bench log.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.queue, None)
    }

    /// Mean batch size over served queries.
    pub fn mean_batch_size(&self) -> f64 {
        if self.completions.is_empty() {
            0.0
        } else {
            let total: usize = self.completions.iter().map(|c| c.batch_size).sum();
            total as f64 / self.completions.len() as f64
        }
    }
}

struct PendingQuery {
    ticket: QueryTicket,
    spec: QuerySpec,
}

/// An online RAG retrieval server over one device.
///
/// Submit queries with [`RagServer::submit`], then [`RagServer::drain`]
/// to form batches, run them through the device command queue, and
/// collect per-query completions.
pub struct RagServer<'a> {
    dev: &'a mut ApuDevice,
    hbm: &'a mut MemorySystem,
    store: &'a EmbeddingStore,
    cfg: ServeConfig,
    pending: Vec<PendingQuery>,
    next_ticket: u64,
}

impl<'a> RagServer<'a> {
    /// Opens a server over a device, its off-chip embedding memory, and
    /// a corpus.
    pub fn new(
        dev: &'a mut ApuDevice,
        hbm: &'a mut MemorySystem,
        store: &'a EmbeddingStore,
        cfg: ServeConfig,
    ) -> Self {
        RagServer {
            dev,
            hbm,
            store,
            cfg,
            pending: Vec::new(),
            next_ticket: 0,
        }
    }

    /// Queries accepted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one query arriving at `arrival` on the virtual timeline,
    /// with the server-wide tenant/priority/TTL defaults (shorthand for
    /// [`RagServer::submit_query`] with a bare [`QuerySpec`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound, or [`Error::InvalidArg`] for a bad dimension
    /// (checked later by the batch kernel as well).
    pub fn submit(&mut self, arrival: Duration, query: Vec<i16>) -> Result<QueryTicket> {
        self.submit_query(QuerySpec::new(arrival, query))
    }

    /// Accepts one query with explicit per-query submission parameters
    /// (tenant tag, priority, TTL).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound.
    pub fn submit_query(&mut self, spec: QuerySpec) -> Result<QueryTicket> {
        if self.pending.len() >= self.cfg.queue.max_pending {
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.queue.max_pending,
            });
        }
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingQuery { ticket, spec });
        Ok(ticket)
    }

    /// Runs every pending query through the device command queue — one
    /// batchable submission per query, coalesced by the queue's
    /// continuous-batching dispatcher — and returns per-query
    /// completions. Failures are contained: a shed, faulted, or failed
    /// query retires with an `Err` outcome in its [`QueryCompletion`]
    /// while the rest of the stream keeps serving.
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations; pending queries
    /// are consumed either way.
    pub fn drain(&mut self) -> Result<ServeReport> {
        let mut queries = std::mem::take(&mut self.pending);
        queries.sort_by_key(|p| (p.spec.arrival, p.ticket.0));

        let store = self.store;
        let k = self.cfg.k;
        let key = retrieval_batch_key(store, k);
        let hbm = RefCell::new(&mut *self.hbm);
        let mut queue_cfg = self
            .cfg
            .queue
            .clone()
            .with_max_batch(self.cfg.max_batch.clamp(1, MAX_BATCH))
            .with_max_batch_wait(self.cfg.batch_window);
        if let Some(policy) = self.cfg.retry {
            queue_cfg = queue_cfg.with_retry(policy);
        }
        let mut queue = DeviceQueue::new(&mut *self.dev, queue_cfg);
        let mut tickets: HashMap<TaskHandle, (QueryTicket, Duration)> = HashMap::new();
        for p in queries {
            let hbm = &hbm;
            let run = Box::new(move |dev: &mut ApuDevice, payloads| {
                let mut hbm = hbm.borrow_mut();
                run_boxed_batch(dev, &mut hbm, store, payloads, k)
            });
            let arrival = p.spec.arrival;
            let mut task = TaskSpec::batch(key, Box::new(p.spec.query), run)
                .priority(p.spec.priority.unwrap_or(self.cfg.priority))
                .at(arrival)
                .tenant(p.spec.tenant);
            if let Some(ttl) = p.spec.ttl.or(self.cfg.ttl) {
                task = task.ttl(ttl);
            }
            let handle = queue.submit(task)?;
            tickets.insert(handle, (p.ticket, arrival));
        }

        let mut completions = Vec::new();
        for done in queue.drain()? {
            let (ticket, arrival) = tickets
                .remove(&done.handle)
                .expect("every completion maps to a submitted query");
            let (started_at, finished_at) = (done.started_at, done.finished_at);
            let (batch_size, attempts) = (done.batch_size, done.attempts);
            let tenant = done.tenant;
            let stages = done.stage_breakdown();
            let outcome = done.into_output();
            completions.push(QueryCompletion {
                ticket,
                tenant,
                arrival,
                started_at,
                finished_at,
                batch_size,
                attempts,
                stages,
                shards_ok: usize::from(outcome.is_ok()),
                shards_total: 1,
                hedged: false,
                outcome,
            });
        }
        let stats = queue.stats().clone();
        Ok(ServeReport {
            completions,
            shards: vec![stats.clone()],
            queue: stats,
        })
    }
}

/// An online RAG retrieval server sharded across a simulated multi-device
/// cluster.
///
/// The corpus is split into contiguous shards
/// ([`EmbeddingStore::shards`]); each shard owns one simulated
/// [`ApuDevice`] (independent virtual clock, fault plan, trace sink) and
/// one off-chip [`MemorySystem`]. [`ShardedRagServer::drain`] fans every
/// query out to all shards through a [`DeviceCluster`] — each shard runs
/// the same continuous-batching retrieval kernel over its slice of the
/// corpus and reports **global** chunk ids — then merges the per-shard
/// top-k into the exact global top-k with the same tie-break
/// (score descending, chunk ascending) as the single-device path, so a
/// fault-free sharded run is element-identical to [`RagServer`] on the
/// whole corpus.
///
/// Shard failures are contained, not amplified: a query dropped by one
/// shard (injected fault, TTL shed, kernel failure) still serves from
/// the remaining shards and is flagged via
/// [`QueryCompletion::is_degraded`]; it fails outright only when *every*
/// shard drops it.
///
/// # Example
///
/// ```rust
/// use std::time::Duration;
/// use apu_sim::SimConfig;
/// use rag::corpus::{CorpusSpec, EmbeddingStore};
/// use rag::{ServeConfig, ShardedRagServer};
///
/// # fn main() -> rag::Result<()> {
/// let store = EmbeddingStore::materialized(
///     CorpusSpec { corpus_bytes: 0, chunks: 4096 },
///     7,
/// );
/// let mut server = ShardedRagServer::new(
///     &store,
///     4,
///     SimConfig::default().with_l4_bytes(8 << 20),
///     ServeConfig::default(),
/// )?;
/// for i in 0..8 {
///     server.submit(Duration::from_micros(i * 50), store.query(i))?;
/// }
/// let report = server.drain()?;
/// assert_eq!(report.served(), 8);
/// assert_eq!(report.shards.len(), 4);
/// # Ok(())
/// # }
/// ```
pub struct ShardedRagServer {
    devices: Vec<ApuDevice>,
    hbms: Vec<MemorySystem>,
    shards: Vec<CorpusShard>,
    cfg: ServeConfig,
    pending: Vec<PendingQuery>,
    next_ticket: u64,
    traces: Option<Vec<Rc<RefCell<ChromeTraceSink>>>>,
}

impl ShardedRagServer {
    /// Builds a cluster of `shards` simulated devices, each configured
    /// from `sim` and holding one contiguous shard of `store`.
    ///
    /// # Errors
    ///
    /// Returns [`Error::InvalidArg`] for `shards == 0` or an invalid
    /// `sim` configuration.
    pub fn new(
        store: &EmbeddingStore,
        shards: usize,
        sim: SimConfig,
        cfg: ServeConfig,
    ) -> Result<Self> {
        if shards == 0 {
            return Err(Error::InvalidArg(
                "a sharded server needs at least one shard".into(),
            ));
        }
        let shards = store.shards(shards);
        let mut devices = Vec::with_capacity(shards.len());
        let mut hbms = Vec::with_capacity(shards.len());
        for _ in &shards {
            devices.push(ApuDevice::try_new(sim.clone())?);
            hbms.push(MemorySystem::new(DramSpec::hbm2e_16gb()));
        }
        Ok(ShardedRagServer {
            devices,
            hbms,
            shards,
            cfg,
            pending: Vec::new(),
            next_ticket: 0,
            traces: None,
        })
    }

    /// Number of corpus shards (= devices).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The corpus shards, in shard order.
    pub fn shards(&self) -> &[CorpusShard] {
        &self.shards
    }

    /// Queries accepted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Direct access to one shard's device — e.g. to reconfigure or
    /// inspect it between drains.
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn device_mut(&mut self, shard: usize) -> &mut ApuDevice {
        &mut self.devices[shard]
    }

    /// Arms fault injection on one shard's device; the other shards are
    /// unaffected (failure containment is per device).
    ///
    /// # Panics
    ///
    /// Panics if `shard` is out of range.
    pub fn inject_faults(&mut self, shard: usize, plan: FaultPlan) {
        self.devices[shard].inject_faults(plan);
    }

    /// Installs a Chrome trace sink on every shard's device. Idempotent;
    /// events accumulate across drains until
    /// [`ShardedRagServer::take_chrome_trace`].
    pub fn enable_tracing(&mut self) {
        if self.traces.is_some() {
            return;
        }
        let mut sinks = Vec::with_capacity(self.devices.len());
        for dev in &mut self.devices {
            let (sink, shared) = ChromeTraceSink::shared(dev.config().clock);
            dev.install_trace_sink(sink);
            sinks.push(shared);
        }
        self.traces = Some(sinks);
    }

    /// Detaches the trace sinks and renders the accumulated events as
    /// one Chrome `chrome://tracing` / Perfetto JSON document with a
    /// separate process-level track group per shard ("shard 0",
    /// "shard 1", …). Returns `None` when tracing was never enabled.
    pub fn take_chrome_trace(&mut self) -> Option<String> {
        let shared = self.traces.take()?;
        for dev in &mut self.devices {
            dev.clear_trace_sink();
        }
        let clock = self.devices[0].config().clock;
        let sinks: Vec<ChromeTraceSink> = shared
            .into_iter()
            .map(|rc| {
                Rc::try_unwrap(rc)
                    .expect("devices released their trace sinks")
                    .into_inner()
            })
            .collect();
        let names: Vec<String> = (0..sinks.len()).map(|i| format!("shard {i}")).collect();
        let groups: Vec<(&str, &[TraceEvent])> = names
            .iter()
            .zip(&sinks)
            .map(|(name, sink)| (name.as_str(), sink.events()))
            .collect();
        Some(chrome_trace_json_grouped(&groups, clock))
    }

    /// Accepts one query arriving at `arrival` on the virtual timeline,
    /// with the server-wide tenant/priority/TTL defaults (shorthand for
    /// [`ShardedRagServer::submit_query`] with a bare [`QuerySpec`]).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound (applied to queries, before the per-shard
    /// fan-out).
    pub fn submit(&mut self, arrival: Duration, query: Vec<i16>) -> Result<QueryTicket> {
        self.submit_query(QuerySpec::new(arrival, query))
    }

    /// Accepts one query with explicit per-query submission parameters
    /// (tenant tag, priority, TTL).
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound (applied to queries, before the per-shard
    /// fan-out).
    pub fn submit_query(&mut self, spec: QuerySpec) -> Result<QueryTicket> {
        if self.pending.len() >= self.cfg.queue.max_pending {
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.queue.max_pending,
            });
        }
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingQuery { ticket, spec });
        Ok(ticket)
    }

    /// Fans every pending query out to all shards, runs each shard's
    /// command queue to completion, and merges the per-shard top-k into
    /// per-query global completions.
    ///
    /// Merge semantics per query: `started_at` is the earliest shard
    /// dispatch and `finished_at` the latest shard retire; the *critical
    /// shard* (the one retiring last) supplies the stage breakdown —
    /// every shard sees the same arrival, so the critical shard's stages
    /// still sum exactly to the merged latency — plus `batch_size` and
    /// `attempts` is the worst case over shards. Hits from shards that
    /// answered are merged with [`top_k`]; `shards_ok < shards_total`
    /// marks the result degraded. A query fails only when every shard
    /// dropped it, with the first failing shard's error.
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations; pending queries
    /// are consumed either way.
    pub fn drain(&mut self) -> Result<ServeReport> {
        let mut queries = std::mem::take(&mut self.pending);
        queries.sort_by_key(|p| (p.spec.arrival, p.ticket.0));

        let k = self.cfg.k;
        let n_shards = self.shards.len();
        let mut queue_cfg = self
            .cfg
            .queue
            .clone()
            .with_max_batch(self.cfg.max_batch.clamp(1, MAX_BATCH))
            .with_max_batch_wait(self.cfg.batch_window);
        if let Some(policy) = self.cfg.retry {
            queue_cfg = queue_cfg.with_retry(policy);
        }
        let hedge = self.cfg.hedge;

        // Borrow order matters: the per-shard closures capture these
        // cells, so they must outlive the cluster that owns the closures.
        let hbm_cells: Vec<RefCell<&mut MemorySystem>> =
            self.hbms.iter_mut().map(RefCell::new).collect();
        let shards = &self.shards;
        let keys: Vec<_> = shards
            .iter()
            .map(|sh| retrieval_batch_key(&sh.store, k))
            .collect();
        let mut cluster = DeviceCluster::new(
            self.devices.iter_mut().collect(),
            queue_cfg,
            // Scatter-gather pins every submission to its shard; the
            // router is not consulted.
            RoutePolicy::RoundRobin,
        )?;

        // Value: (ticket, arrival, is_hedge_copy).
        let mut tickets: HashMap<(usize, TaskHandle), (QueryTicket, Duration, bool)> =
            HashMap::new();
        for p in queries {
            let arrival = p.spec.arrival;
            let priority = p.spec.priority.unwrap_or(self.cfg.priority);
            let ttl = p.spec.ttl.or(self.cfg.ttl);
            for (s, shard) in shards.iter().enumerate() {
                let make_task = |at: Duration, priority: Priority| {
                    let hbm = &hbm_cells[s];
                    let run = Box::new(move |dev: &mut ApuDevice, payloads| {
                        let mut hbm = hbm.borrow_mut();
                        run_boxed_batch_at(dev, &mut hbm, &shard.store, payloads, k, shard.base)
                    });
                    let mut task = TaskSpec::batch(keys[s], Box::new(p.spec.query.clone()), run)
                        .priority(priority)
                        .at(at)
                        .tenant(p.spec.tenant)
                        .on_shard(s);
                    if let Some(ttl) = ttl {
                        // Primary and hedge share the primary's deadline:
                        // the hedge races the same SLO, it does not
                        // extend it.
                        task = task.deadline_at(arrival + ttl);
                    }
                    task
                };
                let handle = cluster.submit(make_task(arrival, priority))?;
                tickets.insert((handle.shard(), handle.task()), (p.ticket, arrival, false));
                if let Some(delay) = hedge {
                    let h = cluster.submit(make_task(arrival + delay, Priority::High))?;
                    tickets.insert((h.shard(), h.task()), (p.ticket, arrival, true));
                }
            }
        }

        let cluster_report = cluster.drain()?;
        let queue = cluster_report.merged_stats();
        let mut shard_stats = Vec::with_capacity(n_shards);
        // Gather each query's per-shard completions, in shard order
        // (shards drain in order, so pushing preserves it). With hedging
        // a shard contributes two copies per query; the merge below
        // keeps one winner per (query, shard).
        type Gathered = (Duration, Vec<(usize, bool, Completion)>);
        let mut gathered: HashMap<u64, Gathered> = HashMap::new();
        for drained in cluster_report.shards {
            let shard = drained.shard;
            shard_stats.push(drained.stats);
            for done in drained.completions {
                let (ticket, arrival, is_hedge) = tickets
                    .remove(&(shard, done.handle))
                    .expect("every completion maps to a submitted query");
                gathered
                    .entry(ticket.0)
                    .or_insert_with(|| (arrival, Vec::new()))
                    .1
                    .push((shard, is_hedge, done));
            }
        }

        let copies = 1 + usize::from(hedge.is_some());
        let mut completions = Vec::with_capacity(gathered.len());
        for (ticket, (arrival, mut copies_by_shard)) in gathered {
            debug_assert_eq!(copies_by_shard.len(), n_shards * copies);
            // Winner per shard: the first successful copy (the answer a
            // client would act on), falling back to the primary's error
            // when every copy failed.
            copies_by_shard
                .sort_by_key(|(shard, is_hedge, c)| (*shard, !c.is_ok(), c.finished_at, *is_hedge));
            let mut parts: Vec<(bool, Completion)> = Vec::with_capacity(n_shards);
            for (shard, is_hedge, c) in copies_by_shard {
                match parts.len() {
                    n if n == shard => parts.push((is_hedge, c)),
                    n if n > shard => {} // a winner for this shard exists
                    _ => unreachable!("shards gather in order"),
                }
            }
            let hedged = parts.iter().any(|(h, c)| *h && c.is_ok());
            let started_at = parts
                .iter()
                .map(|(_, c)| c.started_at)
                .min()
                .unwrap_or_default();
            let finished_at = parts
                .iter()
                .map(|(_, c)| c.finished_at)
                .max()
                .unwrap_or_default();
            let attempts = parts.iter().map(|(_, c)| c.attempts).max().unwrap_or(1);
            let tenant = parts.first().map(|(_, c)| c.tenant).unwrap_or_default();
            let critical = parts
                .iter()
                .map(|(_, c)| c)
                .max_by_key(|c| c.finished_at)
                .expect("a query fans out to at least one shard");
            let stages = critical.stage_breakdown();
            let batch_size = critical.batch_size;
            let shards_total = parts.len();
            let mut hits = Vec::new();
            let mut shards_ok = 0;
            let mut first_err = None;
            for (_, done) in parts {
                match done.into_output::<Vec<Hit>>() {
                    Ok(shard_hits) => {
                        shards_ok += 1;
                        hits.extend(shard_hits);
                    }
                    Err(e) => {
                        if first_err.is_none() {
                            first_err = Some(e);
                        }
                    }
                }
            }
            let outcome = match first_err {
                Some(e) if shards_ok == 0 => Err(e),
                _ => Ok(top_k(hits, k)),
            };
            completions.push(QueryCompletion {
                ticket: QueryTicket(ticket),
                tenant,
                arrival,
                started_at,
                finished_at,
                batch_size,
                attempts,
                stages,
                shards_ok,
                shards_total,
                hedged,
                outcome,
            });
        }
        completions.sort_by_key(|c| (c.finished_at, c.ticket.0));
        Ok(ServeReport {
            completions,
            queue,
            shards: shard_stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::retrieve_batch;
    use crate::corpus::CorpusSpec;
    use apu_sim::SimConfig;
    use hbm_sim::DramSpec;

    fn setup(chunks: usize) -> (ApuDevice, MemorySystem, EmbeddingStore) {
        (
            ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20)),
            MemorySystem::new(DramSpec::hbm2e_16gb()),
            EmbeddingStore::materialized(
                CorpusSpec {
                    corpus_bytes: 0,
                    chunks,
                },
                77,
            ),
        )
    }

    #[test]
    fn queue_path_matches_synchronous_batch_path() {
        let (mut dev, mut hbm, store) = setup(20_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();

        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        // Synchronous reference on a fresh device: same batch, same kernel.
        let (mut dev2, mut hbm2, _) = setup(1);
        let sync = retrieve_batch(&mut dev2, &mut hbm2, &store, &queries, 5).unwrap();
        assert_eq!(report.completions.len(), 4);
        for done in &report.completions {
            assert_eq!(
                done.hits().expect("served"),
                sync.hits[done.ticket.id() as usize],
                "query {}",
                done.ticket.id()
            );
            assert_eq!(done.batch_size, 4);
        }
        assert_eq!(report.queue.dispatches, 1);
        assert_eq!(report.queue.dispatched_tasks, 4);
        assert_eq!(report.queue.max_batch_size, 4);
        assert!(report.throughput_qps() > 0.0);
    }

    #[test]
    fn stage_breakdown_sums_to_latency_and_exports() {
        let (mut dev, mut hbm, store) = setup(4096);
        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for i in 0..3 {
                server
                    .submit(Duration::from_micros(i * 5), store.query(i))
                    .unwrap();
            }
            server.drain().unwrap()
        };
        for done in &report.completions {
            assert_eq!(
                done.stages.total(),
                done.latency(),
                "ticket {}",
                done.ticket.id()
            );
            assert!(done.stages.device > Duration::ZERO);
        }
        let totals = report.stage_totals();
        assert_eq!(totals.total(), report.queue.total_latency);
        let text = report.prometheus_text();
        assert!(text.contains("apu_queue_stage_seconds_total{stage=\"device\"}"));
        assert!(text.contains("apu_queue_submitted_total 3"));
    }

    #[test]
    fn batch_window_splits_distant_arrivals() {
        let (mut dev, mut hbm, store) = setup(4096);
        let cfg = ServeConfig {
            batch_window: Duration::from_millis(1),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server
            .submit(Duration::from_micros(100), store.query(1))
            .unwrap();
        // Outside the window of the first batch: forms its own.
        server
            .submit(Duration::from_millis(50), store.query(2))
            .unwrap();
        let report = server.drain().unwrap();
        let sizes: Vec<usize> = report.completions.iter().map(|c| c.batch_size).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
        // Early arrival is charged the wait for its batch mate.
        let first = report
            .completions
            .iter()
            .find(|c| c.ticket.id() == 0)
            .unwrap();
        assert!(first.latency() >= Duration::from_micros(100));
    }

    #[test]
    fn vr_limit_caps_batch_size() {
        let (mut dev, mut hbm, store) = setup(4096);
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for i in 0..(MAX_BATCH + 3) {
            server
                .submit(Duration::ZERO, store.query(i as u64))
                .unwrap();
        }
        let report = server.drain().unwrap();
        assert_eq!(report.completions.len(), MAX_BATCH + 3);
        let max_seen = report
            .completions
            .iter()
            .map(|c| c.batch_size)
            .max()
            .unwrap();
        assert_eq!(max_seen, MAX_BATCH);
        assert_eq!(report.queue.dispatches, 2);
    }

    #[test]
    fn sharded_serving_matches_the_single_device_top_k() {
        let (mut dev, mut hbm, store) = setup(12_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();

        let single = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let mut sharded = ShardedRagServer::new(&store, 3, sim, ServeConfig::default()).unwrap();
        assert_eq!(sharded.shard_count(), 3);
        for q in &queries {
            sharded.submit(Duration::ZERO, q.clone()).unwrap();
        }
        let report = sharded.drain().unwrap();

        assert_eq!(report.completions.len(), 4);
        assert_eq!(report.degraded(), 0);
        let single_hits: HashMap<u64, &[Hit]> = single
            .completions
            .iter()
            .map(|c| (c.ticket.id(), c.hits().expect("served")))
            .collect();
        for done in &report.completions {
            assert_eq!((done.shards_ok, done.shards_total), (3, 3));
            assert!(!done.is_degraded());
            assert_eq!(
                done.hits().expect("served"),
                single_hits[&done.ticket.id()],
                "query {}",
                done.ticket.id()
            );
            assert_eq!(done.stages.total(), done.latency());
        }
        // Cluster counters count shard-tasks: 4 queries × 3 shards.
        assert_eq!(report.queue.submitted, 12);
        assert_eq!(report.shards.len(), 3);
        assert!(report.shards.iter().all(|s| s.submitted == 4));
    }

    #[test]
    fn percentile_of_an_empty_or_all_failed_report_is_zero() {
        // Empty report: no queries at all.
        let empty = ServeReport {
            completions: Vec::new(),
            queue: QueueStats::default(),
            shards: Vec::new(),
        };
        assert_eq!(empty.latency_percentile(0.5), Duration::ZERO);
        assert_eq!(empty.latency_percentile(0.99), Duration::ZERO);

        // All-failed report: every dispatch faults, and no retries.
        let (mut dev, mut hbm, store) = setup(4096);
        dev.inject_faults(FaultPlan::new(3).fail_every_kth_task(1));
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for i in 0..3 {
            server
                .submit(Duration::from_micros(i * 10), store.query(i))
                .unwrap();
        }
        let report = server.drain().unwrap();
        assert_eq!(report.served(), 0);
        assert_eq!(report.failed(), 3);
        assert_eq!(report.latency_percentile(0.99), Duration::ZERO);
    }

    #[test]
    fn a_faulted_shard_degrades_queries_instead_of_failing_them() {
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 6_000,
            },
            77,
        );
        let sim = SimConfig::default().with_l4_bytes(8 << 20);
        let mut sharded = ShardedRagServer::new(&store, 3, sim, ServeConfig::default()).unwrap();
        // Shard 1 fails every dispatch; no retries configured.
        sharded.inject_faults(1, apu_sim::FaultPlan::new(7).fail_every_kth_task(1));
        for i in 0..4 {
            sharded.submit(Duration::ZERO, store.query(i)).unwrap();
        }
        let report = sharded.drain().unwrap();
        assert_eq!(report.served(), 4);
        assert_eq!(report.failed(), 0);
        assert_eq!(report.degraded(), 4);
        let healthy: Vec<_> = sharded
            .shards()
            .iter()
            .enumerate()
            .filter(|(s, _)| *s != 1)
            .flat_map(|(_, sh)| sh.range())
            .collect();
        for done in &report.completions {
            assert_eq!((done.shards_ok, done.shards_total), (2, 3));
            assert!(done.is_degraded());
            // Hits come only from the healthy shards' chunk ranges.
            for h in done.hits().unwrap() {
                assert!(healthy.contains(&h.chunk), "chunk {}", h.chunk);
            }
        }
        assert_eq!(report.shards[1].failed, 4);
        assert_eq!(report.shards[0].failed + report.shards[2].failed, 0);
    }

    #[test]
    fn admission_control_rejects_backlog() {
        let (mut dev, mut hbm, store) = setup(4096);
        let cfg = ServeConfig {
            queue: QueueConfig::default().with_max_pending(2),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server.submit(Duration::ZERO, store.query(1)).unwrap();
        assert!(matches!(
            server.submit(Duration::ZERO, store.query(2)),
            Err(Error::QueueFull { .. })
        ));
        // Draining clears the backlog.
        server.drain().unwrap();
        assert!(server.submit(Duration::ZERO, store.query(2)).is_ok());
    }
}
