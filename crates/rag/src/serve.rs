//! RAG serving: an online query front-end over the device command queue.
//!
//! [`RagServer`] accepts retrieval queries with arrival timestamps (an
//! open-loop stream) and submits each one **individually** through an
//! [`apu_sim::DeviceQueue`] as a batchable task keyed by
//! [`crate::batch::retrieval_batch_key`]. Batch formation happens in the
//! queue's continuous-batching dispatcher: at every dispatch opportunity
//! the scheduler coalesces up to [`ServeConfig::max_batch`] compatible
//! queries (VR-limited to [`MAX_BATCH`]) whose arrivals fall within
//! [`ServeConfig::batch_window`] of the head of the line, and runs them
//! as one [`crate::batch::retrieve_batch`] kernel. The queue path returns
//! *exactly* the hits the synchronous path returns; what the queue adds
//! is realistic dispatch: queueing delay, priority, admission control,
//! batch coalescing, and per-query latency accounting on the virtual
//! timeline.

use std::cell::RefCell;
use std::collections::HashMap;
use std::time::Duration;

use apu_sim::queue::percentile;
use apu_sim::trace::prometheus_text;
use apu_sim::{
    ApuDevice, DeviceQueue, Error, Priority, QueueConfig, QueueStats, RetryPolicy, StageBreakdown,
    TaskHandle,
};
use hbm_sim::MemorySystem;

use crate::batch::{retrieval_batch_key, run_boxed_batch, MAX_BATCH};
use crate::corpus::EmbeddingStore;
use crate::{Hit, Result};

/// Configuration of a [`RagServer`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Retrieved chunks per query.
    pub k: usize,
    /// Largest batch to form (clamped to the VR-limited [`MAX_BATCH`]).
    pub max_batch: usize,
    /// A batch closes when the next query arrives later than this after
    /// the batch's first query (bounds batching-induced latency).
    pub batch_window: Duration,
    /// Command-queue configuration (admission control bound).
    pub queue: QueueConfig,
    /// Priority retrieval batches are submitted at.
    pub priority: Priority,
    /// Per-query time-to-live: a query that cannot start within `ttl`
    /// of its arrival is shed as `DeadlineExceeded` without dispatching
    /// (graceful degradation under overload). `None` disables shedding.
    pub ttl: Option<Duration>,
    /// Bounded retry-with-backoff for transiently faulted queries.
    /// `None` disables retries.
    pub retry: Option<RetryPolicy>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            k: 5,
            max_batch: MAX_BATCH,
            batch_window: Duration::from_millis(2),
            queue: QueueConfig::default(),
            priority: Priority::Normal,
            ttl: None,
            retry: None,
        }
    }
}

/// Identifier of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QueryTicket(u64);

impl QueryTicket {
    /// The raw submission sequence number.
    pub fn id(self) -> u64 {
        self.0
    }
}

/// One served query: scheduling timestamps and its outcome — either the
/// top-k hits or the error it retired with (shed deadline, injected
/// fault, kernel failure). Failed queries are first-class completions;
/// they are never silently dropped from a [`ServeReport`].
#[derive(Debug, Clone)]
pub struct QueryCompletion {
    /// Ticket returned at submission.
    pub ticket: QueryTicket,
    /// The query's own arrival time.
    pub arrival: Duration,
    /// Dispatch time of the batch that carried it (shed queries reuse
    /// their deadline).
    pub started_at: Duration,
    /// Retire time of that batch.
    pub finished_at: Duration,
    /// How many queries shared the batch.
    pub batch_size: usize,
    /// Dispatch attempts consumed (1 without retries).
    pub attempts: u32,
    /// Per-stage latency attribution (`queue_wait / dispatch / dma /
    /// device`); the components sum exactly to
    /// [`QueryCompletion::latency`].
    pub stages: StageBreakdown,
    /// Top-k hits — identical to the synchronous
    /// [`crate::batch::retrieve_batch`] path — or the retirement error.
    pub outcome: std::result::Result<Vec<Hit>, Error>,
}

impl QueryCompletion {
    /// End-to-end latency: the query's own arrival to batch retire (so
    /// waiting for the batch window is charged to the early arrivals).
    pub fn latency(&self) -> Duration {
        self.finished_at - self.arrival
    }

    /// Whether the query was served successfully.
    pub fn is_ok(&self) -> bool {
        self.outcome.is_ok()
    }

    /// The served hits, or `None` for a failed query.
    pub fn hits(&self) -> Option<&[Hit]> {
        self.outcome.as_deref().ok()
    }

    /// The retirement error, or `None` for a served query.
    pub fn error(&self) -> Option<&Error> {
        self.outcome.as_ref().err()
    }

    /// Consumes the completion into its hits.
    ///
    /// # Errors
    ///
    /// Returns the retirement error of a failed query.
    pub fn into_hits(self) -> Result<Vec<Hit>> {
        self.outcome
    }
}

/// Outcome of serving a drained query stream.
#[derive(Debug)]
pub struct ServeReport {
    /// Per-query completions, in finish order (ticket order for ties).
    pub completions: Vec<QueryCompletion>,
    /// Command-queue counters for the run.
    pub queue: QueueStats,
}

impl ServeReport {
    /// Per-query end-to-end latency percentile (nearest rank), over
    /// successfully served queries.
    pub fn latency_percentile(&self, q: f64) -> Duration {
        let samples: Vec<Duration> = self
            .completions
            .iter()
            .filter(|c| c.is_ok())
            .map(|c| c.latency())
            .collect();
        percentile(&samples, q)
    }

    /// Queries served successfully.
    pub fn served(&self) -> usize {
        self.completions.iter().filter(|c| c.is_ok()).count()
    }

    /// Queries that retired with an error (shed, faulted, or failed).
    pub fn failed(&self) -> usize {
        self.completions.len() - self.served()
    }

    /// Sustained successfully-served queries per second over the queue
    /// makespan.
    pub fn throughput_qps(&self) -> f64 {
        let wall = self.queue.makespan.as_secs_f64();
        if wall <= 0.0 {
            0.0
        } else {
            self.served() as f64 / wall
        }
    }

    /// Accumulated per-stage latency totals over successfully served
    /// queries (see [`StageBreakdown`]): where a request's time went —
    /// queue wait vs command issue vs DMA vs device compute.
    pub fn stage_totals(&self) -> StageBreakdown {
        self.queue.stage_totals()
    }

    /// The run's queue counters, stage totals, and latency quantiles in
    /// the Prometheus text exposition format, ready to serve from a
    /// `/metrics` endpoint or dump next to a bench log.
    pub fn prometheus_text(&self) -> String {
        prometheus_text(&self.queue, None)
    }

    /// Mean batch size over served queries.
    pub fn mean_batch_size(&self) -> f64 {
        if self.completions.is_empty() {
            0.0
        } else {
            let total: usize = self.completions.iter().map(|c| c.batch_size).sum();
            total as f64 / self.completions.len() as f64
        }
    }
}

struct PendingQuery {
    ticket: QueryTicket,
    arrival: Duration,
    query: Vec<i16>,
}

/// An online RAG retrieval server over one device.
///
/// Submit queries with [`RagServer::submit`], then [`RagServer::drain`]
/// to form batches, run them through the device command queue, and
/// collect per-query completions.
pub struct RagServer<'a> {
    dev: &'a mut ApuDevice,
    hbm: &'a mut MemorySystem,
    store: &'a EmbeddingStore,
    cfg: ServeConfig,
    pending: Vec<PendingQuery>,
    next_ticket: u64,
}

impl<'a> RagServer<'a> {
    /// Opens a server over a device, its off-chip embedding memory, and
    /// a corpus.
    pub fn new(
        dev: &'a mut ApuDevice,
        hbm: &'a mut MemorySystem,
        store: &'a EmbeddingStore,
        cfg: ServeConfig,
    ) -> Self {
        RagServer {
            dev,
            hbm,
            store,
            cfg,
            pending: Vec::new(),
            next_ticket: 0,
        }
    }

    /// Queries accepted but not yet drained.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Accepts one query arriving at `arrival` on the virtual timeline.
    ///
    /// # Errors
    ///
    /// Returns [`Error::QueueFull`] when the backlog exceeds the queue's
    /// admission bound, or [`Error::InvalidArg`] for a bad dimension
    /// (checked later by the batch kernel as well).
    pub fn submit(&mut self, arrival: Duration, query: Vec<i16>) -> Result<QueryTicket> {
        if self.pending.len() >= self.cfg.queue.max_pending {
            return Err(Error::QueueFull {
                pending: self.pending.len(),
                capacity: self.cfg.queue.max_pending,
            });
        }
        let ticket = QueryTicket(self.next_ticket);
        self.next_ticket += 1;
        self.pending.push(PendingQuery {
            ticket,
            arrival,
            query,
        });
        Ok(ticket)
    }

    /// Runs every pending query through the device command queue — one
    /// batchable submission per query, coalesced by the queue's
    /// continuous-batching dispatcher — and returns per-query
    /// completions. Failures are contained: a shed, faulted, or failed
    /// query retires with an `Err` outcome in its [`QueryCompletion`]
    /// while the rest of the stream keeps serving.
    ///
    /// # Errors
    ///
    /// Reserved for queue-level invariant violations; pending queries
    /// are consumed either way.
    pub fn drain(&mut self) -> Result<ServeReport> {
        let mut queries = std::mem::take(&mut self.pending);
        queries.sort_by_key(|p| (p.arrival, p.ticket.0));

        let store = self.store;
        let k = self.cfg.k;
        let key = retrieval_batch_key(store, k);
        let hbm = RefCell::new(&mut *self.hbm);
        let mut queue_cfg = self
            .cfg
            .queue
            .clone()
            .with_max_batch(self.cfg.max_batch.clamp(1, MAX_BATCH))
            .with_max_batch_wait(self.cfg.batch_window);
        if let Some(policy) = self.cfg.retry {
            queue_cfg = queue_cfg.with_retry(policy);
        }
        let ttl = self.cfg.ttl;
        let mut queue = DeviceQueue::new(&mut *self.dev, queue_cfg);
        let mut tickets: HashMap<TaskHandle, (QueryTicket, Duration)> = HashMap::new();
        for p in queries {
            let hbm = &hbm;
            let run = Box::new(move |dev: &mut ApuDevice, payloads| {
                let mut hbm = hbm.borrow_mut();
                run_boxed_batch(dev, &mut hbm, store, payloads, k)
            });
            let payload = Box::new(p.query);
            let handle = match ttl {
                Some(ttl) => queue.submit_batchable_with_ttl(
                    self.cfg.priority,
                    p.arrival,
                    ttl,
                    key,
                    payload,
                    run,
                ),
                None => queue.submit_batchable(self.cfg.priority, p.arrival, key, payload, run),
            }?;
            tickets.insert(handle, (p.ticket, p.arrival));
        }

        let mut completions = Vec::new();
        for done in queue.drain()? {
            let (ticket, arrival) = tickets
                .remove(&done.handle)
                .expect("every completion maps to a submitted query");
            completions.push(QueryCompletion {
                ticket,
                arrival,
                started_at: done.started_at,
                finished_at: done.finished_at,
                batch_size: done.batch_size,
                attempts: done.attempts,
                stages: done.stage_breakdown(),
                outcome: done.into_output(),
            });
        }
        let stats = queue.stats().clone();
        Ok(ServeReport {
            completions,
            queue: stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::retrieve_batch;
    use crate::corpus::CorpusSpec;
    use apu_sim::SimConfig;
    use hbm_sim::DramSpec;

    fn setup(chunks: usize) -> (ApuDevice, MemorySystem, EmbeddingStore) {
        (
            ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20)),
            MemorySystem::new(DramSpec::hbm2e_16gb()),
            EmbeddingStore::materialized(
                CorpusSpec {
                    corpus_bytes: 0,
                    chunks,
                },
                77,
            ),
        )
    }

    #[test]
    fn queue_path_matches_synchronous_batch_path() {
        let (mut dev, mut hbm, store) = setup(20_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();

        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for q in &queries {
                server.submit(Duration::ZERO, q.clone()).unwrap();
            }
            server.drain().unwrap()
        };

        // Synchronous reference on a fresh device: same batch, same kernel.
        let (mut dev2, mut hbm2, _) = setup(1);
        let sync = retrieve_batch(&mut dev2, &mut hbm2, &store, &queries, 5).unwrap();
        assert_eq!(report.completions.len(), 4);
        for done in &report.completions {
            assert_eq!(
                done.hits().expect("served"),
                sync.hits[done.ticket.id() as usize],
                "query {}",
                done.ticket.id()
            );
            assert_eq!(done.batch_size, 4);
        }
        assert_eq!(report.queue.dispatches, 1);
        assert_eq!(report.queue.dispatched_tasks, 4);
        assert_eq!(report.queue.max_batch_size, 4);
        assert!(report.throughput_qps() > 0.0);
    }

    #[test]
    fn stage_breakdown_sums_to_latency_and_exports() {
        let (mut dev, mut hbm, store) = setup(4096);
        let report = {
            let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
            for i in 0..3 {
                server
                    .submit(Duration::from_micros(i * 5), store.query(i))
                    .unwrap();
            }
            server.drain().unwrap()
        };
        for done in &report.completions {
            assert_eq!(
                done.stages.total(),
                done.latency(),
                "ticket {}",
                done.ticket.id()
            );
            assert!(done.stages.device > Duration::ZERO);
        }
        let totals = report.stage_totals();
        assert_eq!(totals.total(), report.queue.total_latency);
        let text = report.prometheus_text();
        assert!(text.contains("apu_queue_stage_seconds_total{stage=\"device\"}"));
        assert!(text.contains("apu_queue_submitted_total 3"));
    }

    #[test]
    fn batch_window_splits_distant_arrivals() {
        let (mut dev, mut hbm, store) = setup(4096);
        let cfg = ServeConfig {
            batch_window: Duration::from_millis(1),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server
            .submit(Duration::from_micros(100), store.query(1))
            .unwrap();
        // Outside the window of the first batch: forms its own.
        server
            .submit(Duration::from_millis(50), store.query(2))
            .unwrap();
        let report = server.drain().unwrap();
        let sizes: Vec<usize> = report.completions.iter().map(|c| c.batch_size).collect();
        assert_eq!(sizes.iter().filter(|&&s| s == 2).count(), 2);
        assert_eq!(sizes.iter().filter(|&&s| s == 1).count(), 1);
        // Early arrival is charged the wait for its batch mate.
        let first = report
            .completions
            .iter()
            .find(|c| c.ticket.id() == 0)
            .unwrap();
        assert!(first.latency() >= Duration::from_micros(100));
    }

    #[test]
    fn vr_limit_caps_batch_size() {
        let (mut dev, mut hbm, store) = setup(4096);
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for i in 0..(MAX_BATCH + 3) {
            server
                .submit(Duration::ZERO, store.query(i as u64))
                .unwrap();
        }
        let report = server.drain().unwrap();
        assert_eq!(report.completions.len(), MAX_BATCH + 3);
        let max_seen = report
            .completions
            .iter()
            .map(|c| c.batch_size)
            .max()
            .unwrap();
        assert_eq!(max_seen, MAX_BATCH);
        assert_eq!(report.queue.dispatches, 2);
    }

    #[test]
    fn admission_control_rejects_backlog() {
        let (mut dev, mut hbm, store) = setup(4096);
        let cfg = ServeConfig {
            queue: QueueConfig::default().with_max_pending(2),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        server.submit(Duration::ZERO, store.query(0)).unwrap();
        server.submit(Duration::ZERO, store.query(1)).unwrap();
        assert!(matches!(
            server.submit(Duration::ZERO, store.query(2)),
            Err(Error::QueueFull { .. })
        ));
        // Draining clears the backlog.
        server.drain().unwrap();
        assert!(server.submit(Duration::ZERO, store.query(2)).is_ok());
    }
}
