//! CPU ENNS retrieval: a FAISS-`IndexFlatIP`-style exact inner-product
//! scan.
//!
//! Two forms are provided:
//!
//! * [`cpu_retrieve`] — a real multi-threaded scan executed on the host
//!   (the paper runs FAISS v1.7.2 with AVX512 + OpenMP; here the
//!   compiler auto-vectorizes the i16 dot products and `std::thread`
//!   provides the parallelism). Wall-clock numbers depend on the build
//!   machine.
//! * [`CpuRetrievalModel`] — a calibrated Xeon Gold 6230R latency model
//!   for deterministic table regeneration: effective scan throughput
//!   fitted to the paper's CPU retrieval points (6.3×/4.8×/6.6× slower
//!   than the optimized APU at 10/50/200 GB).

use std::time::Instant;

use serde::{Deserialize, Serialize};

use crate::corpus::{EmbeddingStore, EMBED_DIM};
use crate::Hit;

pub use crate::topk::top_k;

/// Exact inner product between two embeddings.
pub fn dot(a: &[i16], b: &[i16]) -> i32 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| x as i32 * y as i32)
        .sum::<i32>()
}

/// Exact top-k retrieval over a materialized store, scanning with the
/// given number of threads. Returns the hits and the measured wall time
/// in milliseconds.
///
/// # Panics
///
/// Panics if the store is size-only.
pub fn cpu_retrieve(
    store: &EmbeddingStore,
    query: &[i16],
    k: usize,
    threads: usize,
) -> (Vec<Hit>, f64) {
    let chunks = store.spec().chunks;
    let data = store.raw();
    let t0 = Instant::now();
    let threads = threads.max(1).min(chunks.max(1));
    let mut all: Vec<Hit> = Vec::new();
    std::thread::scope(|s| {
        let per = chunks.div_ceil(threads);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * per;
                let hi = ((t + 1) * per).min(chunks);
                s.spawn(move || {
                    let mut local: Vec<Hit> = Vec::with_capacity(k);
                    for c in lo..hi {
                        let score = dot(&data[c * EMBED_DIM..(c + 1) * EMBED_DIM], query);
                        local.push(Hit {
                            chunk: c as u32,
                            score,
                        });
                        if local.len() > 4 * k {
                            local = top_k(local, k);
                        }
                    }
                    top_k(local, k)
                })
            })
            .collect();
        for h in handles {
            all.extend(h.join().expect("scan worker panicked"));
        }
    });
    let hits = top_k(all, k);
    (hits, t0.elapsed().as_secs_f64() * 1e3)
}

/// Calibrated Xeon Gold 6230R retrieval latency model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuRetrievalModel {
    /// Effective embedding-scan throughput in GB/s. FAISS flat IP at
    /// batch size 1 on the 26-core part lands far below memory bandwidth;
    /// the paper's measured points imply ≈ 4.3 GB/s.
    pub scan_gbps: f64,
    /// Fixed per-query overhead in milliseconds.
    pub fixed_ms: f64,
}

impl CpuRetrievalModel {
    /// Calibration reproducing the paper's CPU retrieval latencies.
    pub fn xeon_6230r() -> Self {
        CpuRetrievalModel {
            scan_gbps: 4.3,
            fixed_ms: 0.8,
        }
    }

    /// Modeled retrieval latency for an embedding matrix of
    /// `embedding_bytes`.
    pub fn retrieval_ms(&self, embedding_bytes: u64) -> f64 {
        self.fixed_ms + embedding_bytes as f64 / (self.scan_gbps * 1e9) * 1e3
    }
}

/// Convenience: modeled Xeon retrieval latency for a spec.
pub fn cpu_model_retrieval_ms(spec: &crate::CorpusSpec) -> f64 {
    CpuRetrievalModel::xeon_6230r().retrieval_ms(spec.embedding_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    fn small_store() -> EmbeddingStore {
        EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks: 5000,
            },
            7,
        )
    }

    #[test]
    fn single_and_multi_thread_agree() {
        let store = small_store();
        let q = store.query(0);
        let (a, _) = cpu_retrieve(&store, &q, 5, 1);
        let (b, _) = cpu_retrieve(&store, &q, 5, 8);
        assert_eq!(a, b);
        assert_eq!(a.len(), 5);
        // descending scores
        assert!(a.windows(2).all(|w| w[0].score >= w[1].score));
    }

    #[test]
    fn top1_matches_naive_argmax() {
        let store = small_store();
        let q = store.query(3);
        let (hits, _) = cpu_retrieve(&store, &q, 1, 4);
        let best = (0..store.spec().chunks)
            .max_by_key(|&c| {
                (
                    dot(store.embedding(c), &q),
                    -(c as i64), // tie → lower id
                )
            })
            .unwrap();
        assert_eq!(hits[0].chunk, best as u32);
    }

    #[test]
    fn ties_break_toward_lower_chunk() {
        let hits = vec![
            Hit {
                chunk: 9,
                score: 10,
            },
            Hit {
                chunk: 2,
                score: 10,
            },
            Hit { chunk: 5, score: 3 },
        ];
        let t = top_k(hits, 2);
        assert_eq!(t[0].chunk, 2);
        assert_eq!(t[1].chunk, 9);
    }

    #[test]
    fn model_matches_paper_scale() {
        // Paper: CPU retrieval ≈ 6.6 × 84.2 ms ≈ 556 ms at 200 GB.
        let ms = cpu_model_retrieval_ms(&CorpusSpec::from_corpus_bytes(200_000_000_000));
        assert!((450.0..700.0).contains(&ms), "modeled {ms} ms");
        // and ≈ 24 ms at 10 GB.
        let ms10 = cpu_model_retrieval_ms(&CorpusSpec::from_corpus_bytes(10_000_000_000));
        assert!((18.0..36.0).contains(&ms10), "modeled {ms10} ms");
    }
}
