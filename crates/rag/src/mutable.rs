//! Live corpus mutation (ROADMAP item 5): streaming ingest, delta
//! segments, tombstones, and background compaction over the serving
//! stack — with snapshot isolation as the correctness contract.
//!
//! The paper serves an immutable [`EmbeddingStore`]; production
//! retrieval indexes mutate continuously. [`MutableCorpus`] makes the
//! corpus writable without touching the kernel:
//!
//! * **Base + deltas.** Each shard keeps its base store plus
//!   append-only *delta segments* of inserted vectors. Every segment is
//!   an ordinary [`EmbeddingStore`] (stamped with a fresh content
//!   epoch), so the existing batched kernel scans it unchanged.
//! * **Tombstones.** A delete records the document id in the shard's
//!   tombstone set; an update is delete + insert of a fresh id. A
//!   segment is scanned for `k + tombstones_in_segment` candidates and
//!   tombstoned hits are dropped post-scan
//!   ([`crate::topk::drop_tombstoned`]), which provably leaves the
//!   exact top-k of the segment's live documents.
//! * **Snapshots.** [`MutableCorpus::snapshot`] seals the open delta
//!   and returns an immutable, monotonically-numbered [`Snapshot`]
//!   (`Arc`-shared segment list + tombstone set per shard). A query
//!   captures the snapshot at admission and scans exactly that state,
//!   no matter how many writes or compactions land while it waits in
//!   the queue — `tests/corpus_mutation_props.rs` differentially pins
//!   this against a CPU flat scan of the same snapshot.
//! * **Compaction.** [`MutableCorpus::request_compaction`] seals the
//!   shard's deltas into a [`CompactionPlan`]; the serving layer
//!   submits it as ordinary (default low-priority) [`apu_sim::TaskSpec`]
//!   work on the same device queue, where [`run_compaction_task`]
//!   merges base + deltas minus tombstones into a fresh-epoch base and
//!   charges the device for the merge traffic. Old snapshots keep their
//!   `Arc`s to the pre-compaction segments, so in-flight queries are
//!   untouched; a failed compaction (fault injection, see
//!   `FaultPlan::fail_batch_key_times`) leaves the corpus exactly as it
//!   was.
//!
//! IVF composes: the base segment (the bulk of the data) is searched
//! through its per-epoch [`IvfIndex`] while deltas are scanned flat
//! until the next compaction folds them into a retrained index —
//! the classic main-index-plus-memtable layout.

use std::any::Any;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use apu_sim::core::CycleClass;
use apu_sim::{ApuDevice, BatchKey, Cycles, Error, TaskReport};
use hbm_sim::MemorySystem;
use serde::{Deserialize, Serialize};

use crate::batch::retrieve_batch;
use crate::corpus::{CorpusSpec, EmbeddingStore, EMBED_DIM, EMBED_MAX};
use crate::ivf::{IndexMode, IvfIndex, IvfStats};
use crate::topk::{drop_tombstoned, merge_top_k, top_k};
use crate::{Hit, Result};

/// One immutable run of documents: an [`EmbeddingStore`] with
/// segment-local 0-based chunk ids plus the map back to document ids.
/// The base segment and every delta segment share this shape, so the
/// batch kernel scans either without knowing which it is.
#[derive(Debug, Clone)]
pub struct Segment {
    /// The segment's embeddings (`store.spec().chunks` documents).
    pub store: EmbeddingStore,
    /// `ids[local]` = document id of the segment's `local`-th vector.
    /// Strictly ascending (document ids are allocated monotonically and
    /// segments seal in order), so tombstone counting can binary-search.
    pub ids: Vec<u32>,
}

impl Segment {
    /// Documents in the segment.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the segment holds no documents.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// One shard's frozen view: base segment first, then deltas in seal
/// order, plus the tombstone set at snapshot time (sorted doc ids).
#[derive(Debug, Clone)]
pub struct ShardSnapshot {
    /// `segments[0]` is the base; the rest are delta segments.
    pub segments: Vec<Arc<Segment>>,
    /// Sorted document ids deleted as of this snapshot.
    pub tombstones: Arc<Vec<u32>>,
}

impl ShardSnapshot {
    /// Live documents in this shard view (segment docs minus tombstones).
    pub fn live_docs(&self) -> usize {
        let total: usize = self.segments.iter().map(|s| s.len()).sum();
        total - self.tombstones.len()
    }
}

/// An immutable, monotonically-numbered view of the whole corpus. A
/// query admitted against snapshot `n` scans exactly snapshot `n`,
/// regardless of later writes or compactions.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Snapshot number (1-based; strictly increasing across mutations).
    pub id: u64,
    /// Per-shard frozen views.
    pub shards: Vec<ShardSnapshot>,
}

impl Snapshot {
    /// Live documents across all shards.
    pub fn live_docs(&self) -> usize {
        self.shards.iter().map(ShardSnapshot::live_docs).sum()
    }
}

/// Corpus mutation counters and gauges, exported as the `apu_corpus_*`
/// Prometheus series by the serving layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Live (non-tombstoned) documents.
    pub live_docs: u64,
    /// Documents in base segments.
    pub base_docs: u64,
    /// Documents in delta segments (sealed + open).
    pub delta_docs: u64,
    /// Sealed + open delta segments across shards.
    pub delta_segments: u64,
    /// Embedding bytes held in delta segments.
    pub delta_bytes: u64,
    /// Outstanding tombstones across shards.
    pub tombstones: u64,
    /// Documents ever inserted.
    pub inserts: u64,
    /// Documents ever deleted (updates count one delete + one insert).
    pub deletes: u64,
    /// Snapshots published (equals the newest snapshot id).
    pub snapshots: u64,
    /// Compactions applied.
    pub compactions: u64,
    /// Compactions that failed (the corpus was left untouched).
    pub compaction_failures: u64,
}

/// Handle returned by [`MutableCorpus::request_compaction`]: identifies
/// the captured plan and the unique batch key its device task carries
/// (the hook for targeted fault injection).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionTicket {
    /// Plan sequence number (monotone across the corpus).
    pub seq: u64,
    /// Shard being compacted.
    pub shard: usize,
    /// The unique batch key of the compaction's device task.
    pub key: BatchKey,
}

/// A sealed compaction request: the exact segments and tombstones to
/// merge, captured at request time. Writes that land after the request
/// are untouched — the merge replaces precisely the captured segments
/// with one fresh-epoch base and retires precisely the captured
/// tombstones, so post-request deletes keep filtering correctly.
#[derive(Debug, Clone)]
pub struct CompactionPlan {
    pub(crate) seq: u64,
    pub(crate) shard: usize,
    pub(crate) key: BatchKey,
    /// Virtual arrival time for the device task.
    pub(crate) at: Duration,
    /// Base + sealed deltas at request time.
    pub(crate) segments: Vec<Arc<Segment>>,
    /// Sorted tombstones at request time.
    pub(crate) tombstones: Vec<u32>,
    /// Epoch pre-allocated for the merged base (so the result is
    /// deterministic regardless of when the task actually runs).
    merged_epoch: u64,
    /// Nominal corpus bytes per chunk, for the merged store's spec.
    bytes_per_chunk: u64,
    materialized: bool,
}

impl CompactionPlan {
    /// The plan's ticket.
    pub fn ticket(&self) -> CompactionTicket {
        CompactionTicket {
            seq: self.seq,
            shard: self.shard,
            key: self.key,
        }
    }

    /// Virtual arrival time the serving layer submits the task at.
    pub fn arrival(&self) -> Duration {
        self.at
    }

    /// Merges the captured segments minus the captured tombstones into
    /// one fresh base segment (document ids stay ascending). Pure and
    /// deterministic — callable on the host or inside the device task.
    pub fn merge(&self) -> Segment {
        let mut ids = Vec::new();
        let mut data = Vec::new();
        for seg in &self.segments {
            for (local, &doc) in seg.ids.iter().enumerate() {
                if self.tombstones.binary_search(&doc).is_ok() {
                    continue;
                }
                ids.push(doc);
                if self.materialized {
                    data.extend_from_slice(seg.store.embedding(local));
                }
            }
        }
        let corpus_bytes = self.bytes_per_chunk * ids.len() as u64;
        let store = if self.materialized {
            EmbeddingStore::from_embeddings(corpus_bytes, data, self.seed())
        } else {
            EmbeddingStore::size_only(
                CorpusSpec {
                    corpus_bytes,
                    chunks: ids.len(),
                },
                self.seed(),
            )
        };
        Segment {
            store: store.with_epoch(self.merged_epoch),
            ids,
        }
    }

    fn seed(&self) -> u64 {
        self.segments[0].store.seed()
    }

    /// Source documents the merge streams through (for cost charging).
    fn source_docs(&self) -> usize {
        self.segments.iter().map(|s| s.len()).sum()
    }
}

/// Per-shard mutable state.
#[derive(Debug)]
struct ShardState {
    base: Arc<Segment>,
    deltas: Vec<Arc<Segment>>,
    /// Open (unsealed) delta being appended to.
    open_ids: Vec<u32>,
    open_data: Vec<i16>,
    tombstones: BTreeSet<u32>,
    /// A compaction plan for this shard is outstanding.
    compacting: bool,
}

impl ShardState {
    fn seal_open(&mut self, seed: u64, bytes_per_chunk: u64, materialized: bool, epoch: u64) {
        if self.open_ids.is_empty() {
            return;
        }
        let ids = std::mem::take(&mut self.open_ids);
        let data = std::mem::take(&mut self.open_data);
        let corpus_bytes = bytes_per_chunk * ids.len() as u64;
        let store = if materialized {
            EmbeddingStore::from_embeddings(corpus_bytes, data, seed)
        } else {
            EmbeddingStore::size_only(
                CorpusSpec {
                    corpus_bytes,
                    chunks: ids.len(),
                },
                seed,
            )
        };
        self.deltas.push(Arc::new(Segment {
            store: store.with_epoch(epoch),
            ids,
        }));
    }
}

/// Where a document lives and whether it is alive.
#[derive(Debug, Clone, Copy)]
struct DocState {
    shard: u32,
    alive: bool,
}

/// A mutable corpus: per-shard base [`EmbeddingStore`]s wrapped with
/// append-only delta segments, tombstones, and immutable snapshots.
/// See the [module docs](self) for the full model.
#[derive(Debug)]
pub struct MutableCorpus {
    shards: Vec<ShardState>,
    docs: Vec<DocState>,
    seed: u64,
    materialized: bool,
    bytes_per_chunk: u64,
    live: u64,
    inserts: u64,
    deletes: u64,
    compactions: u64,
    compaction_failures: u64,
    next_epoch: u64,
    next_snapshot: u64,
    next_plan: u64,
    /// Cached newest snapshot; cleared by any mutation.
    cached: Option<Arc<Snapshot>>,
    /// Plans captured but not yet handed to the serving layer.
    plans: Vec<Arc<CompactionPlan>>,
}

impl MutableCorpus {
    /// Wraps `store`, partitioned into `n_shards` via
    /// [`EmbeddingStore::shards`] (same clamping contract), as the base
    /// generation. Base documents keep their global chunk ids
    /// (`0..chunks`); inserted documents get fresh ids beyond them.
    pub fn new(store: &EmbeddingStore, n_shards: usize) -> Self {
        let parts = store.shards(n_shards);
        let spec = store.spec();
        let bytes_per_chunk = if spec.chunks == 0 {
            0
        } else {
            spec.corpus_bytes / spec.chunks as u64
        };
        let mut next_epoch = 1u64;
        let mut docs = Vec::with_capacity(spec.chunks);
        let shards = parts
            .into_iter()
            .enumerate()
            .map(|(s, part)| {
                let range = part.range();
                docs.extend(range.clone().map(|_| DocState {
                    shard: s as u32,
                    alive: true,
                }));
                let epoch = next_epoch;
                next_epoch += 1;
                ShardState {
                    base: Arc::new(Segment {
                        store: part.store.with_epoch(epoch),
                        ids: range.collect(),
                    }),
                    deltas: Vec::new(),
                    open_ids: Vec::new(),
                    open_data: Vec::new(),
                    tombstones: BTreeSet::new(),
                    compacting: false,
                }
            })
            .collect();
        MutableCorpus {
            shards,
            live: docs.len() as u64,
            docs,
            seed: store.seed(),
            materialized: store.is_materialized(),
            bytes_per_chunk,
            inserts: 0,
            deletes: 0,
            compactions: 0,
            compaction_failures: 0,
            next_epoch,
            next_snapshot: 1,
            next_plan: 1,
            cached: None,
            plans: Vec::new(),
        }
    }

    /// Shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Live (non-tombstoned) documents.
    pub fn live_docs(&self) -> u64 {
        self.live
    }

    /// Inserts a document, returning its id. The vector is appended to
    /// the open delta of a deterministically chosen shard (round-robin
    /// by document id) and becomes visible from the next snapshot.
    ///
    /// # Errors
    ///
    /// Rejects vectors of the wrong dimension or outside the
    /// `−EMBED_MAX..=EMBED_MAX` band (the device's 16-bit lanes only
    /// hold in-band dot products exactly).
    pub fn insert(&mut self, embedding: &[i16]) -> Result<u32> {
        if embedding.len() != EMBED_DIM {
            return Err(Error::InvalidArg(format!(
                "insert dimension {} != {EMBED_DIM}",
                embedding.len()
            )));
        }
        if embedding
            .iter()
            .any(|v| !(-EMBED_MAX..=EMBED_MAX).contains(v))
        {
            return Err(Error::InvalidArg(format!(
                "insert values outside the ±{EMBED_MAX} embedding band"
            )));
        }
        let doc = u32::try_from(self.docs.len())
            .map_err(|_| Error::InvalidArg("document id space exhausted".into()))?;
        let shard = doc as usize % self.shards.len();
        let st = &mut self.shards[shard];
        st.open_ids.push(doc);
        if self.materialized {
            st.open_data.extend_from_slice(embedding);
        }
        self.docs.push(DocState {
            shard: shard as u32,
            alive: true,
        });
        self.live += 1;
        self.inserts += 1;
        self.cached = None;
        Ok(doc)
    }

    /// Deletes a document. Returns `false` (and changes nothing) if the
    /// id is unknown or already deleted.
    pub fn delete(&mut self, doc: u32) -> bool {
        let Some(state) = self.docs.get_mut(doc as usize) else {
            return false;
        };
        if !state.alive {
            return false;
        }
        state.alive = false;
        let shard = state.shard as usize;
        self.shards[shard].tombstones.insert(doc);
        self.live -= 1;
        self.deletes += 1;
        self.cached = None;
        true
    }

    /// Updates a document: tombstones the old id, inserts the new
    /// vector, returns the fresh id.
    ///
    /// # Errors
    ///
    /// Fails if `doc` is unknown/deleted or the vector is invalid (in
    /// which case nothing changes — validation precedes the delete).
    pub fn update(&mut self, doc: u32, embedding: &[i16]) -> Result<u32> {
        if embedding.len() != EMBED_DIM
            || embedding
                .iter()
                .any(|v| !(-EMBED_MAX..=EMBED_MAX).contains(v))
        {
            return Err(Error::InvalidArg("invalid replacement vector".into()));
        }
        if !self.delete(doc) {
            return Err(Error::InvalidArg(format!(
                "update of unknown or deleted document {doc}"
            )));
        }
        self.insert(embedding)
    }

    /// Publishes the current state as an immutable snapshot (sealing
    /// any open delta). Repeated calls without intervening mutations
    /// return the *same* `Arc` with the same id; each mutation batch
    /// costs exactly one snapshot number.
    pub fn snapshot(&mut self) -> Arc<Snapshot> {
        if let Some(snap) = &self.cached {
            return Arc::clone(snap);
        }
        for s in 0..self.shards.len() {
            let epoch = self.next_epoch;
            let sealed = !self.shards[s].open_ids.is_empty();
            self.shards[s].seal_open(self.seed, self.bytes_per_chunk, self.materialized, epoch);
            if sealed {
                self.next_epoch += 1;
            }
        }
        let shards = self
            .shards
            .iter()
            .map(|st| {
                let mut segments = Vec::with_capacity(1 + st.deltas.len());
                segments.push(Arc::clone(&st.base));
                segments.extend(st.deltas.iter().cloned());
                ShardSnapshot {
                    segments,
                    tombstones: Arc::new(st.tombstones.iter().copied().collect()),
                }
            })
            .collect();
        let snap = Arc::new(Snapshot {
            id: self.next_snapshot,
            shards,
        });
        self.next_snapshot += 1;
        self.cached = Some(Arc::clone(&snap));
        snap
    }

    /// Captures a compaction plan for `shard` (sealing its open delta):
    /// merge base + deltas minus tombstones into a fresh base. Returns
    /// `None` when there is nothing to compact or a plan for the shard
    /// is already outstanding. The plan is queued for the serving layer
    /// ([`MutableCorpus::take_plans`]); `at` is the virtual time the
    /// device task will be submitted at.
    ///
    /// # Errors
    ///
    /// Fails on an out-of-range shard.
    pub fn request_compaction(
        &mut self,
        shard: usize,
        at: Duration,
    ) -> Result<Option<CompactionTicket>> {
        if shard >= self.shards.len() {
            return Err(Error::InvalidArg(format!(
                "compaction shard {shard} out of range 0..{}",
                self.shards.len()
            )));
        }
        if self.shards[shard].compacting {
            return Ok(None);
        }
        {
            let epoch = self.next_epoch;
            let sealed = !self.shards[shard].open_ids.is_empty();
            self.shards[shard].seal_open(self.seed, self.bytes_per_chunk, self.materialized, epoch);
            if sealed {
                self.next_epoch += 1;
                self.cached = None;
            }
        }
        let st = &mut self.shards[shard];
        if st.deltas.is_empty() && st.tombstones.is_empty() {
            return Ok(None);
        }
        let seq = self.next_plan;
        self.next_plan += 1;
        let merged_epoch = self.next_epoch;
        self.next_epoch += 1;
        let key = {
            // FNV-1a over a plan-unique tuple: compactions never batch
            // with queries or with each other.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for v in [u64::from_le_bytes(*b"compact\0"), seq, shard as u64] {
                h ^= v;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            BatchKey::new(h)
        };
        let mut segments = Vec::with_capacity(1 + st.deltas.len());
        segments.push(Arc::clone(&st.base));
        segments.extend(st.deltas.iter().cloned());
        let plan = Arc::new(CompactionPlan {
            seq,
            shard,
            key,
            at,
            segments,
            tombstones: st.tombstones.iter().copied().collect(),
            merged_epoch,
            bytes_per_chunk: self.bytes_per_chunk,
            materialized: self.materialized,
        });
        st.compacting = true;
        let ticket = plan.ticket();
        self.plans.push(plan);
        Ok(Some(ticket))
    }

    /// Drains the captured plans for submission (serving layer only).
    pub fn take_plans(&mut self) -> Vec<Arc<CompactionPlan>> {
        std::mem::take(&mut self.plans)
    }

    /// Current base-segment epoch of each shard, in shard order. Unlike
    /// [`MutableCorpus::snapshot`] this has no side effects (nothing is
    /// sealed); the serving layer uses it to prune per-epoch index
    /// caches after compaction.
    pub fn base_epochs(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.base.store.epoch()).collect()
    }

    /// Installs a completed compaction: the merged segment replaces
    /// exactly the plan's captured segments, and the plan's captured
    /// tombstones are retired. Deltas sealed and tombstones added after
    /// the plan was captured survive untouched.
    pub fn apply_compaction(&mut self, plan: &CompactionPlan, merged: Segment) {
        let st = &mut self.shards[plan.shard];
        let planned: BTreeSet<u64> = plan.segments.iter().map(|s| s.store.epoch()).collect();
        st.deltas.retain(|d| !planned.contains(&d.store.epoch()));
        st.base = Arc::new(merged);
        for t in &plan.tombstones {
            st.tombstones.remove(t);
        }
        st.compacting = false;
        self.compactions += 1;
        self.cached = None;
    }

    /// Records a failed compaction: the corpus is left exactly as it
    /// was (the shard may be re-requested later).
    pub fn fail_compaction(&mut self, plan: &CompactionPlan) {
        self.shards[plan.shard].compacting = false;
        self.compaction_failures += 1;
    }

    /// Current mutation counters and gauges.
    pub fn stats(&self) -> CorpusStats {
        let mut s = CorpusStats {
            live_docs: self.live,
            inserts: self.inserts,
            deletes: self.deletes,
            snapshots: self.next_snapshot - 1,
            compactions: self.compactions,
            compaction_failures: self.compaction_failures,
            ..CorpusStats::default()
        };
        for st in &self.shards {
            s.base_docs += st.base.len() as u64;
            s.tombstones += st.tombstones.len() as u64;
            let delta_docs: u64 =
                st.deltas.iter().map(|d| d.len() as u64).sum::<u64>() + st.open_ids.len() as u64;
            s.delta_docs += delta_docs;
            s.delta_segments += st.deltas.len() as u64 + u64::from(!st.open_ids.is_empty());
            s.delta_bytes += delta_docs * EMBED_DIM as u64 * 2;
        }
        s
    }
}

/// CPU reference for the differential harness: exact top-`k` of one
/// shard-snapshot's live documents (every segment, minus tombstones),
/// by full-precision dot product with the shared tie-break.
pub fn flat_scan_shard(shard: &ShardSnapshot, query: &[i16], k: usize) -> Vec<Hit> {
    let mut hits = Vec::new();
    for seg in &shard.segments {
        for (local, &doc) in seg.ids.iter().enumerate() {
            if shard.tombstones.binary_search(&doc).is_ok() {
                continue;
            }
            hits.push(Hit {
                chunk: doc,
                score: crate::cpu::dot(seg.store.embedding(local), query),
            });
        }
    }
    top_k(hits, k)
}

/// CPU reference over a whole [`Snapshot`]: the exact top-`k` of every
/// live document the snapshot contains. What a query admitted against
/// this snapshot must return, element-identically.
pub fn flat_scan(snapshot: &Snapshot, query: &[i16], k: usize) -> Vec<Hit> {
    let parts = snapshot
        .shards
        .iter()
        .map(|sh| flat_scan_shard(sh, query, k))
        .collect();
    merge_top_k(parts, k)
}

/// Batch-compatibility key for snapshot scans: two queries may share a
/// dispatch only when they scan the same shard of the same snapshot
/// with the same `k` and index mode. Unlike the static path's
/// pointer-identity key, snapshot ids are stable values, so queries
/// admitted against the same snapshot batch across drain calls while
/// queries straddling a mutation never coalesce.
pub fn snapshot_batch_key(shard: usize, snapshot_id: u64, k: usize, mode: IndexMode) -> BatchKey {
    let (tag, nlist, nprobe) = match mode {
        IndexMode::Flat => (0u64, 0u64, 0u64),
        IndexMode::Ivf { nlist, nprobe } => (1, nlist as u64, nprobe as u64),
    };
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        u64::from_le_bytes(*b"mutsnap\0"),
        shard as u64,
        snapshot_id,
        k as u64,
        tag,
        nlist,
        nprobe,
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    BatchKey::new(h)
}

fn zero_report() -> TaskReport {
    TaskReport {
        cycles: Cycles::ZERO,
        duration: Duration::ZERO,
        stats: Default::default(),
        cores_used: 0,
    }
}

/// Type-erased snapshot-scan adapter for the device queue, the mutable
/// counterpart of [`crate::batch::run_boxed_batch_at`]: downcasts
/// member payloads to query vectors, scans every segment of `shard`
/// through the batch kernel — the base through `ivf` when given
/// (deltas always flat) — requesting `k + tombstones_in_segment`
/// candidates per segment, drops tombstoned hits, and merges to the
/// per-query top-`k` over the snapshot's live documents. Hits carry
/// document ids. Poisoned payloads fail only their own slot.
///
/// # Errors
///
/// Propagates kernel failures (whole dispatch); per-member payload
/// errors are contained.
pub fn run_boxed_snapshot_batch(
    dev: &mut ApuDevice,
    hbm: &mut MemorySystem,
    shard: &ShardSnapshot,
    ivf: Option<(&IvfIndex, usize)>,
    payloads: Vec<Box<dyn Any>>,
    k: usize,
) -> Result<(TaskReport, Vec<apu_sim::BatchOutput>, IvfStats)> {
    let n = payloads.len();
    let mut queries: Vec<Vec<i16>> = Vec::with_capacity(n);
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(n);
    for p in payloads {
        match p.downcast::<Vec<i16>>() {
            Ok(q) => {
                slots.push(Some(queries.len()));
                queries.push(*q);
            }
            Err(_) => slots.push(None),
        }
    }

    if queries.is_empty() {
        let outputs = slots
            .iter()
            .map(|_| {
                Err(Error::InvalidArg(
                    "batch payload is not a query vector".into(),
                ))
            })
            .collect();
        return Ok((zero_report(), outputs, IvfStats::default()));
    }

    let nq = queries.len();
    let tomb = shard.tombstones.as_slice();
    let mut report = zero_report();
    let mut stream_ms = 0.0;
    let mut ivf_stats = IvfStats::default();
    let mut parts: Vec<Vec<Vec<Hit>>> = vec![Vec::new(); nq];

    for (si, seg) in shard.segments.iter().enumerate() {
        let chunks = seg.store.spec().chunks;
        if chunks == 0 || k == 0 {
            continue;
        }
        // Tombstones in this segment: ids is sorted, tomb is sorted.
        let tomb_in = seg
            .ids
            .iter()
            .filter(|id| tomb.binary_search(id).is_ok())
            .count();
        // k + tombstones candidates guarantee ≥ k live survivors (or
        // every live document when the segment is smaller than that).
        let k_eff = (k + tomb_in).min(chunks);
        let remap = |hits: Vec<Hit>| -> Vec<Hit> {
            let mapped = hits
                .into_iter()
                .map(|h| Hit {
                    chunk: seg.ids[h.chunk as usize],
                    score: h.score,
                })
                .collect();
            drop_tombstoned(mapped, tomb)
        };
        if si == 0 {
            if let Some((index, nprobe)) = ivf {
                let search = index.search_batch(dev, hbm, &queries, k_eff, nprobe)?;
                report = report.chain(&search.report);
                stream_ms += search.breakdown.load_embedding_ms;
                ivf_stats.absorb(&search.stats);
                for (q, hs) in search.hits.into_iter().enumerate() {
                    parts[q].push(remap(hs));
                }
                continue;
            }
        }
        let scan = retrieve_batch(dev, hbm, &seg.store, &queries, k_eff)?;
        report = report.chain(&scan.report);
        stream_ms += scan.breakdown.load_embedding_ms;
        for (q, hs) in scan.hits.into_iter().enumerate() {
            parts[q].push(remap(hs));
        }
    }

    report.duration += Duration::from_secs_f64(stream_ms / 1e3);
    let mut hits: Vec<Option<Vec<Hit>>> =
        parts.into_iter().map(|p| Some(merge_top_k(p, k))).collect();
    let outputs = slots
        .into_iter()
        .map(|slot| match slot {
            Some(i) => {
                Ok(Box::new(hits[i].take().expect("each slot is taken once")) as Box<dyn Any>)
            }
            None => Err(Error::InvalidArg(
                "batch payload is not a query vector".into(),
            )),
        })
        .collect();
    Ok((report, outputs, ivf_stats))
}

/// The compaction device task: merges the plan on the host (the merge
/// result must be available to the serving layer either way) and
/// charges the device for the pass — one DMA + unpack charge per source
/// document, exactly the per-plane movement the scan kernel pays, plus
/// the off-chip stream of all source and merged bytes. The returned
/// batch output is the merged [`Segment`], boxed.
///
/// The charge is a pure function of the plan's shape, so functional and
/// timing-only runs book identical service time.
///
/// # Errors
///
/// Propagates device errors (including injected faults at dispatch).
pub fn run_compaction_task(
    dev: &mut ApuDevice,
    hbm: &mut MemorySystem,
    plan: &CompactionPlan,
) -> Result<(TaskReport, Vec<apu_sim::BatchOutput>)> {
    let merged = plan.merge();
    let src_docs = plan.source_docs() as u64;
    let read_bytes: u64 = plan
        .segments
        .iter()
        .map(|s| s.store.spec().embedding_bytes())
        .sum();
    let write_bytes = merged.store.spec().embedding_bytes();
    let mut report = dev.run_task(|ctx| {
        let per_dma = ctx.timing().dma_l4_l2(EMBED_DIM * 2);
        let per_pio = Cycles::new(ctx.timing().pio_ld_per_elem * EMBED_DIM as u64);
        ctx.core_mut()
            .charge_cycles(CycleClass::Dma, Cycles::new(per_dma.get() * src_docs));
        ctx.core_mut()
            .charge_cycles(CycleClass::Pio, Cycles::new(per_pio.get() * src_docs));
        Ok(())
    })?;
    let total_bytes = read_bytes + write_bytes;
    if total_bytes > 0 {
        let stream = hbm.stream_read(0, total_bytes);
        report.duration += Duration::from_secs_f64(stream.millis() / 1e3);
    }
    Ok((report, vec![Ok(Box::new(merged) as Box<dyn Any>)]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;
    use hbm_sim::DramSpec;

    fn store(chunks: usize, seed: u64) -> EmbeddingStore {
        EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: (chunks * 64) as u64,
                chunks,
            },
            seed,
        )
    }

    fn device() -> (ApuDevice, MemorySystem) {
        (
            ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20)),
            MemorySystem::new(DramSpec::hbm2e_16gb()),
        )
    }

    fn vec_of(v: i16) -> Vec<i16> {
        vec![v.clamp(-EMBED_MAX, EMBED_MAX); EMBED_DIM]
    }

    #[test]
    fn snapshots_are_immutable_and_monotone() {
        let mut c = MutableCorpus::new(&store(10, 1), 2);
        let s1 = c.snapshot();
        assert_eq!(s1.id, 1);
        assert_eq!(s1.live_docs(), 10);
        // No mutation → same snapshot, same id.
        assert!(Arc::ptr_eq(&s1, &c.snapshot()));
        let d = c.insert(&vec_of(3)).unwrap();
        assert_eq!(d, 10);
        assert!(c.delete(2));
        let s2 = c.snapshot();
        assert_eq!(s2.id, 2);
        assert_eq!(s2.live_docs(), 10);
        // The old snapshot still sees the old state.
        assert_eq!(s1.live_docs(), 10);
        assert!(s1.shards.iter().all(|sh| sh.tombstones.is_empty()));
        assert!(s2
            .shards
            .iter()
            .any(|sh| sh.tombstones.binary_search(&2).is_ok()));
    }

    #[test]
    fn delete_and_update_edge_cases() {
        let mut c = MutableCorpus::new(&store(4, 2), 1);
        assert!(!c.delete(99), "unknown id");
        assert!(c.delete(1));
        assert!(!c.delete(1), "double delete");
        assert!(c.update(1, &vec_of(1)).is_err(), "update of deleted doc");
        let fresh = c.update(0, &vec_of(2)).unwrap();
        assert_eq!(fresh, 4);
        assert!(!c.docs[0].alive);
        assert_eq!(c.live_docs(), 3);
        assert!(c.insert(&vec![7i16; EMBED_DIM]).is_err(), "out of band");
        assert!(c.insert(&[0i16; 3]).is_err(), "wrong dimension");
        let st = c.stats();
        assert_eq!(st.inserts, 1);
        assert_eq!(st.deletes, 2);
    }

    #[test]
    fn compaction_merges_exactly_the_captured_state() {
        let base = store(6, 3);
        let mut c = MutableCorpus::new(&base, 1);
        let a = c.insert(&vec_of(1)).unwrap();
        c.delete(0);
        c.delete(a);
        let ticket = c
            .request_compaction(0, Duration::ZERO)
            .unwrap()
            .expect("work exists");
        // A second request while one is outstanding is refused.
        assert!(c.request_compaction(0, Duration::ZERO).unwrap().is_none());
        // Post-plan writes must survive the merge.
        let late = c.insert(&vec_of(2)).unwrap();
        c.delete(1);
        let plans = c.take_plans();
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].ticket(), ticket);
        let merged = plans[0].merge();
        // Merged = base docs 0..6 minus {0, a} (doc 1's delete came
        // after the plan, so it stays physically present).
        assert_eq!(merged.ids, vec![1, 2, 3, 4, 5]);
        assert_eq!(merged.store.spec().chunks, 5);
        for (local, &doc) in merged.ids.iter().enumerate() {
            assert_eq!(merged.store.embedding(local), base.embedding(doc as usize));
        }
        c.apply_compaction(&plans[0], merged);
        let snap = c.snapshot();
        // Live = 5 base survivors − late delete of doc 1 + late insert.
        assert_eq!(snap.live_docs(), 5);
        let st = c.stats();
        assert_eq!(st.compactions, 1);
        assert_eq!(st.tombstones, 1, "only the post-plan tombstone remains");
        // The post-plan delta segment is still there.
        assert!(snap.shards[0]
            .segments
            .iter()
            .any(|s| s.ids.contains(&late)));
        // Nothing to compact right after compacting + sealing? The
        // post-plan delta still exists, so a new plan is allowed.
        assert!(c.request_compaction(0, Duration::ZERO).unwrap().is_some());
        assert!(c.request_compaction(9, Duration::ZERO).is_err());
    }

    #[test]
    fn failed_compaction_leaves_the_corpus_untouched() {
        let mut c = MutableCorpus::new(&store(5, 4), 1);
        c.delete(3);
        let before = c.snapshot();
        let t = c.request_compaction(0, Duration::ZERO).unwrap().unwrap();
        let plans = c.take_plans();
        c.fail_compaction(&plans[0]);
        let st = c.stats();
        assert_eq!(st.compaction_failures, 1);
        assert_eq!(st.compactions, 0);
        let after = c.snapshot();
        assert!(Arc::ptr_eq(&before, &after), "no state change on failure");
        // The shard can be re-requested after the failure.
        let t2 = c.request_compaction(0, Duration::ZERO).unwrap().unwrap();
        assert_ne!(t.key, t2.key, "each plan gets a unique batch key");
    }

    #[test]
    fn snapshot_scan_matches_cpu_flat_scan() {
        let base = store(600, 5);
        let mut c = MutableCorpus::new(&base, 2);
        for i in 0..40 {
            c.insert(&base.query(1000 + i)).unwrap();
        }
        for doc in [0u32, 5, 17, 300, 610] {
            assert!(c.delete(doc));
        }
        let snap = c.snapshot();
        let (mut dev, mut hbm) = device();
        let queries: Vec<Vec<i16>> = (0..3).map(|i| base.query(i)).collect();
        for q in &queries {
            let mut parts = Vec::new();
            for sh in &snap.shards {
                let payloads: Vec<Box<dyn Any>> = vec![Box::new(q.clone())];
                let (_, mut outs, _) =
                    run_boxed_snapshot_batch(&mut dev, &mut hbm, sh, None, payloads, 7).unwrap();
                let hits = *outs.remove(0).unwrap().downcast::<Vec<Hit>>().unwrap();
                parts.push(hits);
            }
            let device_hits = merge_top_k(parts, 7);
            assert_eq!(device_hits, flat_scan(&snap, q, 7));
            assert!(device_hits
                .iter()
                .all(|h| ![0u32, 5, 17, 300, 610].contains(&h.chunk)));
        }
    }

    #[test]
    fn snapshot_scan_with_full_probe_ivf_is_element_identical() {
        let base = store(500, 6);
        let mut c = MutableCorpus::new(&base, 1);
        for i in 0..20 {
            c.insert(&base.query(2000 + i)).unwrap();
        }
        c.delete(2);
        c.delete(501);
        let snap = c.snapshot();
        let sh = &snap.shards[0];
        let index = IvfIndex::build(&sh.segments[0].store, 8);
        let (mut dev, mut hbm) = device();
        let q = base.query(0);
        let payloads: Vec<Box<dyn Any>> = vec![Box::new(q.clone())];
        let (_, mut outs, stats) = run_boxed_snapshot_batch(
            &mut dev,
            &mut hbm,
            sh,
            Some((&index, index.nlist())),
            payloads,
            9,
        )
        .unwrap();
        let hits = *outs.remove(0).unwrap().downcast::<Vec<Hit>>().unwrap();
        assert_eq!(hits, flat_scan(&snap, &q, 9));
        assert_eq!(stats.searches, 1);
    }

    #[test]
    fn all_tombstoned_and_empty_shard_scans_return_empty() {
        let mut c = MutableCorpus::new(&store(3, 7), 1);
        for d in 0..3 {
            assert!(c.delete(d));
        }
        let snap = c.snapshot();
        let (mut dev, mut hbm) = device();
        let payloads: Vec<Box<dyn Any>> = vec![Box::new(store(3, 7).query(0))];
        let (_, mut outs, _) =
            run_boxed_snapshot_batch(&mut dev, &mut hbm, &snap.shards[0], None, payloads, 5)
                .unwrap();
        let hits = *outs.remove(0).unwrap().downcast::<Vec<Hit>>().unwrap();
        assert!(hits.is_empty(), "every document is tombstoned");
        assert!(flat_scan(&snap, &store(3, 7).query(0), 5).is_empty());
    }

    #[test]
    fn compaction_task_charges_and_returns_the_merge() {
        let mut c = MutableCorpus::new(&store(50, 8), 1);
        c.insert(&vec_of(1)).unwrap();
        c.delete(10);
        c.request_compaction(0, Duration::ZERO).unwrap().unwrap();
        let plans = c.take_plans();
        let (mut dev, mut hbm) = device();
        let (report, mut outs) = run_compaction_task(&mut dev, &mut hbm, &plans[0]).unwrap();
        assert!(report.cycles > Cycles::ZERO);
        assert!(report.duration > Duration::ZERO);
        let merged = *outs.remove(0).unwrap().downcast::<Segment>().unwrap();
        assert_eq!(merged.len(), 50, "50 base + 1 insert − 1 tombstone");
        assert_eq!(merged.store.epoch(), plans[0].merged_epoch);
        c.apply_compaction(&plans[0], merged);
        let snap = c.snapshot();
        assert_eq!(snap.shards[0].segments.len(), 1, "deltas folded in");
        assert!(snap.shards[0].tombstones.is_empty());
    }

    #[test]
    fn size_only_corpus_mutates_by_shape() {
        let dry = EmbeddingStore::size_only(
            CorpusSpec {
                corpus_bytes: 4096,
                chunks: 64,
            },
            9,
        );
        let mut c = MutableCorpus::new(&dry, 2);
        for _ in 0..6 {
            c.insert(&vec_of(0)).unwrap();
        }
        c.delete(0);
        let snap = c.snapshot();
        assert_eq!(snap.live_docs(), 69);
        c.request_compaction(0, Duration::ZERO).unwrap().unwrap();
        let plans = c.take_plans();
        let merged = plans[0].merge();
        assert!(!merged.store.is_materialized());
        let expect = plans[0].source_docs() - 1;
        assert_eq!(merged.len(), expect);
        c.apply_compaction(&plans[0], merged);
        assert_eq!(c.stats().compactions, 1);
    }

    #[test]
    fn segment_epochs_are_unique_across_generations() {
        let mut c = MutableCorpus::new(&store(20, 10), 2);
        c.insert(&vec_of(1)).unwrap();
        c.insert(&vec_of(2)).unwrap();
        let s1 = c.snapshot();
        c.request_compaction(0, Duration::ZERO).unwrap().unwrap();
        let plans = c.take_plans();
        let merged = plans[0].merge();
        c.apply_compaction(&plans[0], merged);
        let s2 = c.snapshot();
        let mut seen = BTreeSet::new();
        for snap in [&s1, &s2] {
            for sh in &snap.shards {
                for seg in &sh.segments {
                    seen.insert(seg.store.epoch());
                }
            }
        }
        // Old base, new base, and every delta are distinct epochs: a
        // fast-forward memo recorded against one generation can never
        // replay against another.
        assert!(seen.len() >= 4, "epochs {seen:?}");
        assert!(!seen.contains(&0), "epoch 0 is reserved for static stores");
    }
}
