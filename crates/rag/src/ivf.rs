//! IVF (inverted-file) approximate retrieval on the simulated device
//! (ROADMAP item 3).
//!
//! The paper's RAG workload scans the whole corpus per query (exact
//! flat search), which caps the servable corpus per device. An IVF
//! index trades a bounded amount of recall for a large scan reduction:
//!
//! 1. **Train** — the corpus is partitioned into `nlist` clusters with
//!    the paper's own k-means ([`phoenix::kmeans`], the Phoenix
//!    workload) fitted on a subsample and swept over the full corpus;
//!    each cluster's embeddings are copied into a *contiguous* slice so
//!    the existing batch kernel can stream it unchanged.
//! 2. **Probe** — at query time the `nlist` centroids form a miniature
//!    corpus that is scanned **on-device** with the very same batched
//!    top-k kernel ([`crate::batch::retrieve_batch`]); the top-`nprobe`
//!    centroids per query select the clusters to search.
//! 3. **Rescore** — each probed cluster is scanned exactly (again the
//!    batch kernel, over the cluster's contiguous slice), hits are
//!    mapped back to original chunk ids, and a [`crate::topk`] merge
//!    yields the final top-k.
//!
//! Because the rescore is exact, every returned hit carries the same
//! score the flat scan would give it: IVF results are always a *subset*
//! of flat results, and `nprobe == nlist` degenerates to an
//! element-identical flat search (`tests/ann_recall_props.rs` pins both
//! properties). Routing every stage through the batch kernel means
//! continuous batching, sharding/replication, SLO scheduling, tracing,
//! and fast-forward all compose with IVF for free.
//!
//! **Timing-only mode.** The functional kernel's top-k is what selects
//! the probe set; in timing-only mode the kernel returns no hits (by
//! design — there is no data), so probe selection falls back to a
//! deterministic, data-independent probe set (the first `nprobe`
//! clusters) while still charging the centroid-scan kernel. The cost
//! model is therefore data-independent (like the rest of the stack) and
//! IVF makes **no** functional-vs-timing cycle-equivalence claim: the
//! scanned-cluster set, and hence the charge, legitimately depends on
//! the data in functional mode.

use std::any::Any;

use apu_sim::{ApuDevice, Cycles, Error, TaskReport, TraceEventKind};
use hbm_sim::MemorySystem;
use phoenix::kmeans::{self, KmeansInput};
use serde::{Deserialize, Serialize};

use crate::apu::RetrievalBreakdown;
use crate::batch::retrieve_batch;
use crate::corpus::{CorpusSpec, EmbeddingStore, EMBED_DIM, EMBED_MAX};
use crate::topk::merge_top_k;
use crate::{Hit, Result};

/// Default cluster count for IVF indexes (the `serve_ann` bench and the
/// serving layer's [`IndexMode::ivf_default`]).
pub const DEFAULT_NLIST: usize = 64;

/// Default probed-cluster count: the `serve_ann` bench's recall@10 ≥
/// 0.9 / ≥ 5× QPS operating point on its clustered corpus.
pub const DEFAULT_NPROBE: usize = 2;

/// Training subsample cap: k-means is fitted on at most this many
/// chunks (deterministic stride sample), then swept over the full
/// corpus for the final partition.
const TRAIN_SUBSAMPLE: usize = 16 * 1024;

/// Lloyd iterations for the trainer.
const TRAIN_ITERS: usize = 4;

/// How a retrieval is executed: exact flat scan (the paper's path) or
/// IVF cluster-pruned search.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum IndexMode {
    /// Exact scan of the full corpus (no recall loss).
    #[default]
    Flat,
    /// IVF search: probe the top-`nprobe` of `nlist` clusters.
    Ivf {
        /// Clusters in the index.
        nlist: usize,
        /// Clusters scanned per query.
        nprobe: usize,
    },
}

impl IndexMode {
    /// The default IVF operating point
    /// ([`DEFAULT_NLIST`]/[`DEFAULT_NPROBE`]).
    pub fn ivf_default() -> Self {
        IndexMode::Ivf {
            nlist: DEFAULT_NLIST,
            nprobe: DEFAULT_NPROBE,
        }
    }

    /// Whether this mode prunes clusters (i.e. is not the exact scan).
    pub fn is_ivf(&self) -> bool {
        matches!(self, IndexMode::Ivf { .. })
    }
}

/// Aggregate IVF probe statistics: one search = one batched dispatch
/// (centroid scan + cluster rescores). Exposed per-dispatch by
/// [`IvfIndex::search_batch`] and accumulated per serve window by the
/// serving layer (→ `apu_ivf_*` Prometheus series).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IvfStats {
    /// Batched IVF dispatches executed.
    pub searches: u64,
    /// Queries served across those dispatches.
    pub queries: u64,
    /// Probed clusters summed over queries (≤ `queries × nprobe`).
    pub probes: u64,
    /// Distinct clusters scanned, summed over dispatches (the batch
    /// scans the union of its members' probe sets once).
    pub clusters_scanned: u64,
    /// Candidate chunks exactly rescored, summed over (query, cluster)
    /// pairs — the work a flat scan would have spent on `queries ×
    /// corpus_chunks`.
    pub candidates: u64,
}

impl IvfStats {
    /// Folds another stats block into this one.
    pub fn absorb(&mut self, other: &IvfStats) {
        self.searches += other.searches;
        self.queries += other.queries;
        self.probes += other.probes;
        self.clusters_scanned += other.clusters_scanned;
        self.candidates += other.candidates;
    }
}

/// Result of one batched IVF search.
#[derive(Debug, Clone)]
pub struct IvfSearch {
    /// Per-query top-k hits, in input order, with **original** chunk
    /// ids (cluster-local ids are remapped before the merge).
    pub hits: Vec<Vec<Hit>>,
    /// Latency breakdown summed over the centroid scan and every
    /// cluster rescore.
    pub breakdown: RetrievalBreakdown,
    /// Chained device report for all stages.
    pub report: TaskReport,
    /// Probe statistics for this dispatch (`searches == 1`).
    pub stats: IvfStats,
}

/// One inverted list: the cluster's embeddings as a contiguous store
/// (cluster-local 0-based ids) plus the map back to original ids.
#[derive(Debug, Clone)]
struct Cluster {
    store: EmbeddingStore,
    /// `ids[local]` = original chunk id in the indexed store.
    ids: Vec<u32>,
}

/// An IVF index over one [`EmbeddingStore`] (a whole corpus or a single
/// shard's slice — sharded serving builds one per shard and keeps its
/// exact global merge unchanged).
#[derive(Debug, Clone)]
pub struct IvfIndex {
    /// The `nlist` centroids as a miniature corpus for the on-device
    /// probe scan.
    centroids: EmbeddingStore,
    clusters: Vec<Cluster>,
    /// Chunk count of the indexed store.
    source_chunks: usize,
}

impl IvfIndex {
    /// Builds an index with (up to) `nlist` clusters. Materialized
    /// stores are trained with k-means; size-only stores (timing-only
    /// paper-scale runs) get a synthetic even partition with identical
    /// shape, so the data-independent cost model still holds.
    ///
    /// `nlist` is clamped to `1..=chunks` (an empty store gets one
    /// empty cluster), mirroring the degenerate-input contract of
    /// [`EmbeddingStore::shards`].
    pub fn build(store: &EmbeddingStore, nlist: usize) -> Self {
        let chunks = store.spec().chunks;
        let nlist = nlist.clamp(1, chunks.max(1));
        if store.is_materialized() {
            Self::train(store, nlist)
        } else {
            Self::synthetic(store, nlist)
        }
    }

    /// Cluster count (after clamping).
    pub fn nlist(&self) -> usize {
        self.clusters.len()
    }

    /// Chunk count of the indexed store.
    pub fn source_chunks(&self) -> usize {
        self.source_chunks
    }

    /// Chunk count of cluster `c`.
    pub fn cluster_len(&self, c: usize) -> usize {
        self.clusters[c].store.spec().chunks
    }

    /// The centroid probe corpus (one "chunk" per cluster).
    pub fn centroid_store(&self) -> &EmbeddingStore {
        &self.centroids
    }

    fn train(store: &EmbeddingStore, nlist: usize) -> Self {
        let chunks = store.spec().chunks;
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);

        // Full corpus, dimension-major, shifted into u16 (−6..=6 → 0..=12);
        // squared-Euclidean assignment is shift-invariant, so the partition
        // is the same one the raw embeddings would produce.
        let mut coords = vec![vec![0u16; chunks]; EMBED_DIM];
        for c in 0..chunks {
            let e = store.embedding(c);
            for (d, col) in coords.iter_mut().enumerate() {
                col[c] = (e[d] + EMBED_MAX) as u16;
            }
        }
        let full = KmeansInput {
            coords,
            k: nlist,
            iters: 0,
        };

        // Fit on a deterministic stride subsample, sweep the full corpus.
        let take = chunks.clamp(1, TRAIN_SUBSAMPLE);
        let sample: Vec<usize> = (0..take).map(|i| i * chunks / take).collect();
        let train_input = KmeansInput {
            coords: full
                .coords
                .iter()
                .map(|col| sample.iter().map(|&p| col[p]).collect())
                .collect(),
            k: nlist,
            iters: TRAIN_ITERS,
        };
        let fitted = kmeans::cpu_mt(&train_input, threads);
        let assignments = kmeans::assign_points(&full, &fitted.centroids, threads);

        // Gather each cluster's embeddings into a contiguous slice.
        let mut ids: Vec<Vec<u32>> = vec![Vec::new(); nlist];
        for (c, &a) in assignments.iter().enumerate() {
            ids[a as usize].push(c as u32);
        }
        let clusters = ids
            .into_iter()
            .map(|ids| {
                let mut data = Vec::with_capacity(ids.len() * EMBED_DIM);
                for &c in &ids {
                    data.extend_from_slice(store.embedding(c as usize));
                }
                let corpus_bytes = proportional_bytes(store.spec(), ids.len());
                Cluster {
                    store: EmbeddingStore::from_embeddings(corpus_bytes, data, store.seed()),
                    ids,
                }
            })
            .collect();

        // Centroid means of in-band coordinates stay in band, so the
        // probe scan's device scores are exact 16-bit inner products.
        let mut cdata = Vec::with_capacity(nlist * EMBED_DIM);
        for cent in &fitted.centroids {
            cdata.extend(cent.iter().map(|&v| v as i16 - EMBED_MAX));
        }
        IvfIndex {
            centroids: EmbeddingStore::from_embeddings(0, cdata, store.seed()),
            clusters,
            source_chunks: chunks,
        }
    }

    fn synthetic(store: &EmbeddingStore, nlist: usize) -> Self {
        let chunks = store.spec().chunks;
        let mut base = 0usize;
        let clusters = (0..nlist)
            .map(|i| {
                let len = chunks / nlist + usize::from(i < chunks % nlist);
                let spec = CorpusSpec {
                    corpus_bytes: proportional_bytes(store.spec(), len),
                    chunks: len,
                };
                let cl = Cluster {
                    store: EmbeddingStore::size_only(spec, store.seed()),
                    ids: (base as u32..(base + len) as u32).collect(),
                };
                base += len;
                cl
            })
            .collect();
        let centroid_spec = CorpusSpec {
            corpus_bytes: 0,
            chunks: nlist,
        };
        IvfIndex {
            centroids: EmbeddingStore::size_only(centroid_spec, store.seed()),
            clusters,
            source_chunks: chunks,
        }
    }

    /// Runs one batched IVF search: on-device centroid scan, top-
    /// `nprobe` cluster selection per query, exact rescore of the
    /// probed clusters' union, per-query top-k merge. Emits an
    /// [`TraceEventKind::IvfProbe`] event when a trace sink is
    /// installed.
    ///
    /// `nprobe` is clamped to `1..=nlist`; `nprobe == nlist` is
    /// element-identical to the flat scan.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`retrieve_batch`] (empty/oversized batch,
    /// wrong query dimension, device errors).
    pub fn search_batch(
        &self,
        dev: &mut ApuDevice,
        hbm: &mut MemorySystem,
        queries: &[Vec<i16>],
        k: usize,
        nprobe: usize,
    ) -> Result<IvfSearch> {
        let nq = queries.len();
        let nlist = self.nlist();
        let nprobe = nprobe.clamp(1, nlist);

        // Stage 1: on-device centroid scan selects the probe sets.
        let probe_scan = retrieve_batch(dev, hbm, &self.centroids, queries, nprobe)?;
        let functional = dev.config().exec_mode.is_functional();
        let probes: Vec<Vec<u32>> = if functional {
            probe_scan
                .hits
                .iter()
                .map(|hs| hs.iter().map(|h| h.chunk).collect())
                .collect()
        } else {
            // Timing-only: the kernel yields no hits, so fall back to a
            // deterministic data-independent probe set (see module docs).
            (0..nq).map(|_| (0..nprobe as u32).collect()).collect()
        };

        let mut report = probe_scan.report;
        let mut breakdown = probe_scan.breakdown;
        let mut stats = IvfStats {
            searches: 1,
            queries: nq as u64,
            probes: probes.iter().map(|p| p.len() as u64).sum(),
            ..IvfStats::default()
        };

        // Stage 2: scan the union of probed clusters, each exactly once
        // with the subset of queries that probed it.
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); nlist];
        for (q, ps) in probes.iter().enumerate() {
            for &c in ps {
                members[c as usize].push(q);
            }
        }
        let mut parts: Vec<Vec<Vec<Hit>>> = vec![Vec::new(); nq];
        for (c, qs) in members.iter().enumerate() {
            let cluster = &self.clusters[c];
            if qs.is_empty() || cluster.store.spec().chunks == 0 {
                continue;
            }
            stats.clusters_scanned += 1;
            stats.candidates += (cluster.store.spec().chunks * qs.len()) as u64;
            let sub: Vec<Vec<i16>> = qs.iter().map(|&q| queries[q].clone()).collect();
            let scan = retrieve_batch(dev, hbm, &cluster.store, &sub, k)?;
            report = report.chain(&scan.report);
            breakdown.accumulate(&scan.breakdown);
            for (i, &q) in qs.iter().enumerate() {
                parts[q].push(
                    scan.hits[i]
                        .iter()
                        .map(|h| Hit {
                            chunk: cluster.ids[h.chunk as usize],
                            score: h.score,
                        })
                        .collect(),
                );
            }
        }

        // Stage 3: exact per-query merge across the probed clusters.
        let hits = parts
            .into_iter()
            .map(|p| merge_top_k(p, k))
            .collect::<Vec<_>>();

        dev.emit_trace(TraceEventKind::IvfProbe {
            queries: nq,
            nlist,
            nprobe,
            scanned: stats.clusters_scanned as usize,
            candidates: stats.candidates,
        });

        Ok(IvfSearch {
            hits,
            breakdown,
            report,
            stats,
        })
    }
}

/// Corpus bytes attributed to a `len`-chunk slice of `spec`,
/// proportional like [`EmbeddingStore::shards`].
fn proportional_bytes(spec: &CorpusSpec, len: usize) -> u64 {
    if spec.chunks == 0 {
        0
    } else {
        spec.corpus_bytes * len as u64 / spec.chunks as u64
    }
}

/// Type-erased IVF counterpart of [`crate::batch::run_boxed_batch_at`]
/// for [`apu_sim::DeviceQueue::submit_batchable`]: downcasts member
/// payloads to query vectors, runs [`IvfIndex::search_batch`] once for
/// the dispatch, offsets hit ids by `chunk_base` (the index's shard
/// base), and re-boxes per-query hits in member order. Poisoned
/// payloads fail only their own slot, exactly like the flat adapter.
/// Also returns the dispatch's [`IvfStats`] for the serving layer's
/// metrics.
///
/// # Errors
///
/// Propagates [`IvfIndex::search_batch`] failures (whole dispatch);
/// per-member payload errors are contained.
pub fn run_boxed_ivf_batch_at(
    dev: &mut ApuDevice,
    hbm: &mut MemorySystem,
    index: &IvfIndex,
    payloads: Vec<Box<dyn Any>>,
    k: usize,
    nprobe: usize,
    chunk_base: u32,
) -> Result<(TaskReport, Vec<apu_sim::BatchOutput>, IvfStats)> {
    let n = payloads.len();
    let mut queries: Vec<Vec<i16>> = Vec::with_capacity(n);
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(n);
    for p in payloads {
        match p.downcast::<Vec<i16>>() {
            Ok(q) => {
                slots.push(Some(queries.len()));
                queries.push(*q);
            }
            Err(_) => slots.push(None),
        }
    }

    if queries.is_empty() {
        let report = TaskReport {
            cycles: Cycles::ZERO,
            duration: std::time::Duration::ZERO,
            stats: Default::default(),
            cores_used: 0,
        };
        let outputs = slots
            .iter()
            .map(|_| {
                Err(Error::InvalidArg(
                    "batch payload is not a query vector".into(),
                ))
            })
            .collect();
        return Ok((report, outputs, IvfStats::default()));
    }

    let search = index.search_batch(dev, hbm, &queries, k, nprobe)?;
    let mut report = search.report;
    report.duration += std::time::Duration::from_secs_f64(search.breakdown.load_embedding_ms / 1e3);
    let mut hits: Vec<Option<Vec<Hit>>> = search
        .hits
        .into_iter()
        .map(|hs| Some(crate::topk::offset_hits(hs, chunk_base)))
        .collect();
    let outputs = slots
        .into_iter()
        .map(|slot| match slot {
            Some(i) => {
                Ok(Box::new(hits[i].take().expect("each slot is taken once")) as Box<dyn Any>)
            }
            None => Err(Error::InvalidArg(
                "batch payload is not a query vector".into(),
            )),
        })
        .collect();
    Ok((report, outputs, search.stats))
}

/// Flat-scan reference (`top_k` of exact dot products) used by the
/// recall harness and inline tests.
#[cfg(test)]
fn flat_reference(store: &EmbeddingStore, query: &[i16], k: usize) -> Vec<Hit> {
    let (hits, _) = crate::cpu::cpu_retrieve(store, query, k, 4);
    crate::topk::top_k(hits, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::ClusteredCorpus;
    use apu_sim::SimConfig;
    use hbm_sim::{DramSpec, MemorySystem};

    fn setup() -> (ApuDevice, MemorySystem) {
        (
            ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20)),
            MemorySystem::new(DramSpec::hbm2e_16gb()),
        )
    }

    fn clustered(chunks: usize, topics: usize, seed: u64) -> ClusteredCorpus {
        ClusteredCorpus::new(
            CorpusSpec {
                corpus_bytes: 0,
                chunks,
            },
            topics,
            1,
            seed,
        )
    }

    #[test]
    fn index_partitions_every_chunk_exactly_once() {
        let corpus = clustered(4096, 8, 11);
        let index = IvfIndex::build(&corpus.store, 8);
        let mut seen = vec![false; 4096];
        for c in 0..index.nlist() {
            for local in 0..index.cluster_len(c) {
                let id = index.clusters[c].ids[local] as usize;
                assert!(!seen[id], "chunk {id} in two clusters");
                seen[id] = true;
                assert_eq!(
                    index.clusters[c].store.embedding(local),
                    corpus.store.embedding(id)
                );
            }
        }
        assert!(seen.iter().all(|&s| s), "some chunk not indexed");
    }

    #[test]
    fn full_probe_matches_flat_scan_exactly() {
        let corpus = clustered(3000, 4, 5);
        let index = IvfIndex::build(&corpus.store, 4);
        let (mut dev, mut hbm) = setup();
        let queries: Vec<Vec<i16>> = (0..3).map(|i| corpus.store.query(i)).collect();
        let search = index
            .search_batch(&mut dev, &mut hbm, &queries, 7, index.nlist())
            .unwrap();
        for (q, query) in queries.iter().enumerate() {
            assert_eq!(search.hits[q], flat_reference(&corpus.store, query, 7));
        }
    }

    #[test]
    fn ivf_hits_are_a_subset_of_flat_with_identical_scores() {
        let corpus = clustered(4096, 8, 23);
        let index = IvfIndex::build(&corpus.store, 8);
        let (mut dev, mut hbm) = setup();
        let q = corpus.query_near(3, 0);
        let search = index
            .search_batch(&mut dev, &mut hbm, std::slice::from_ref(&q), 10, 2)
            .unwrap();
        for h in &search.hits[0] {
            assert_eq!(
                h.score,
                crate::cpu::dot(corpus.store.embedding(h.chunk as usize), &q),
                "rescore must be exact"
            );
        }
        assert!(search.stats.clusters_scanned <= 2);
        assert!(search.stats.candidates < corpus.store.spec().chunks as u64);
    }

    #[test]
    fn timing_mode_charges_without_hits() {
        let corpus = clustered(2048, 4, 9);
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(8 << 20)
                .with_exec_mode(apu_sim::ExecMode::TimingOnly),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let index = IvfIndex::build(&corpus.store, 4);
        let q = corpus.store.query(0);
        let search = index
            .search_batch(&mut dev, &mut hbm, std::slice::from_ref(&q), 5, 2)
            .unwrap();
        assert!(search.hits[0].is_empty());
        assert_eq!(search.stats.clusters_scanned, 2);
        assert!(search.report.cycles > Cycles::ZERO);
    }

    #[test]
    fn nlist_is_clamped_to_chunk_count() {
        let corpus = clustered(16, 2, 3);
        let index = IvfIndex::build(&corpus.store, 1000);
        assert_eq!(index.nlist(), 16);
        assert_eq!(
            (0..index.nlist())
                .map(|c| index.cluster_len(c))
                .sum::<usize>(),
            16
        );
    }
}
