//! Top-k merge utilities shared by every retrieval path.
//!
//! The same merge — rank by score descending, break ties toward the
//! lower chunk id, keep the best `k` — appears at three places in the
//! stack: the batch kernel's per-tile post-processing
//! ([`crate::batch::retrieve_batch`]), the sharded scatter-gather merge
//! ([`crate::ShardedRagServer`]), and the IVF per-cluster rescore merge
//! ([`crate::ivf`]). Centralizing it here keeps the tie-break identical
//! everywhere, which is what makes a sharded or cluster-pruned merge
//! *element-identical* (ids and scores) to the flat single-device scan.

use crate::Hit;

/// Merges candidate hits keeping the `k` best (ties → lower chunk id).
///
/// Degenerate inputs are well-defined: `k == 0` or an empty candidate
/// list returns an empty vector, and `k > hits.len()` returns every
/// candidate (still fully ranked).
pub fn top_k(mut hits: Vec<Hit>, k: usize) -> Vec<Hit> {
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.chunk.cmp(&b.chunk)));
    hits.truncate(k);
    hits
}

/// Lifts hits with local chunk ids (shard-local or cluster-local) to a
/// global id space by offsetting every chunk id by `base`.
pub fn offset_hits(hits: Vec<Hit>, base: u32) -> Vec<Hit> {
    hits.into_iter()
        .map(|h| Hit {
            chunk: h.chunk + base,
            score: h.score,
        })
        .collect()
}

/// Drops hits whose id appears in `tombstones`, a **sorted** slice of
/// deleted ids. Relative order of the survivors is preserved.
///
/// This is the mutation-aware step of the snapshot scan
/// ([`crate::mutable`]): a segment is scanned for `k +
/// tombstones_in_segment` candidates, the tombstoned ones are dropped
/// here, and at least `k` legitimate survivors remain — so a deleted
/// document can never leak into a result list, and the post-filter
/// top-k equals the top-k of the segment's live documents exactly.
pub fn drop_tombstoned(hits: Vec<Hit>, tombstones: &[u32]) -> Vec<Hit> {
    if tombstones.is_empty() {
        return hits;
    }
    hits.into_iter()
        .filter(|h| tombstones.binary_search(&h.chunk).is_err())
        .collect()
}

/// Merges per-partition top-k lists (already in the global id space)
/// into the global top-k: concatenation followed by [`top_k`]. Because
/// every partition list is itself a superset-of-survivors of its
/// partition, this equals the top-k of the union of the partitions.
pub fn merge_top_k(parts: Vec<Vec<Hit>>, k: usize) -> Vec<Hit> {
    let mut all = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        all.extend(p);
    }
    top_k(all, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(chunk: u32, score: i32) -> Hit {
        Hit { chunk, score }
    }

    #[test]
    fn ranks_by_score_then_chunk() {
        let t = top_k(vec![h(9, 10), h(2, 10), h(5, 3), h(0, 12)], 3);
        assert_eq!(t, vec![h(0, 12), h(2, 10), h(9, 10)]);
    }

    #[test]
    fn all_tied_scores_order_by_chunk() {
        let t = top_k(vec![h(7, 1), h(3, 1), h(5, 1), h(1, 1)], 3);
        assert_eq!(t, vec![h(1, 1), h(3, 1), h(5, 1)]);
    }

    #[test]
    fn k_larger_than_n_returns_everything_ranked() {
        let t = top_k(vec![h(4, -2), h(1, 7)], 10);
        assert_eq!(t, vec![h(1, 7), h(4, -2)]);
    }

    #[test]
    fn k_zero_and_empty_input_are_empty() {
        assert!(top_k(vec![h(1, 5)], 0).is_empty());
        assert!(top_k(Vec::new(), 4).is_empty());
    }

    #[test]
    fn offset_rebases_chunk_ids_only() {
        let out = offset_hits(vec![h(0, 3), h(2, -1)], 100);
        assert_eq!(out, vec![h(100, 3), h(102, -1)]);
    }

    #[test]
    fn merge_equals_top_k_of_union() {
        let parts = vec![vec![h(0, 5), h(1, 4)], Vec::new(), vec![h(10, 9), h(11, 4)]];
        let merged = merge_top_k(parts.clone(), 3);
        let union: Vec<Hit> = parts.into_iter().flatten().collect();
        assert_eq!(merged, top_k(union, 3));
        assert_eq!(merged, vec![h(10, 9), h(0, 5), h(1, 4)]);
    }

    #[test]
    fn merge_with_k_past_total_keeps_all_with_ties_ordered() {
        let merged = merge_top_k(vec![vec![h(8, 2)], vec![h(3, 2)]], 99);
        assert_eq!(merged, vec![h(3, 2), h(8, 2)]);
    }

    #[test]
    fn tombstoned_hits_never_survive_the_filter() {
        let hits = vec![h(5, 9), h(2, 8), h(7, 8), h(0, 1)];
        let out = drop_tombstoned(hits, &[2, 7]);
        assert_eq!(out, vec![h(5, 9), h(0, 1)]);
        // An empty tombstone set is the identity.
        let hits = vec![h(3, 4), h(1, 2)];
        assert_eq!(drop_tombstoned(hits.clone(), &[]), hits);
        // Tombstones that match nothing change nothing.
        assert_eq!(drop_tombstoned(hits.clone(), &[99]), hits);
    }

    #[test]
    fn tombstoned_hit_cannot_leak_through_offset_and_merge() {
        // A shard-local hit for a document that a newer snapshot
        // tombstoned: lifted to the global id space, filtered, merged —
        // the deleted id must be absent even when it had the top score.
        let shard_local = vec![h(2, 50), h(0, 40)]; // global 102, 100
        let global = offset_hits(shard_local, 100);
        let filtered = drop_tombstoned(global, &[102]);
        let merged = merge_top_k(vec![filtered, vec![h(7, 45)]], 2);
        assert_eq!(merged, vec![h(7, 45), h(100, 40)]);
        assert!(merged.iter().all(|m| m.chunk != 102));
    }

    #[test]
    fn all_tombstoned_and_empty_delta_edges_merge_cleanly() {
        // Every hit of one partition tombstoned → the partition
        // contributes nothing; an empty delta partition is a no-op; the
        // merge still ranks the survivors of the other partitions.
        let dead = drop_tombstoned(vec![h(4, 99), h(5, 98)], &[4, 5]);
        assert!(dead.is_empty());
        let empty_delta: Vec<Hit> = Vec::new();
        let merged = merge_top_k(vec![dead, empty_delta, vec![h(1, 3)]], 4);
        assert_eq!(merged, vec![h(1, 3)]);
        // Everything tombstoned everywhere → empty result, not a panic.
        let all_dead = merge_top_k(vec![drop_tombstoned(vec![h(0, 1)], &[0])], 4);
        assert!(all_dead.is_empty());
    }
}
