//! Top-k merge utilities shared by every retrieval path.
//!
//! The same merge — rank by score descending, break ties toward the
//! lower chunk id, keep the best `k` — appears at three places in the
//! stack: the batch kernel's per-tile post-processing
//! ([`crate::batch::retrieve_batch`]), the sharded scatter-gather merge
//! ([`crate::ShardedRagServer`]), and the IVF per-cluster rescore merge
//! ([`crate::ivf`]). Centralizing it here keeps the tie-break identical
//! everywhere, which is what makes a sharded or cluster-pruned merge
//! *element-identical* (ids and scores) to the flat single-device scan.

use crate::Hit;

/// Merges candidate hits keeping the `k` best (ties → lower chunk id).
///
/// Degenerate inputs are well-defined: `k == 0` or an empty candidate
/// list returns an empty vector, and `k > hits.len()` returns every
/// candidate (still fully ranked).
pub fn top_k(mut hits: Vec<Hit>, k: usize) -> Vec<Hit> {
    hits.sort_by(|a, b| b.score.cmp(&a.score).then(a.chunk.cmp(&b.chunk)));
    hits.truncate(k);
    hits
}

/// Lifts hits with local chunk ids (shard-local or cluster-local) to a
/// global id space by offsetting every chunk id by `base`.
pub fn offset_hits(hits: Vec<Hit>, base: u32) -> Vec<Hit> {
    hits.into_iter()
        .map(|h| Hit {
            chunk: h.chunk + base,
            score: h.score,
        })
        .collect()
}

/// Merges per-partition top-k lists (already in the global id space)
/// into the global top-k: concatenation followed by [`top_k`]. Because
/// every partition list is itself a superset-of-survivors of its
/// partition, this equals the top-k of the union of the partitions.
pub fn merge_top_k(parts: Vec<Vec<Hit>>, k: usize) -> Vec<Hit> {
    let mut all = Vec::with_capacity(parts.iter().map(Vec::len).sum());
    for p in parts {
        all.extend(p);
    }
    top_k(all, k)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(chunk: u32, score: i32) -> Hit {
        Hit { chunk, score }
    }

    #[test]
    fn ranks_by_score_then_chunk() {
        let t = top_k(vec![h(9, 10), h(2, 10), h(5, 3), h(0, 12)], 3);
        assert_eq!(t, vec![h(0, 12), h(2, 10), h(9, 10)]);
    }

    #[test]
    fn all_tied_scores_order_by_chunk() {
        let t = top_k(vec![h(7, 1), h(3, 1), h(5, 1), h(1, 1)], 3);
        assert_eq!(t, vec![h(1, 1), h(3, 1), h(5, 1)]);
    }

    #[test]
    fn k_larger_than_n_returns_everything_ranked() {
        let t = top_k(vec![h(4, -2), h(1, 7)], 10);
        assert_eq!(t, vec![h(1, 7), h(4, -2)]);
    }

    #[test]
    fn k_zero_and_empty_input_are_empty() {
        assert!(top_k(vec![h(1, 5)], 0).is_empty());
        assert!(top_k(Vec::new(), 4).is_empty());
    }

    #[test]
    fn offset_rebases_chunk_ids_only() {
        let out = offset_hits(vec![h(0, 3), h(2, -1)], 100);
        assert_eq!(out, vec![h(100, 3), h(102, -1)]);
    }

    #[test]
    fn merge_equals_top_k_of_union() {
        let parts = vec![vec![h(0, 5), h(1, 4)], Vec::new(), vec![h(10, 9), h(11, 4)]];
        let merged = merge_top_k(parts.clone(), 3);
        let union: Vec<Hit> = parts.into_iter().flatten().collect();
        assert_eq!(merged, top_k(union, 3));
        assert_eq!(merged, vec![h(10, 9), h(0, 5), h(1, 4)]);
    }

    #[test]
    fn merge_with_k_past_total_keeps_all_with_ties_ordered() {
        let merged = merge_top_k(vec![vec![h(8, 2)], vec![h(3, 2)]], 99);
        assert_eq!(merged, vec![h(3, 2), h(8, 2)]);
    }
}
