//! Extension beyond the paper: **query batching**.
//!
//! The paper serves queries one at a time; every retrieval re-streams
//! the corpus embeddings from off-chip memory and re-pays the on-chip
//! ingress. Because the distance kernel is movement-dominated, serving
//! a batch of queries against each embedding plane amortizes both: one
//! HBM stream and one L2→L1 ingress per plane feed up to 12 per-query
//! accumulators held resident in the vector registers.
//!
//! The batch kernel reuses the all-opts temporal mapping (packed planes,
//! immediate query broadcasts) and produces exactly the same top-k per
//! query as the single-query path.

use std::any::Any;

use apu_sim::{ApuDevice, BatchKey, Cycles, Error, TaskReport, Vmr, Vr};
use gvml::prelude::*;
use hbm_sim::MemorySystem;

use crate::apu::RetrievalBreakdown;
use crate::corpus::{EmbeddingStore, EMBED_DIM};
use crate::ivf::IndexMode;
use crate::topk::top_k;
use crate::{Hit, Result};

/// Maximum queries per batch: accumulators live in VR 12..24.
pub const MAX_BATCH: usize = 12;

const VR_PLANE: Vr = Vr::new(0);
const VR_Q: Vr = Vr::new(2);
const VR_Q2: Vr = Vr::new(3);
const VR_ACC: Vr = Vr::new(4);
const VR_T: Vr = Vr::new(5);
const VR_T2: Vr = Vr::new(6);
const VR_IDX: Vr = Vr::new(7);
const VR_LO: Vr = Vr::new(8);
const VR_HI: Vr = Vr::new(9);
const VR_CONST: Vr = Vr::new(10);
const VR_ACC0: u8 = 12;
const M0: Marker = Marker::new(0);
const SCORE_BIAS: u16 = 16384;

/// Result of a batched retrieval.
#[derive(Debug, Clone)]
pub struct BatchResult {
    /// Per-query top-k hits, in input order.
    pub hits: Vec<Vec<Hit>>,
    /// Whole-batch latency breakdown (one embedding stream for all).
    pub breakdown: RetrievalBreakdown,
    /// Device report for the batch.
    pub report: TaskReport,
}

impl BatchResult {
    /// Amortized per-query retrieval latency in milliseconds.
    pub fn per_query_ms(&self) -> f64 {
        self.breakdown.total_ms() / self.hits.len().max(1) as f64
    }
}

/// Batch-compatibility key for continuous batching on an
/// [`apu_sim::DeviceQueue`]: two retrievals may share a device dispatch
/// only when they search the same store with the same `k`. The key
/// hashes the store's identity (its address — fungibility is per
/// instance) together with `k`, so retrievals against different corpora
/// never coalesce.
pub fn retrieval_batch_key(store: &EmbeddingStore, k: usize) -> BatchKey {
    retrieval_batch_key_for(store, k, IndexMode::Flat)
}

/// [`retrieval_batch_key`] refined by [`IndexMode`]: a flat scan and an
/// IVF search against the same store answer different questions (exact
/// vs approximate) with different kernels, so they must never coalesce
/// into one dispatch — nor may IVF searches with different `nlist` /
/// `nprobe`. The mode's parameters are folded into the hash.
pub fn retrieval_batch_key_for(store: &EmbeddingStore, k: usize, mode: IndexMode) -> BatchKey {
    let (tag, nlist, nprobe) = match mode {
        IndexMode::Flat => (0u64, 0u64, 0u64),
        IndexMode::Ivf { nlist, nprobe } => (1, nlist as u64, nprobe as u64),
    };
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [
        store as *const EmbeddingStore as u64,
        k as u64,
        tag,
        nlist,
        nprobe,
    ] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    BatchKey::new(h)
}

/// Type-erased adapter for [`apu_sim::DeviceQueue::submit_batchable`]:
/// downcasts each member payload to its query vector (`Vec<i16>`), runs
/// [`retrieve_batch`] once for the whole dispatch, and re-boxes the
/// per-query hits (`Vec<Hit>`) in member order.
///
/// A payload that is not a query vector poisons only its own slot: it
/// comes back as a per-member `Err` while the valid members still run
/// (and batch) normally. A dispatch with no valid member at all returns
/// a zero-cost report and all-`Err` outputs rather than a top-level
/// failure, so malformed submissions never take down their batch mates.
///
/// The returned report's service time is the device execution time
/// *plus* the off-chip embedding stream — the kernel cannot run ahead
/// of the stream, and that stream is exactly the cost one batched
/// dispatch amortizes over its members (an unbatched path re-pays it
/// per query).
///
/// # Errors
///
/// Propagates [`retrieve_batch`] failure modes (which fail the whole
/// dispatch); per-member payload errors are contained as described.
pub fn run_boxed_batch(
    dev: &mut ApuDevice,
    hbm: &mut MemorySystem,
    store: &EmbeddingStore,
    payloads: Vec<Box<dyn Any>>,
    k: usize,
) -> Result<(TaskReport, Vec<apu_sim::BatchOutput>)> {
    run_boxed_batch_at(dev, hbm, store, payloads, k, 0)
}

/// [`run_boxed_batch`] against one corpus shard: identical semantics,
/// except every returned hit's chunk id is offset by `chunk_base` so a
/// shard store with local 0-based ids (see
/// [`crate::corpus::EmbeddingStore::shards`]) reports **global** chunk
/// ids. Sharded serving merges per-shard hits directly because of this.
///
/// # Errors
///
/// Same as [`run_boxed_batch`].
pub fn run_boxed_batch_at(
    dev: &mut ApuDevice,
    hbm: &mut MemorySystem,
    store: &EmbeddingStore,
    payloads: Vec<Box<dyn Any>>,
    k: usize,
    chunk_base: u32,
) -> Result<(TaskReport, Vec<apu_sim::BatchOutput>)> {
    let n = payloads.len();
    let mut queries: Vec<Vec<i16>> = Vec::with_capacity(n);
    // Slot of each valid member in `queries`, or None for poisoned ones.
    let mut slots: Vec<Option<usize>> = Vec::with_capacity(n);
    for p in payloads {
        match p.downcast::<Vec<i16>>() {
            Ok(q) => {
                slots.push(Some(queries.len()));
                queries.push(*q);
            }
            Err(_) => slots.push(None),
        }
    }

    if queries.is_empty() {
        let report = TaskReport {
            cycles: Cycles::ZERO,
            duration: std::time::Duration::ZERO,
            stats: Default::default(),
            cores_used: 0,
        };
        let outputs = slots
            .iter()
            .map(|_| {
                Err(Error::InvalidArg(
                    "batch payload is not a query vector".into(),
                ))
            })
            .collect();
        return Ok((report, outputs));
    }

    let result = retrieve_batch(dev, hbm, store, &queries, k)?;
    let mut report = result.report;
    report.duration += std::time::Duration::from_secs_f64(result.breakdown.load_embedding_ms / 1e3);
    let mut hits: Vec<Option<Vec<Hit>>> = result
        .hits
        .into_iter()
        .map(|hs| {
            Some(
                hs.into_iter()
                    .map(|h| Hit {
                        chunk: h.chunk + chunk_base,
                        score: h.score,
                    })
                    .collect(),
            )
        })
        .collect();
    let outputs = slots
        .into_iter()
        .map(|slot| match slot {
            Some(i) => {
                Ok(Box::new(hits[i].take().expect("each slot is taken once")) as Box<dyn Any>)
            }
            None => Err(Error::InvalidArg(
                "batch payload is not a query vector".into(),
            )),
        })
        .collect();
    Ok((report, outputs))
}

/// Runs one batched top-k retrieval with the all-opts kernel.
///
/// # Errors
///
/// Fails on empty or oversized batches, wrong query dimensions, device
/// errors, or a size-only store in functional mode.
pub fn retrieve_batch(
    dev: &mut ApuDevice,
    hbm: &mut MemorySystem,
    store: &EmbeddingStore,
    queries: &[Vec<i16>],
    k: usize,
) -> Result<BatchResult> {
    if queries.is_empty() || queries.len() > MAX_BATCH {
        return Err(Error::InvalidArg(format!(
            "batch size {} outside 1..={MAX_BATCH}",
            queries.len()
        )));
    }
    for q in queries {
        if q.len() != EMBED_DIM {
            return Err(Error::InvalidArg(format!(
                "query dimension {} != {EMBED_DIM}",
                q.len()
            )));
        }
    }
    let functional = dev.config().exec_mode.is_functional();
    if functional && !store.is_materialized() {
        return Err(Error::InvalidArg(
            "functional retrieval needs a materialized store".into(),
        ));
    }
    let l = dev.config().vr_len;
    let n_chunks = store.spec().chunks;
    let n_tiles = n_chunks.div_ceil(l);
    let clock = dev.config().clock;
    let nq = queries.len();

    let mut breakdown = RetrievalBreakdown::default();
    // One embedding stream serves the whole batch.
    let stream = hbm.stream_read(0, store.spec().embedding_bytes());
    breakdown.load_embedding_ms = stream.millis();

    let make_plane = |tile: usize, dim_pair: usize| -> Vec<u16> {
        let mut out = vec![0u16; l];
        if !functional {
            return out;
        }
        for (lane, slot) in out.iter_mut().enumerate() {
            let c = tile * l + lane;
            if c >= n_chunks {
                break;
            }
            let e = store.embedding(c);
            let lo = (e[2 * dim_pair] + 6) as u16;
            let hi = (e[2 * dim_pair + 1] + 6) as u16;
            *slot = lo | (hi << 8);
        }
        out
    };

    // Kernel signature for memoized timing replay (see
    // [`ApuDevice::run_task_memoized`]): in timing-only mode — the only
    // mode that ever replays — both the cycle charge and the (empty)
    // hit payload depend exactly on the corpus tiling and batch shape,
    // so the key hashes those and nothing else. Functional runs always
    // execute, so data-dependence is irrelevant to the key. The store's
    // content epoch is folded in so a mutable corpus never replays a
    // cycle charge recorded against a different snapshot generation —
    // compaction swaps in a fresh-epoch base, invalidating stale memos
    // even when the chunk count happens to coincide.
    let key = {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for v in [
            u64::from_le_bytes(*b"ragbatch"),
            n_chunks as u64,
            nq as u64,
            k as u64,
            l as u64,
            store.epoch(),
        ] {
            h ^= v;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    };
    let make_plane = &make_plane;
    let (report, (all_hits, query_cycles, dist_cycles, topk_cycles)) =
        dev.run_task_memoized(key, move |ctx| {
            let mut all_hits: Vec<Vec<Hit>> = vec![Vec::new(); nq];
            let mut dist = Cycles::ZERO;
            let mut topk = Cycles::ZERO;
            // query staging: one broadcast-friendly prep per query
            let t0 = ctx.core().cycles();
            for _ in 0..nq {
                let cost = ctx.timing().dma_l4_l2(EMBED_DIM * 2);
                ctx.core_mut()
                    .charge_cycles(apu_sim::core::CycleClass::Dma, cost);
                let t = ctx.timing();
                let prep = Cycles::new((t.pio_ld_per_elem + t.cpy_imm) * EMBED_DIM as u64);
                ctx.core_mut()
                    .charge_cycles(apu_sim::core::CycleClass::Pio, prep);
            }
            let qc = ctx.core().cycles() - t0;

            for tile in 0..n_tiles {
                let t1 = ctx.core().cycles();
                for q in 0..nq {
                    ctx.core_mut().cpy_imm_16(Vr::new(VR_ACC0 + q as u8), 0)?;
                }
                for d in 0..EMBED_DIM / 2 {
                    let plane = make_plane(tile, d);
                    crate::apu_inject_l2(ctx, &plane)?;
                    ctx.dma_l2_to_l1(Vmr::new(47))?;
                    ctx.load(VR_PLANE, Vmr::new(47))?;
                    // shared unpack
                    {
                        let core = ctx.core_mut();
                        core.cpy_imm_16(VR_CONST, 0x00FF)?;
                        core.and_16(VR_LO, VR_PLANE, VR_CONST)?;
                        core.sr_imm_u16(VR_HI, VR_PLANE, 8)?;
                        core.cpy_imm_16(VR_CONST, 6)?;
                        core.sub_s16(VR_LO, VR_LO, VR_CONST)?;
                        core.sub_s16(VR_HI, VR_HI, VR_CONST)?;
                    }
                    for (q, query) in queries.iter().enumerate() {
                        let acc = Vr::new(VR_ACC0 + q as u8);
                        let core = ctx.core_mut();
                        core.cpy_imm_16(VR_Q, query[2 * d] as u16)?;
                        core.cpy_imm_16(VR_Q2, query[2 * d + 1] as u16)?;
                        core.mul_s16(VR_T, VR_LO, VR_Q)?;
                        core.mul_s16(VR_T2, VR_HI, VR_Q2)?;
                        core.add_s16(acc, acc, VR_T)?;
                        core.add_s16(acc, acc, VR_T2)?;
                    }
                }
                dist += ctx.core().cycles() - t1;

                // per-query top-k on this tile
                let t2 = ctx.core().cycles();
                let valid = (n_chunks - tile * l).min(l);
                for (q, slot) in all_hits.iter_mut().enumerate() {
                    let acc = Vr::new(VR_ACC0 + q as u8);
                    {
                        let core = ctx.core_mut();
                        core.cpy_16(VR_ACC, acc)?;
                        core.cpy_imm_16(VR_CONST, SCORE_BIAS)?;
                        core.add_u16(VR_ACC, VR_ACC, VR_CONST)?;
                        if valid < l {
                            core.create_index_u16(VR_IDX)?;
                            core.cpy_imm_16(VR_T, valid as u16)?;
                            core.ge_u16(M0, VR_IDX, VR_T)?;
                            core.cpy_imm_16_msk(VR_ACC, 0, M0)?;
                        }
                        core.create_index_u16(VR_IDX)?;
                    }
                    for (tag, biased) in crate::apu_tile_top_k(ctx, k)? {
                        let c = tile * l + tag as usize;
                        if c < n_chunks && biased > 0 {
                            slot.push(Hit {
                                chunk: c as u32,
                                score: biased as i32 - SCORE_BIAS as i32,
                            });
                        }
                    }
                    *slot = top_k(std::mem::take(slot), k);
                }
                topk += ctx.core().cycles() - t2;
            }
            Ok((all_hits, qc, dist, topk))
        })?;
    breakdown.load_query_us = clock.cycles_to_secs(query_cycles) * 1e6;
    breakdown.calc_distance_ms = clock.cycles_to_secs(dist_cycles) * 1e3;
    breakdown.topk_ms = clock.cycles_to_secs(topk_cycles) * 1e3;
    breakdown.return_us = nq as f64 * (k as f64 * 61.0 + 7_500.0) / clock.hz() * 1e6;
    Ok(BatchResult {
        hits: all_hits,
        breakdown,
        report,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apu::{ApuRetriever, RagVariant};
    use crate::corpus::CorpusSpec;
    use crate::cpu::cpu_retrieve;
    use apu_sim::SimConfig;
    use hbm_sim::DramSpec;

    fn setup(chunks: usize) -> (ApuDevice, MemorySystem, EmbeddingStore) {
        (
            ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20)),
            MemorySystem::new(DramSpec::hbm2e_16gb()),
            EmbeddingStore::materialized(
                CorpusSpec {
                    corpus_bytes: 0,
                    chunks,
                },
                77,
            ),
        )
    }

    #[test]
    fn batched_results_match_per_query_cpu() {
        let (mut dev, mut hbm, store) = setup(40_000);
        let queries: Vec<Vec<i16>> = (0..4).map(|i| store.query(i)).collect();
        let batch = retrieve_batch(&mut dev, &mut hbm, &store, &queries, 5).unwrap();
        for (q, hits) in batch.hits.iter().enumerate() {
            let (expected, _) = cpu_retrieve(&store, &queries[q], 5, 4);
            assert_eq!(hits, &expected, "query {q}");
        }
    }

    #[test]
    fn batching_amortizes_per_query_latency() {
        let (mut dev, mut hbm, store) = setup(65_536);
        let q1 = vec![store.query(0)];
        let single = retrieve_batch(&mut dev, &mut hbm, &store, &q1, 5).unwrap();
        let q8: Vec<Vec<i16>> = (0..8).map(|i| store.query(i)).collect();
        let mut hbm2 = MemorySystem::new(DramSpec::hbm2e_16gb());
        let batch = retrieve_batch(&mut dev, &mut hbm2, &store, &q8, 5).unwrap();
        assert!(
            batch.per_query_ms() < single.per_query_ms() * 0.75,
            "batch {:.3} ms/q vs single {:.3} ms/q",
            batch.per_query_ms(),
            single.per_query_ms()
        );
    }

    #[test]
    fn batch_of_one_matches_single_query_path() {
        let (mut dev, mut hbm, store) = setup(20_000);
        let q = store.query(3);
        let batch =
            retrieve_batch(&mut dev, &mut hbm, &store, std::slice::from_ref(&q), 5).unwrap();
        let mut hbm2 = MemorySystem::new(DramSpec::hbm2e_16gb());
        let (hits, _, _) = ApuRetriever::new(RagVariant::AllOpts)
            .retrieve(&mut dev, &mut hbm2, &store, &q, 5)
            .unwrap();
        assert_eq!(batch.hits[0], hits);
    }

    #[test]
    fn batch_size_is_validated() {
        let (mut dev, mut hbm, store) = setup(1000);
        assert!(retrieve_batch(&mut dev, &mut hbm, &store, &[], 5).is_err());
        let too_many: Vec<Vec<i16>> = (0..13).map(|i| store.query(i)).collect();
        assert!(retrieve_batch(&mut dev, &mut hbm, &store, &too_many, 5).is_err());
        let wrong_dim = vec![vec![1i16; 3]];
        assert!(retrieve_batch(&mut dev, &mut hbm, &store, &wrong_dim, 5).is_err());
    }
}
