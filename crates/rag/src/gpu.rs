//! GPU comparators: A6000 retrieval latency/energy models and the
//! Llama-3.1-8B generation (time-to-first-token) model.
//!
//! Substitution note (no GPU in the loop): GPU flat k-NN over a resident
//! embedding matrix is memory-bandwidth-bound, so its *latency* scales
//! with embedding bytes over effective HBM bandwidth plus fixed launch /
//! PCIe terms. Its *energy* is modeled nvidia-smi style — average board
//! draw over the retrieval service window — with the effective scan rate
//! calibrated against the paper's measured energy ratios (54.4×–117.9×),
//! which imply a far lower batch-1 service throughput than the raw
//! kernel bandwidth; the calibration is documented on each constant.

use serde::{Deserialize, Serialize};

use cis_energy::GpuPowerModel;

/// A6000 retrieval model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuRetrievalModel {
    /// Effective kernel scan bandwidth in GB/s (A6000 HBM ≈ 768 GB/s,
    /// flat-IP kernels reach ~80%).
    pub kernel_gbps: f64,
    /// Fixed kernel-launch + top-k + result copy overhead (ms).
    pub fixed_ms: f64,
    /// PCIe query upload (ms).
    pub pcie_ms: f64,
    /// Effective *service* throughput for batch-1 retrieval used for
    /// energy accounting (GB/s). Calibrated so the APU:GPU energy ratio
    /// reproduces the paper's 54×–118× band; batch-1 FAISS-GPU service
    /// utilizes a small fraction of the kernel's streaming rate.
    pub energy_service_gbps: f64,
    /// Board power model.
    pub power: GpuPowerModel,
}

impl GpuRetrievalModel {
    /// Calibrated A6000.
    pub fn a6000() -> Self {
        GpuRetrievalModel {
            kernel_gbps: 614.0,
            fixed_ms: 0.35,
            pcie_ms: 0.05,
            energy_service_gbps: 3.0,
            power: GpuPowerModel::a6000(),
        }
    }

    /// Retrieval latency for an embedding matrix of `bytes`.
    pub fn retrieval_ms(&self, bytes: u64) -> f64 {
        self.fixed_ms + self.pcie_ms + bytes as f64 / (self.kernel_gbps * 1e9) * 1e3
    }

    /// Retrieval energy in joules (nvidia-smi-style accounting over the
    /// batch-1 service window).
    pub fn retrieval_energy_j(&self, bytes: u64) -> f64 {
        let service_secs = bytes as f64 / (self.energy_service_gbps * 1e9);
        self.power.busy_energy_j(service_secs)
    }
}

impl Default for GpuRetrievalModel {
    fn default() -> Self {
        GpuRetrievalModel::a6000()
    }
}

/// Llama-3.1-8B prefill (time-to-first-token) model on a dedicated
/// generation GPU. The generation stage is identical across retrieval
/// platforms, so a single analytical term preserves every end-to-end
/// ratio.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenerationModel {
    /// Model parameters (8 B for Llama-3.1-8B).
    pub params: f64,
    /// Prompt tokens entering prefill (query + retrieved context).
    pub prompt_tokens: f64,
    /// Effective prefill throughput in TFLOP/s (A6000 dense f16 tensor
    /// peak ≈ 77 TFLOP/s; prefill sustains ≈ 78%).
    pub effective_tflops: f64,
}

impl GenerationModel {
    /// Llama-3.1-8B on an A6000 with a ~2 K-token assembled prompt
    /// (query plus truncated retrieved passages), landing at the ≈545 ms
    /// TTFT the paper's end-to-end ratios imply.
    pub fn llama31_8b_a6000() -> Self {
        GenerationModel {
            params: 8.0e9,
            prompt_tokens: 2048.0,
            effective_tflops: 60.0,
        }
    }

    /// Time-to-first-token in milliseconds (prefill ≈ 2·params FLOPs per
    /// token).
    pub fn ttft_ms(&self) -> f64 {
        2.0 * self.params * self.prompt_tokens / (self.effective_tflops * 1e12) * 1e3
    }
}

impl Default for GenerationModel {
    fn default() -> Self {
        GenerationModel::llama31_8b_a6000()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;

    #[test]
    fn gpu_retrieval_is_bandwidth_bound_at_scale() {
        let g = GpuRetrievalModel::a6000();
        let pts = CorpusSpec::paper_points();
        let t200 = g.retrieval_ms(pts[2].embedding_bytes());
        // 2.4 GB over ~614 GB/s + overheads ≈ 4–5 ms.
        assert!((3.5..6.5).contains(&t200), "{t200} ms");
        let t10 = g.retrieval_ms(pts[0].embedding_bytes());
        assert!(t10 < t200 / 5.0);
    }

    #[test]
    fn ttft_matches_implied_generation_latency() {
        // The paper's end-to-end vs retrieval speedups imply ≈ 545 ms of
        // platform-independent generation latency.
        let ms = GenerationModel::llama31_8b_a6000().ttft_ms();
        assert!((480.0..620.0).contains(&ms), "TTFT {ms} ms");
    }

    #[test]
    fn energy_grows_linearly_with_corpus() {
        let g = GpuRetrievalModel::a6000();
        let pts = CorpusSpec::paper_points();
        let e10 = g.retrieval_energy_j(pts[0].embedding_bytes());
        let e200 = g.retrieval_energy_j(pts[2].embedding_bytes());
        assert!((e200 / e10 - 20.0).abs() < 1.0); // 20× the bytes
        assert!(e200 > 100.0, "200 GB retrieval energy {e200} J");
    }
}
