#![warn(missing_docs)]

//! Retrieval-augmented generation (RAG) with exact nearest-neighbour
//! search (ENNS) on CPU, a GPU model, and the simulated compute-in-SRAM
//! device (paper §5.3).
//!
//! The pipeline embeds a query, scores it against every corpus chunk by
//! inner product (ENNS — no approximate index, no recall loss), gathers
//! the top-k chunks, and hands them to the generation model. The paper
//! shows the compute-in-SRAM device accelerating the retrieval stage by
//! 4.8×–6.6× over an optimized CPU baseline while using a small fraction
//! of a GPU's energy.
//!
//! Following the paper's methodology:
//!
//! * corpus embeddings live in a **simulated HBM2e** off-chip memory
//!   ([`hbm_sim`]); everything else is charged on the simulated APU;
//! * embeddings are low-precision (values in −6..=6) so dot products fit
//!   the device's 16-bit lanes; CPU and device produce bit-identical
//!   scores;
//! * corpus sizes are parameterized — the paper's 10/50/200 GB points
//!   run timing-only, tests run functionally at small scale.

pub mod apu;
pub mod batch;
pub mod corpus;
pub mod cpu;
pub mod gpu;
pub mod ivf;
pub mod mutable;
pub mod pipeline;
pub mod serve;
pub mod topk;

pub use apu::{ApuRetriever, RagVariant, RetrievalBreakdown};
pub use batch::{
    retrieval_batch_key, retrieval_batch_key_for, retrieve_batch, run_boxed_batch,
    run_boxed_batch_at, BatchResult, MAX_BATCH,
};
pub use corpus::{ClusteredCorpus, CorpusShard, CorpusSpec, EmbeddingStore};
pub use cpu::{cpu_model_retrieval_ms, cpu_retrieve, CpuRetrievalModel};
pub use gpu::{GenerationModel, GpuRetrievalModel};
pub use ivf::{IndexMode, IvfIndex, IvfStats, DEFAULT_NLIST, DEFAULT_NPROBE};
pub use mutable::{
    flat_scan, CompactionPlan, CompactionTicket, CorpusStats, MutableCorpus, Segment,
    ShardSnapshot, Snapshot,
};
pub use pipeline::{EndToEnd, Platform, RagPipeline};
pub use serve::{
    QueryCompletion, QuerySpec, QueryTicket, RagServer, ReplicaStats, ServeConfig, ServeReport,
    ShardedRagServer,
};
pub use topk::{drop_tombstoned, merge_top_k, offset_hits, top_k};

pub(crate) use apu::{inject_l2 as apu_inject_l2, tile_top_k as apu_tile_top_k};

/// Crate-wide result alias (errors are [`apu_sim::Error`]).
pub type Result<T> = apu_sim::Result<T>;

/// A retrieval hit: chunk id and (unbiased) inner-product score.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hit {
    /// Corpus chunk index.
    pub chunk: u32,
    /// Inner-product score.
    pub score: i32,
}
