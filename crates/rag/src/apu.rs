//! ENNS retrieval on the simulated compute-in-SRAM device.
//!
//! Scores are inner products of the query against every chunk embedding.
//! Two mappings mirror the paper's optimization story:
//!
//! * **spatial** (no-opt): embeddings stay chunk-major; each VR pass
//!   holds `l / 512` chunks as 512-lane groups (384 dims zero-padded),
//!   multiplies against a query pattern, reduces every group with an
//!   intra-VR subgroup sum, and extracts the scattered scores one PIO
//!   element at a time.
//! * **temporal** (opt1): embeddings are dimension-major; one chunk per
//!   lane, dimensions iterate in time with element-wise
//!   multiply-accumulate, and per-tile top-k candidates leave through a
//!   short extraction phase. Opt2 byte-packs dimension pairs (halving
//!   the on-chip ingress), opt3 pre-stages the query in a
//!   broadcast-friendly form so each dimension broadcast is a single
//!   immediate copy instead of a PIO fetch.
//!
//! Off-chip embedding residency follows the paper: the matrix streams
//! from the *simulated HBM2e* ([`hbm_sim`]); the simulator injects the
//! streamed data directly into each core's L2 (zero APU-side charge) and
//! the APU pays the on-chip L2→L1→VR movement and all compute.

use apu_sim::{ApuContext, ApuDevice, CoreTask, Cycles, Error, TaskReport, Vmr, Vr};
use gvml::prelude::*;
use hbm_sim::MemorySystem;
use serde::{Deserialize, Serialize};

use crate::corpus::{EmbeddingStore, EMBED_DIM};
use crate::cpu::top_k;
use crate::{Hit, Result};

/// Padded per-chunk group width for the spatial mapping (384 → 512).
const PAD_DIM: usize = 512;
/// Score bias making i16 inner products non-negative for unsigned
/// reductions.
const SCORE_BIAS: u16 = 16384;
/// Subgroup width for the per-tile top-k candidate reduction.
const TOPK_SG: usize = 2048;

const VR_PLANE: Vr = Vr::new(0);
const VR_Q: Vr = Vr::new(2);
const VR_Q2: Vr = Vr::new(3);
const VR_ACC: Vr = Vr::new(4);
const VR_T: Vr = Vr::new(5);
const VR_T2: Vr = Vr::new(6);
const VR_IDX: Vr = Vr::new(7);
const VR_MAXV: Vr = Vr::new(8);
const VR_MAXT: Vr = Vr::new(9);
const VR_CONST: Vr = Vr::new(10);
const M0: Marker = Marker::new(0);

/// The Fig. 14 optimization variants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RagVariant {
    /// Spatial mapping, no optimizations.
    NoOpt,
    /// Communication-aware reduction mapping only.
    Opt1,
    /// DMA coalescing (byte packing) only, on the spatial mapping.
    Opt2,
    /// Broadcast-friendly query layout only, on the spatial mapping.
    Opt3,
    /// All three.
    AllOpts,
}

impl RagVariant {
    /// All variants in Fig. 14 order.
    pub const ALL: [RagVariant; 5] = [
        RagVariant::NoOpt,
        RagVariant::Opt1,
        RagVariant::Opt2,
        RagVariant::Opt3,
        RagVariant::AllOpts,
    ];

    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            RagVariant::NoOpt => "no opt",
            RagVariant::Opt1 => "opt1",
            RagVariant::Opt2 => "opt2",
            RagVariant::Opt3 => "opt3",
            RagVariant::AllOpts => "all opts",
        }
    }

    fn temporal(&self) -> bool {
        matches!(self, RagVariant::Opt1 | RagVariant::AllOpts)
    }

    fn packed(&self) -> bool {
        matches!(self, RagVariant::Opt2 | RagVariant::AllOpts)
    }

    fn imm_broadcast(&self) -> bool {
        matches!(self, RagVariant::Opt3 | RagVariant::AllOpts)
    }
}

/// Per-stage retrieval latency (the paper's Table 8 rows).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct RetrievalBreakdown {
    /// Embedding stream from the simulated HBM2e (ms).
    pub load_embedding_ms: f64,
    /// Query staging (µs).
    pub load_query_us: f64,
    /// Distance computation (ms).
    pub calc_distance_ms: f64,
    /// Per-tile top-k extraction and merge (ms).
    pub topk_ms: f64,
    /// Result return to the host (µs).
    pub return_us: f64,
}

impl RetrievalBreakdown {
    /// Total retrieval latency in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.load_embedding_ms
            + self.load_query_us / 1e3
            + self.calc_distance_ms
            + self.topk_ms
            + self.return_us / 1e3
    }

    /// Adds another breakdown stage-by-stage — a multi-kernel retrieval
    /// (e.g. an IVF centroid scan followed by cluster rescores) reports
    /// the summed per-stage latency of its sequential parts.
    pub fn accumulate(&mut self, other: &RetrievalBreakdown) {
        self.load_embedding_ms += other.load_embedding_ms;
        self.load_query_us += other.load_query_us;
        self.calc_distance_ms += other.calc_distance_ms;
        self.topk_ms += other.topk_ms;
        self.return_us += other.return_us;
    }
}

/// ENNS retriever bound to one optimization variant.
#[derive(Debug, Clone, Copy)]
pub struct ApuRetriever {
    /// The optimization variant to run.
    pub variant: RagVariant,
}

impl ApuRetriever {
    /// Creates a retriever.
    pub fn new(variant: RagVariant) -> Self {
        ApuRetriever { variant }
    }

    /// Runs one top-k retrieval.
    ///
    /// # Errors
    ///
    /// Fails on device errors, or if a functional run is requested on a
    /// size-only store.
    pub fn retrieve(
        &self,
        dev: &mut ApuDevice,
        hbm: &mut MemorySystem,
        store: &EmbeddingStore,
        query: &[i16],
        k: usize,
    ) -> Result<(Vec<Hit>, RetrievalBreakdown, TaskReport)> {
        if query.len() != EMBED_DIM {
            return Err(Error::InvalidArg(format!(
                "query dimension {} != {EMBED_DIM}",
                query.len()
            )));
        }
        let functional = dev.config().exec_mode.is_functional();
        if functional && !store.is_materialized() {
            return Err(Error::InvalidArg(
                "functional retrieval needs a materialized store".into(),
            ));
        }
        let mut breakdown = RetrievalBreakdown::default();

        // ---- 1. embedding stream from the simulated HBM2e ----
        let stream = hbm.stream_read(0, store.spec().embedding_bytes());
        // The paper: the optimized (dimension-major) layout improves
        // access alignment (8.2 ms → 6.1 ms at 200 GB).
        let layout_eff = if self.variant.temporal() { 1.0 } else { 0.75 };
        breakdown.load_embedding_ms = stream.millis() / layout_eff;

        // ---- 2..4. on-device stages ----
        let (hits, report) = if self.variant.temporal() {
            self.run_temporal(dev, store, query, k, &mut breakdown)?
        } else {
            self.run_spatial(dev, store, query, k, &mut breakdown)?
        };

        // ---- 5. return top-k to the host ----
        breakdown.return_us = (k as f64 * 61.0 + 7_500.0) / dev.config().clock.hz() * 1e6;
        Ok((hits, breakdown, report))
    }

    fn run_spatial(
        &self,
        dev: &mut ApuDevice,
        store: &EmbeddingStore,
        query: &[i16],
        k: usize,
        breakdown: &mut RetrievalBreakdown,
    ) -> Result<(Vec<Hit>, TaskReport)> {
        let l = dev.config().vr_len;
        let packed = self.variant.packed();
        // chunks per pass: 512-lane groups, halved width when packed
        let group = if packed { PAD_DIM / 2 } else { PAD_DIM };
        let chunks_per_pass = l / group;
        let n_chunks = store.spec().chunks;
        let n_passes = n_chunks.div_ceil(chunks_per_pass);
        let functional = dev.config().exec_mode.is_functional();
        let clock = dev.config().clock;

        // Host-side staging of pass data (the simulated-HBM content).
        let make_pass = |pass: usize| -> Vec<u16> {
            let mut out = vec![0u16; l];
            if !functional {
                return out;
            }
            for s in 0..chunks_per_pass {
                let c = pass * chunks_per_pass + s;
                if c >= n_chunks {
                    break;
                }
                let e = store.embedding(c);
                if packed {
                    for j in 0..EMBED_DIM / 2 {
                        let lo = (e[2 * j] + 6) as u16;
                        let hi = (e[2 * j + 1] + 6) as u16;
                        out[s * group + j] = lo | (hi << 8);
                    }
                } else {
                    for (j, &v) in e.iter().enumerate() {
                        out[s * group + j] = v as u16;
                    }
                }
            }
            out
        };

        // The paper's retrieval kernel issues one vector-command stream
        // (its no-opt 200 GB distance time matches a single-core issue
        // rate almost exactly); mirror that.
        let cores = 1usize;
        let per_core = n_passes.div_ceil(cores);
        let mut partials: Vec<Vec<Hit>> = vec![Vec::new(); cores];
        let mut dist_cycles = Cycles::ZERO;
        let mut query_cycles = Cycles::ZERO;
        let report = {
            let make_pass = &make_pass;
            let variant = self.variant;
            let partial_refs: Vec<&mut Vec<Hit>> = partials.iter_mut().collect();
            let mut tasks: Vec<CoreTask<'_>> = Vec::new();
            let dist_ref = &mut dist_cycles;
            let query_ref = &mut query_cycles;
            // Collect per-core stage cycles through shared cells.
            let dist_acc = std::cell::RefCell::new((Cycles::ZERO, Cycles::ZERO));
            let dist_acc_ref = &dist_acc;
            for (core_id, slot) in partial_refs.into_iter().enumerate() {
                let lo = core_id * per_core;
                let hi = ((core_id + 1) * per_core).min(n_passes);
                tasks.push(Box::new(move |ctx: &mut ApuContext<'_>| {
                    let t0 = ctx.core().cycles();
                    // query staging: small DMA-class transfer + pattern
                    // lookup tables in L3
                    stage_query_spatial(ctx, query, packed, variant.imm_broadcast())?;
                    let tq = ctx.core().cycles() - t0;
                    let t1 = ctx.core().cycles();
                    for pass in lo..hi {
                        let data = make_pass(pass);
                        inject_l2(ctx, &data)?;
                        ctx.dma_l2_to_l1(Vmr::new(47))?;
                        ctx.load(VR_PLANE, Vmr::new(47))?;
                        let core = ctx.core_mut();
                        if packed {
                            // unpack biased bytes and form partial products
                            core.cpy_imm_16(VR_CONST, 0x00FF)?;
                            core.and_16(VR_T, VR_PLANE, VR_CONST)?;
                            core.sr_imm_u16(VR_T2, VR_PLANE, 8)?;
                            core.cpy_imm_16(VR_CONST, 6)?;
                            core.sub_s16(VR_T, VR_T, VR_CONST)?;
                            core.sub_s16(VR_T2, VR_T2, VR_CONST)?;
                            core.mul_s16(VR_T, VR_T, VR_Q)?;
                            core.mul_s16(VR_T2, VR_T2, VR_Q2)?;
                            core.add_s16(VR_T, VR_T, VR_T2)?;
                        } else {
                            core.mul_s16(VR_T, VR_PLANE, VR_Q)?;
                        }
                        core.add_subgrp_s16(VR_T, VR_T, group, group)?;
                        // scattered score extraction
                        let pairs: Vec<(usize, usize)> = (0..chunks_per_pass)
                            .map(|s| s * group)
                            .map(|p| (p, p))
                            .collect();
                        let mut scores = Vec::with_capacity(chunks_per_pass);
                        for (_, src) in &pairs {
                            scores.push(ctx.pio_get(VR_T, *src)?);
                        }
                        for (s, v) in scores.into_iter().enumerate() {
                            let c = pass * chunks_per_pass + s;
                            if c < n_chunks {
                                slot.push(Hit {
                                    chunk: c as u32,
                                    score: (v as i16) as i32,
                                });
                            }
                        }
                        *slot = top_k(std::mem::take(slot), k);
                    }
                    let td = ctx.core().cycles() - t1;
                    let mut acc = dist_acc_ref.borrow_mut();
                    acc.0 = acc.0.max(tq);
                    acc.1 = acc.1.max(td);
                    Ok(())
                }));
            }
            let report = dev.run_parallel(tasks)?;
            let acc = dist_acc.borrow();
            *query_ref = acc.0;
            *dist_ref = acc.1;
            report
        };
        breakdown.load_query_us = clock.cycles_to_secs(query_cycles) * 1e6;
        breakdown.calc_distance_ms = clock.cycles_to_secs(dist_cycles) * 1e3;
        breakdown.topk_ms = 0.0; // merged on the CP during extraction
        let hits = top_k(partials.into_iter().flatten().collect(), k);
        Ok((hits, report))
    }

    fn run_temporal(
        &self,
        dev: &mut ApuDevice,
        store: &EmbeddingStore,
        query: &[i16],
        k: usize,
        breakdown: &mut RetrievalBreakdown,
    ) -> Result<(Vec<Hit>, TaskReport)> {
        let l = dev.config().vr_len;
        let packed = self.variant.packed();
        let imm = self.variant.imm_broadcast();
        let n_chunks = store.spec().chunks;
        let n_tiles = n_chunks.div_ceil(l);
        let functional = dev.config().exec_mode.is_functional();
        let clock = dev.config().clock;

        // Host staging of one dimension plane (or packed pair plane).
        let make_plane = |tile: usize, dim_pair: usize| -> Vec<u16> {
            let mut out = vec![0u16; l];
            if !functional {
                return out;
            }
            for (lane, slot) in out.iter_mut().enumerate() {
                let c = tile * l + lane;
                if c >= n_chunks {
                    break;
                }
                let e = store.embedding(c);
                *slot = if packed {
                    let lo = (e[2 * dim_pair] + 6) as u16;
                    let hi = (e[2 * dim_pair + 1] + 6) as u16;
                    lo | (hi << 8)
                } else {
                    e[dim_pair] as u16
                };
            }
            out
        };

        // Single command stream, as in the paper (see run_spatial).
        let cores = 1usize;
        let per_core = n_tiles.div_ceil(cores);
        let mut partials: Vec<Vec<Hit>> = vec![Vec::new(); cores];
        let stage_acc = std::cell::RefCell::new((Cycles::ZERO, Cycles::ZERO, Cycles::ZERO));
        let report = {
            let make_plane = &make_plane;
            let stage_ref = &stage_acc;
            let mut tasks: Vec<CoreTask<'_>> = Vec::new();
            for (core_id, slot) in partials.iter_mut().enumerate() {
                let lo = core_id * per_core;
                let hi = ((core_id + 1) * per_core).min(n_tiles);
                tasks.push(Box::new(move |ctx: &mut ApuContext<'_>| {
                    let t0 = ctx.core().cycles();
                    stage_query_temporal(ctx, query, imm)?;
                    let tq = ctx.core().cycles() - t0;
                    let mut td = Cycles::ZERO;
                    let mut tt = Cycles::ZERO;
                    for tile in lo..hi {
                        let t1 = ctx.core().cycles();
                        ctx.core_mut().cpy_imm_16(VR_ACC, 0)?;
                        let dims = if packed { EMBED_DIM / 2 } else { EMBED_DIM };
                        for d in 0..dims {
                            let plane = make_plane(tile, d);
                            inject_l2(ctx, &plane)?;
                            ctx.dma_l2_to_l1(Vmr::new(47))?;
                            ctx.load(VR_PLANE, Vmr::new(47))?;
                            if packed {
                                broadcast_q(ctx, query[2 * d], imm, VR_Q)?;
                                broadcast_q(ctx, query[2 * d + 1], imm, VR_Q2)?;
                                let core = ctx.core_mut();
                                core.cpy_imm_16(VR_CONST, 0x00FF)?;
                                core.and_16(VR_T, VR_PLANE, VR_CONST)?;
                                core.sr_imm_u16(VR_T2, VR_PLANE, 8)?;
                                core.cpy_imm_16(VR_CONST, 6)?;
                                core.sub_s16(VR_T, VR_T, VR_CONST)?;
                                core.sub_s16(VR_T2, VR_T2, VR_CONST)?;
                                core.mul_s16(VR_T, VR_T, VR_Q)?;
                                core.mul_s16(VR_T2, VR_T2, VR_Q2)?;
                                core.add_s16(VR_ACC, VR_ACC, VR_T)?;
                                core.add_s16(VR_ACC, VR_ACC, VR_T2)?;
                            } else {
                                broadcast_q(ctx, query[d], imm, VR_Q)?;
                                let core = ctx.core_mut();
                                core.mul_s16(VR_T, VR_PLANE, VR_Q)?;
                                core.add_s16(VR_ACC, VR_ACC, VR_T)?;
                            }
                        }
                        td += ctx.core().cycles() - t1;

                        // ---- per-tile top-k ----
                        let t2 = ctx.core().cycles();
                        let core = ctx.core_mut();
                        core.cpy_imm_16(VR_CONST, SCORE_BIAS)?;
                        core.add_u16(VR_ACC, VR_ACC, VR_CONST)?;
                        // zero out lanes past the corpus on the last tile
                        let valid = (n_chunks - tile * l).min(l);
                        if valid < l {
                            core.create_index_u16(VR_IDX)?;
                            core.cpy_imm_16(VR_T, valid as u16)?;
                            core.ge_u16(M0, VR_IDX, VR_T)?;
                            core.cpy_imm_16_msk(VR_ACC, 0, M0)?;
                        }
                        core.create_index_u16(VR_IDX)?;
                        let cands = tile_top_k(ctx, k)?;
                        for (tag, biased) in cands {
                            let c = tile * l + tag as usize;
                            if c < n_chunks && biased > 0 {
                                slot.push(Hit {
                                    chunk: c as u32,
                                    score: biased as i32 - SCORE_BIAS as i32,
                                });
                            }
                        }
                        *slot = top_k(std::mem::take(slot), k);
                        tt += ctx.core().cycles() - t2;
                    }
                    let mut acc = stage_ref.borrow_mut();
                    acc.0 = acc.0.max(tq);
                    acc.1 = acc.1.max(td);
                    acc.2 = acc.2.max(tt);
                    Ok(())
                }));
            }
            dev.run_parallel(tasks)?
        };
        let acc = stage_acc.borrow();
        breakdown.load_query_us = clock.cycles_to_secs(acc.0) * 1e6;
        breakdown.calc_distance_ms = clock.cycles_to_secs(acc.1) * 1e3;
        breakdown.topk_ms = clock.cycles_to_secs(acc.2) * 1e3;
        let hits = top_k(partials.into_iter().flatten().collect(), k);
        Ok((hits, report))
    }
}

/// Injects simulated-HBM data directly into the core's L2 (the paper
/// charges off-chip time to the HBM model, not the device DMA tables).
pub(crate) fn inject_l2(ctx: &mut ApuContext<'_>, words: &[u16]) -> Result<()> {
    if ctx.core().is_functional() {
        let bytes: Vec<u8> = words.iter().flat_map(|w| w.to_le_bytes()).collect();
        let l2 = ctx.core_mut().l2_mut();
        l2[..bytes.len()].copy_from_slice(&bytes);
    }
    Ok(())
}

/// Stages the query for the spatial mapping: a small DMA-class transfer
/// plus L3 pattern tables, then one-time lookups building the repeated
/// query pattern VR(s).
fn stage_query_spatial(
    ctx: &mut ApuContext<'_>,
    query: &[i16],
    packed: bool,
    friendly: bool,
) -> Result<()> {
    // query upload: one small transfer (charged at DMA-class cost)
    let cost = ctx.timing().dma_l4_l2(EMBED_DIM * 2);
    ctx.core_mut()
        .charge_cycles(apu_sim::core::CycleClass::Dma, cost);
    if friendly {
        // broadcast-friendly prep: per-dimension reformatting by the CP
        let t = ctx.timing();
        let prep = Cycles::new((t.pio_ld_per_elem + t.cpy_imm) * EMBED_DIM as u64);
        ctx.core_mut()
            .charge_cycles(apu_sim::core::CycleClass::Pio, prep);
    }
    // stage the pattern table in L3 and build the repeated query pattern
    let group = if packed { PAD_DIM / 2 } else { PAD_DIM };
    let mut even = vec![0u16; group];
    let mut odd = vec![0u16; group];
    for j in 0..EMBED_DIM {
        if packed {
            if j % 2 == 0 {
                even[j / 2] = query[j] as u16;
            } else {
                odd[j / 2] = query[j] as u16;
            }
        } else {
            even[j] = query[j] as u16;
        }
    }
    ctx.l3_write_u16s(0, &even)?;
    ctx.core_mut().create_grp_index_u16(VR_IDX, group)?;
    ctx.lookup(VR_Q, VR_IDX, 0, group)?;
    if packed {
        ctx.l3_write_u16s(group * 2, &odd)?;
        ctx.lookup(VR_Q2, VR_IDX, group * 2, group)?;
    }
    Ok(())
}

/// Stages the query for the temporal mapping.
fn stage_query_temporal(ctx: &mut ApuContext<'_>, _query: &[i16], friendly: bool) -> Result<()> {
    let cost = ctx.timing().dma_l4_l2(EMBED_DIM * 2);
    ctx.core_mut()
        .charge_cycles(apu_sim::core::CycleClass::Dma, cost);
    if friendly {
        let t = ctx.timing();
        let prep = Cycles::new((t.pio_ld_per_elem + t.cpy_imm) * EMBED_DIM as u64);
        ctx.core_mut()
            .charge_cycles(apu_sim::core::CycleClass::Pio, prep);
    }
    Ok(())
}

/// Broadcasts one query scalar across the VR: a PIO fetch plus masked
/// immediate (opt1) or a direct immediate from the broadcast-friendly
/// staged form (opt3).
fn broadcast_q(ctx: &mut ApuContext<'_>, value: i16, friendly: bool, dst: Vr) -> Result<()> {
    if !friendly {
        let cost = ctx.timing().pio_ld(1);
        ctx.core_mut()
            .charge_cycles(apu_sim::core::CycleClass::Pio, cost);
    }
    ctx.core_mut().cpy_imm_16(dst, value as u16)?;
    Ok(())
}

/// Exact per-tile top-k over the biased scores in `VR_ACC` with lane
/// indices in `VR_IDX`: one subgroup-max pass produces `l / TOPK_SG`
/// candidates; each selection masks the winner out and refreshes only
/// its subgroup's candidate. Destroys `VR_ACC`.
pub(crate) fn tile_top_k(ctx: &mut ApuContext<'_>, k: usize) -> Result<Vec<(u16, u16)>> {
    let l = ctx.core().vr_len();
    let sg = TOPK_SG.min(l);
    let n_sub = l / sg;
    ctx.core_mut()
        .max_subgrp_u16(VR_MAXV, VR_ACC, sg, sg, Some((VR_MAXT, VR_IDX)))?;
    let mut cands: Vec<(usize, u16, u16)> = Vec::with_capacity(n_sub); // (head, score, tag)
    for s in 0..n_sub {
        let head = s * sg;
        let v = ctx.pio_get(VR_MAXV, head)?;
        let t = ctx.pio_get(VR_MAXT, head)?;
        cands.push((head, v, t));
    }
    let mut out = Vec::with_capacity(k);
    for _ in 0..k {
        // best candidate; ties toward the lower tag (lower chunk id)
        let Some(best_i) = cands
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| a.1.cmp(&b.1).then(b.2.cmp(&a.2)))
            .map(|(i, _)| i)
        else {
            break;
        };
        let (head, v, t) = cands[best_i];
        out.push((t, v));
        // mask the winner out and refresh its subgroup's candidate
        {
            let core = ctx.core_mut();
            core.eq_imm_16(M0, VR_IDX, t)?;
            core.cpy_imm_16_msk(VR_ACC, 0, M0)?;
            core.max_subgrp_u16(VR_MAXV, VR_ACC, sg, sg, Some((VR_MAXT, VR_IDX)))?;
        }
        let v2 = ctx.pio_get(VR_MAXV, head)?;
        let t2 = ctx.pio_get(VR_MAXT, head)?;
        cands[best_i] = (head, v2, t2);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusSpec;
    use crate::cpu::cpu_retrieve;
    use apu_sim::{ExecMode, SimConfig};
    use hbm_sim::DramSpec;

    fn setup(chunks: usize) -> (ApuDevice, MemorySystem, EmbeddingStore) {
        let dev = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
        let hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let store = EmbeddingStore::materialized(
            CorpusSpec {
                corpus_bytes: 0,
                chunks,
            },
            42,
        );
        (dev, hbm, store)
    }

    fn check_variant(variant: RagVariant, chunks: usize) {
        let (mut dev, mut hbm, store) = setup(chunks);
        let q = store.query(1);
        let (expected, _) = cpu_retrieve(&store, &q, 5, 4);
        let r = ApuRetriever::new(variant);
        let (hits, breakdown, report) = r.retrieve(&mut dev, &mut hbm, &store, &q, 5).unwrap();
        assert_eq!(hits, expected, "{} top-5 mismatch", variant.label());
        assert!(breakdown.total_ms() > 0.0);
        assert!(report.cycles.get() > 0);
    }

    #[test]
    fn no_opt_matches_cpu() {
        check_variant(RagVariant::NoOpt, 5000);
    }

    #[test]
    fn opt1_matches_cpu() {
        check_variant(RagVariant::Opt1, 5000);
    }

    #[test]
    fn opt2_matches_cpu() {
        check_variant(RagVariant::Opt2, 5000);
    }

    #[test]
    fn opt3_matches_cpu() {
        check_variant(RagVariant::Opt3, 5000);
    }

    #[test]
    fn all_opts_matches_cpu() {
        check_variant(RagVariant::AllOpts, 5000);
    }

    #[test]
    fn multi_tile_temporal_matches_cpu() {
        // more chunks than one VR: exercises cross-tile merging and the
        // last-tile padding mask
        check_variant(RagVariant::AllOpts, 40_000);
    }

    #[test]
    fn opt1_is_the_big_win() {
        let (mut dev, mut hbm, store) = setup(65_536);
        let q = store.query(2);
        let run = |v: RagVariant, dev: &mut ApuDevice, hbm: &mut MemorySystem| {
            let (_, b, _) = ApuRetriever::new(v)
                .retrieve(dev, hbm, &store, &q, 5)
                .unwrap();
            b
        };
        let base = run(RagVariant::NoOpt, &mut dev, &mut hbm);
        let o1 = run(RagVariant::Opt1, &mut dev, &mut hbm);
        let all = run(RagVariant::AllOpts, &mut dev, &mut hbm);
        assert!(
            o1.calc_distance_ms * 3.0 < base.calc_distance_ms,
            "opt1 {} vs base {}",
            o1.calc_distance_ms,
            base.calc_distance_ms
        );
        assert!(all.calc_distance_ms <= o1.calc_distance_ms);
        assert!(all.total_ms() < base.total_ms());
    }

    #[test]
    fn timing_only_runs_at_paper_scale() {
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(1 << 20)
                .with_exec_mode(ExecMode::TimingOnly),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let spec = CorpusSpec::from_corpus_bytes(10_000_000_000);
        let store = EmbeddingStore::size_only(spec, 0);
        let q = vec![1i16; EMBED_DIM];
        let (_, b, _) = ApuRetriever::new(RagVariant::AllOpts)
            .retrieve(&mut dev, &mut hbm, &store, &q, 5)
            .unwrap();
        // Paper Table 8 at 10 GB: ~3.9 ms total, ~0.3 ms embedding load.
        assert!(
            (0.15..0.6).contains(&b.load_embedding_ms),
            "embedding load {} ms",
            b.load_embedding_ms
        );
        assert!(
            (1.0..12.0).contains(&b.total_ms()),
            "total {} ms",
            b.total_ms()
        );
    }
}
