//! End-to-end RAG: retrieval on a chosen platform plus the (platform
//! independent) generation stage, with energy accounting (paper Figs.
//! 14–15).

use serde::{Deserialize, Serialize};

use apu_sim::{ApuDevice, DeviceQueue, Frequency, Priority, QueueConfig, TaskReport};
use cis_energy::{ApuPowerModel, CpuPowerModel};
use hbm_sim::{DramEnergy, EnergyParams, MemorySystem};

use crate::apu::{ApuRetriever, RagVariant, RetrievalBreakdown};
use crate::corpus::EmbeddingStore;
use crate::cpu::CpuRetrievalModel;
use crate::gpu::{GenerationModel, GpuRetrievalModel};
use crate::{Hit, Result};

/// Fixed per-query host-interface energy on the APU board (invocation,
/// PCIe, host driver). Calibrated alongside the rail model so the
/// APU:GPU energy ratio reproduces the paper's 54×–118× band at the
/// small-corpus end.
const APU_QUERY_OVERHEAD_J: f64 = 0.1;

/// Retrieval platform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Platform {
    /// Modeled Xeon Gold 6230R (FAISS flat, calibrated).
    CpuModel,
    /// Modeled NVIDIA A6000.
    Gpu,
    /// Simulated compute-in-SRAM device with the given variant.
    Apu(RagVariant),
}

impl Platform {
    /// Display label.
    pub fn label(&self) -> String {
        match self {
            Platform::CpuModel => "CPU".into(),
            Platform::Gpu => "GPU".into(),
            Platform::Apu(v) => format!("CIS {}", v.label()),
        }
    }
}

/// One end-to-end measurement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EndToEnd {
    /// Platform label.
    pub platform: String,
    /// Retrieval latency (ms).
    pub retrieval_ms: f64,
    /// Generation TTFT (ms).
    pub generation_ms: f64,
    /// Retrieval energy (J), when the platform models it.
    pub retrieval_energy_j: Option<f64>,
    /// APU energy fractions [static, compute, dram, other, cache], when
    /// applicable.
    pub apu_energy_fractions: Option<[f64; 5]>,
}

impl EndToEnd {
    /// Total time-to-interactive latency (ms).
    pub fn total_ms(&self) -> f64 {
        self.retrieval_ms + self.generation_ms
    }
}

/// The end-to-end pipeline evaluator.
#[derive(Debug, Clone)]
pub struct RagPipeline {
    /// Generation model (shared by every platform).
    pub generation: GenerationModel,
    /// CPU retrieval model.
    pub cpu: CpuRetrievalModel,
    /// GPU retrieval model.
    pub gpu: GpuRetrievalModel,
    /// APU rail power model.
    pub apu_power: ApuPowerModel,
    /// Retrieved chunks per query.
    pub k: usize,
}

impl RagPipeline {
    /// Paper-calibrated pipeline.
    pub fn paper() -> Self {
        RagPipeline {
            generation: GenerationModel::llama31_8b_a6000(),
            cpu: CpuRetrievalModel::xeon_6230r(),
            gpu: GpuRetrievalModel::a6000(),
            apu_power: ApuPowerModel::leda_e(),
            k: 5,
        }
    }

    /// Evaluates one platform at one corpus point. APU platforms run the
    /// simulator (`dev`/`hbm` supplied by the caller so state persists
    /// across points).
    ///
    /// # Errors
    ///
    /// Propagates device errors for APU platforms.
    pub fn run(
        &self,
        platform: Platform,
        store: &EmbeddingStore,
        query: &[i16],
        dev: &mut ApuDevice,
        hbm: &mut MemorySystem,
    ) -> Result<EndToEnd> {
        let generation_ms = self.generation.ttft_ms();
        let bytes = store.spec().embedding_bytes();
        match platform {
            Platform::CpuModel => {
                let ms = self.cpu.retrieval_ms(bytes);
                let energy = CpuPowerModel::xeon_6230r().busy_energy_j(ms / 1e3);
                Ok(EndToEnd {
                    platform: platform.label(),
                    retrieval_ms: ms,
                    generation_ms,
                    retrieval_energy_j: Some(energy),
                    apu_energy_fractions: None,
                })
            }
            Platform::Gpu => Ok(EndToEnd {
                platform: platform.label(),
                retrieval_ms: self.gpu.retrieval_ms(bytes),
                generation_ms,
                retrieval_energy_j: Some(self.gpu.retrieval_energy_j(bytes)),
                apu_energy_fractions: None,
            }),
            Platform::Apu(variant) => {
                let retriever = ApuRetriever::new(variant);
                let hbm_stats_before = hbm.stats();
                let horizon_before = hbm.horizon();
                // Retrieval goes through the device command queue (one
                // closed-loop client): same kernel, identical results,
                // with dispatch accounted like production serving.
                let (_hits, breakdown, report) = {
                    let k = self.k;
                    let hbm_cell = std::cell::RefCell::new(&mut *hbm);
                    let mut queue = DeviceQueue::new(&mut *dev, QueueConfig::default());
                    let handle = queue.submit(
                        apu_sim::TaskSpec::typed(|dev: &mut ApuDevice| {
                            let mut hbm = hbm_cell.borrow_mut();
                            let (hits, breakdown, report) =
                                retriever.retrieve(dev, &mut hbm, store, query, k)?;
                            Ok((report.clone(), (hits, breakdown, report)))
                        })
                        .priority(Priority::High),
                    )?;
                    queue.wait(handle)?;
                    let done = queue
                        .drain()?
                        .into_iter()
                        .next()
                        .expect("one submitted task retires");
                    done.into_output::<(Vec<Hit>, RetrievalBreakdown, TaskReport)>()?
                };
                // DRAM energy from the HBM model for this stream.
                let mut delta = hbm.stats();
                delta.activates -= hbm_stats_before.activates;
                delta.reads -= hbm_stats_before.reads;
                delta.writes -= hbm_stats_before.writes;
                delta.refreshes -= hbm_stats_before.refreshes;
                delta.row_hits -= hbm_stats_before.row_hits;
                delta.bytes -= hbm_stats_before.bytes;
                let dram = DramEnergy::from_stats(
                    hbm.spec(),
                    &EnergyParams::for_spec(hbm.spec()),
                    &delta,
                    hbm.horizon() - horizon_before,
                );
                // APU rail energy over the whole retrieval window.
                let mut window = report.clone();
                window.duration = std::time::Duration::from_secs_f64(breakdown.total_ms() / 1e3);
                let apu_e = self
                    .apu_power
                    .breakdown(&window, Frequency::LEDA_E, dram.total_j());
                let total_e = apu_e.total_j() + APU_QUERY_OVERHEAD_J;
                Ok(EndToEnd {
                    platform: platform.label(),
                    retrieval_ms: breakdown.total_ms(),
                    generation_ms,
                    retrieval_energy_j: Some(total_e),
                    apu_energy_fractions: Some(apu_e.fractions()),
                })
            }
        }
    }
}

impl Default for RagPipeline {
    fn default() -> Self {
        RagPipeline::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusSpec, EMBED_DIM};
    use apu_sim::{ExecMode, SimConfig};
    use hbm_sim::DramSpec;

    fn paper_run(platform: Platform, spec: CorpusSpec) -> EndToEnd {
        let pipeline = RagPipeline::paper();
        let mut dev = ApuDevice::new(
            SimConfig::default()
                .with_l4_bytes(1 << 20)
                .with_exec_mode(ExecMode::TimingOnly),
        );
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let store = EmbeddingStore::size_only(spec, 0);
        let q = vec![1i16; EMBED_DIM];
        pipeline
            .run(platform, &store, &q, &mut dev, &mut hbm)
            .unwrap()
    }

    #[test]
    fn retrieval_share_grows_with_corpus_on_cpu() {
        // Paper: CPU retrieval share 4.3% at 10 GB → 50.5% at 200 GB.
        let pts = CorpusSpec::paper_points();
        let small = paper_run(Platform::CpuModel, pts[0]);
        let large = paper_run(Platform::CpuModel, pts[2]);
        let share_small = small.retrieval_ms / small.total_ms();
        let share_large = large.retrieval_ms / large.total_ms();
        assert!(share_small < 0.12, "share at 10 GB: {share_small}");
        assert!(
            (0.35..0.65).contains(&share_large),
            "share at 200 GB: {share_large}"
        );
    }

    #[test]
    fn apu_matches_gpu_end_to_end_and_beats_cpu() {
        let pts = CorpusSpec::paper_points();
        let cpu = paper_run(Platform::CpuModel, pts[2]);
        let gpu = paper_run(Platform::Gpu, pts[2]);
        let apu = paper_run(Platform::Apu(RagVariant::AllOpts), pts[2]);
        // Paper: 1.75× end-to-end over CPU at 200 GB, GPU-level latency.
        let speedup = cpu.total_ms() / apu.total_ms();
        assert!((1.2..2.5).contains(&speedup), "e2e speedup {speedup}");
        let vs_gpu = apu.total_ms() / gpu.total_ms();
        assert!((0.8..1.4).contains(&vs_gpu), "APU/GPU e2e ratio {vs_gpu}");
    }

    #[test]
    fn retrieval_speedup_band_over_cpu() {
        // Paper: 4.8×–6.6× retrieval speedup across corpus sizes; our
        // per-op calibration runs the distance loop slightly leaner, so
        // accept a band around it.
        for spec in CorpusSpec::paper_points() {
            let cpu = paper_run(Platform::CpuModel, spec);
            let apu = paper_run(Platform::Apu(RagVariant::AllOpts), spec);
            let s = cpu.retrieval_ms / apu.retrieval_ms;
            assert!(
                (3.0..16.0).contains(&s),
                "{}: retrieval speedup {s}",
                spec.label()
            );
        }
    }

    #[test]
    fn energy_ratio_lands_in_paper_band() {
        // Paper: 54.4×–117.9× less energy than the GPU.
        for spec in CorpusSpec::paper_points() {
            let gpu = paper_run(Platform::Gpu, spec);
            let apu = paper_run(Platform::Apu(RagVariant::AllOpts), spec);
            let ratio = gpu.retrieval_energy_j.unwrap() / apu.retrieval_energy_j.unwrap();
            assert!(
                (40.0..160.0).contains(&ratio),
                "{}: energy ratio {ratio}",
                spec.label()
            );
        }
    }

    #[test]
    fn apu_energy_is_static_dominated() {
        let apu = paper_run(
            Platform::Apu(RagVariant::AllOpts),
            CorpusSpec::paper_points()[2],
        );
        let f = apu.apu_energy_fractions.unwrap();
        assert!(f[0] > 0.5, "static fraction {}", f[0]);
        assert!(f[2] < 0.15, "dram fraction {}", f[2]);
    }
}
