//! Phoenix **String Match**: count whole-word occurrences of a small set
//! of keys in a large text (the original matches an encrypted keys file;
//! the comparison structure is identical, so the encryption step is
//! elided — the kernel is bottlenecked by the scan, not the 4-key
//! preprocessing).
//!
//! Optimization mapping follows [`crate::wordcount`]: opt1 replaces
//! per-occurrence FIFO emission with on-device `count_m` reductions,
//! opt2 byte-packs the text (the paper explicitly lists string match as
//! an input-packing beneficiary), opt3 has no broadcast tables to
//! shrink.

use apu_sim::{ApuDevice, TaskReport};
use gvml::prelude::*;

use crate::common::{map_reduce, parallel_tiles, OptConfig};
use crate::textops::TextKernel;
use crate::Result;

/// The four keys the suite searches for.
pub fn default_keys() -> Vec<&'static str> {
    vec!["memory", "vector", "hash", "energy"]
}

/// Generates a corpus (see [`crate::common::text_corpus`]).
pub fn generate(bytes: usize, seed: u64) -> String {
    crate::common::text_corpus(bytes, seed)
}

/// Single-threaded CPU reference: whole-word occurrence count per key.
pub fn cpu(text: &str, keys: &[&str]) -> Vec<u64> {
    let mut counts = vec![0u64; keys.len()];
    for token in text.split_ascii_whitespace() {
        for (i, k) in keys.iter().enumerate() {
            if token == *k {
                counts[i] += 1;
            }
        }
    }
    counts
}

/// Multi-threaded CPU implementation.
pub fn cpu_mt(text: &str, keys: &[&str], threads: usize) -> Vec<u64> {
    let bytes = text.as_bytes();
    let threads = threads.max(1);
    let mut bounds = vec![0usize];
    for t in 1..threads {
        let mut pos = bytes.len() * t / threads;
        while pos < bytes.len() && bytes[pos] != b' ' {
            pos += 1;
        }
        bounds.push(pos);
    }
    bounds.push(bytes.len());
    bounds.dedup();
    let chunks: Vec<&str> = bounds
        .windows(2)
        .map(|w| std::str::from_utf8(&bytes[w[0]..w[1]]).expect("ascii input"))
        .collect();
    map_reduce(
        &chunks,
        threads,
        |cs| {
            let mut acc = vec![0u64; keys.len()];
            for c in cs {
                for (i, n) in cpu(c, keys).into_iter().enumerate() {
                    acc[i] += n;
                }
            }
            acc
        },
        |mut a, b| {
            if a.is_empty() {
                return b;
            }
            for (x, y) in a.iter_mut().zip(b) {
                *x += y;
            }
            a
        },
    )
}

/// Estimated retired CPU instructions for Table 6 (paper: 101.8 G for
/// 512 MB ≈ 199 per byte — the original encrypts every word before
/// comparing, which dominates its instruction count).
pub fn cpu_inst_estimate(bytes: usize) -> u64 {
    bytes as u64 * 199
}

/// Device implementation.
///
/// # Errors
///
/// Fails on device-memory exhaustion, kernel errors, or keys longer than
/// [`crate::textops::MAX_PAT`].
pub fn apu(
    dev: &mut ApuDevice,
    text: &str,
    keys: &[&str],
    opts: OptConfig,
) -> Result<(Vec<u64>, TaskReport)> {
    let tk = TextKernel::new(dev, text.as_bytes(), opts.coalesced_dma)?;
    let n_tiles = tk.n_tiles;
    let max_len = keys.iter().map(|k| k.len()).max().unwrap_or(1);
    let max_planes = tk.planes_needed(max_len, true);
    let expected = (tk.starts_per_tile / tk.parities() / (6 * 16)).max(1);

    let (partials, report) = {
        let tk = &tk;
        parallel_tiles(dev, n_tiles, move |ctx, start, end| {
            let mut counts = vec![0u64; keys.len()];
            for tile in start..end {
                tk.load_tile(ctx, tile, max_planes)?;
                for (ki, key) in keys.iter().enumerate() {
                    for parity in 0..tk.parities() {
                        tk.mark(ctx, key.as_bytes(), true, parity, Marker::new(1))?;
                        if opts.reduction_mapping {
                            counts[ki] += tk.count(ctx, Marker::new(1))?;
                        } else {
                            let hits =
                                tk.extract_positions(ctx, tile, parity, Marker::new(1), expected)?;
                            counts[ki] += hits.len() as u64;
                        }
                    }
                }
            }
            Ok(counts)
        })?
    };

    let mut counts = vec![0u64; keys.len()];
    for p in partials {
        for (i, n) in p.into_iter().enumerate() {
            counts[i] += n;
        }
    }
    tk.free(dev)?;
    Ok((counts, report))
}

/// Analytical-framework twin.
pub fn model(est: &mut cis_model::LatencyEstimator, bytes: usize, keys: &[&str], opts: OptConfig) {
    let l = 32 * 1024;
    let packed = opts.coalesced_dma;
    let chars_per_tile = if packed { 2 * l } else { l } - 16;
    let cores = 4usize;
    let tiles_per_core = bytes.div_ceil(chars_per_tile).max(1).div_ceil(cores);
    let parities = if packed { 2 } else { 1 };
    let max_len = keys.iter().map(|k| k.len()).max().unwrap_or(1);
    for _ in 0..tiles_per_core {
        est.section("load");
        est.record(cis_model::TraceOp::DmaL4L2(2 * l * cores));
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        for _ in 0..max_len + 2 {
            est.gvml_cpy_16();
            est.record(cis_model::TraceOp::ShiftE(1));
        }
        est.gvml_create_grp_index_u16();
        est.gvml_cpy_imm_16();
        est.gvml_lt_u16();
        est.section("match");
        for key in keys {
            for _ in 0..parities {
                for _ in 0..key.len() + 2 {
                    est.gvml_eq_16();
                    est.record(cis_model::TraceOp::Op(apu_sim::VecOp::And16));
                }
                if opts.reduction_mapping {
                    est.gvml_count_m();
                } else {
                    est.gvml_cpy_from_mrk_16_msk((chars_per_tile / parities / 96).max(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(32 << 20))
    }

    #[test]
    fn cpu_mt_matches_single() {
        let text = generate(150_000, 1);
        let keys = default_keys();
        assert_eq!(cpu(&text, &keys), cpu_mt(&text, &keys, 8));
    }

    #[test]
    fn apu_variants_match_cpu() {
        let text = generate(70_000, 2);
        let keys = default_keys();
        let expected = cpu(&text, &keys);
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (counts, _) = apu(&mut dev, &text, &keys, o).unwrap();
            assert_eq!(counts, expected, "{}", o.label());
        }
    }

    #[test]
    fn keys_actually_occur() {
        let text = generate(100_000, 3);
        let counts = cpu(&text, &default_keys());
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
    }

    #[test]
    fn opt1_and_opt2_both_help() {
        let text = generate(200_000, 4);
        let keys = default_keys();
        let mut dev = device();
        let (_, base) = apu(&mut dev, &text, &keys, OptConfig::none()).unwrap();
        let (_, o1) = apu(&mut dev, &text, &keys, OptConfig::only_opt1()).unwrap();
        let (_, o2) = apu(&mut dev, &text, &keys, OptConfig::only_opt2()).unwrap();
        let (_, all) = apu(&mut dev, &text, &keys, OptConfig::all()).unwrap();
        assert!(o1.cycles < base.cycles);
        assert!(o2.cycles < base.cycles);
        assert!(all.cycles <= o1.cycles.min(o2.cycles));
    }

    #[test]
    fn instruction_estimate_matches_table6_scale() {
        let est = cpu_inst_estimate(512 * 1024 * 1024);
        assert!((95.0e9..115.0e9).contains(&(est as f64)));
    }
}
