//! Phoenix **Kmeans**: Lloyd's algorithm over low-dimensional integer
//! points.
//!
//! Optimization mapping (kmeans is the paper's showcase for opt1 + opt3):
//!
//! * **opt1** (reduction mapping): the naive port lays each point's `k`
//!   candidate distances *spatially* across the VR (one lane per
//!   (point, cluster) pair, only `l/k` points per pass), expands point
//!   coordinates with L3 lookups, arg-mins each group with an intra-VR
//!   subgroup reduction, and extracts the scattered assignments one PIO
//!   element at a time. The temporal mapping keeps one point per lane,
//!   iterates clusters over time with element-wise compare/select, and
//!   writes contiguous assignments back with DMA.
//! * **opt2** (coalesced DMA): the `d` per-dimension tile streams arrive
//!   in one programmed transaction instead of `d`.
//! * **opt3** (broadcast layout): centroid scalars are broadcast by L3
//!   lookup; storing centroids dimension-major shrinks the contiguous
//!   lookup window from `k·d` to `k` entries (Fig. 11's transformation).
//!
//! Centroid updates run on-device as masked subgroup sums whose 64
//! partial heads return through the RSP FIFO; the control processor
//! accumulates in 64-bit and computes the new centroids (Phoenix's
//! reduce step).

use apu_sim::{ApuDevice, Error, TaskReport, Vmr, Vr};
use gvml::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{map_reduce, parallel_tiles, OptConfig};
use crate::Result;

/// Maximum coordinate value (6-bit coordinates).
pub const COORD_MAX: u16 = 63;
/// Subgroup size for the masked coordinate sums: 63 × 512 < i16::MAX.
const SG_SUM: usize = 512;

/// A k-means problem instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmeansInput {
    /// Point coordinates, dimension-major: `coords[dim][point]`.
    pub coords: Vec<Vec<u16>>,
    /// Cluster count (power of two).
    pub k: usize,
    /// Lloyd iterations to run.
    pub iters: usize,
}

impl KmeansInput {
    /// Number of points.
    pub fn n_points(&self) -> usize {
        self.coords[0].len()
    }

    /// Dimensionality.
    pub fn dims(&self) -> usize {
        self.coords.len()
    }

    /// Initial centroids: the first `k` points (deterministic). When
    /// `k` exceeds the point count the points are cycled — duplicated
    /// seeds collapse into empty clusters on the first update, which
    /// keep their (stale) centroid rather than panicking, so a trainer
    /// asking for more clusters than it has points degrades gracefully.
    /// A zero-point input yields all-zero centroids.
    pub fn initial_centroids(&self) -> Vec<Vec<u16>> {
        let n = self.n_points();
        (0..self.k)
            .map(|c| {
                self.coords
                    .iter()
                    .map(|dim| if n == 0 { 0 } else { dim[c % n] })
                    .collect()
            })
            .collect()
    }
}

/// Result: final centroids (`k × d`) and the final assignment pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KmeansOutput {
    /// Centroids after the last update.
    pub centroids: Vec<Vec<u16>>,
    /// Cluster id per point from the last assignment pass.
    pub assignments: Vec<u16>,
}

/// Generates a clustered point set. `n_points` is rounded up to a
/// multiple of the 32 K tile size (a device-friendliness constraint the
/// kernels validate).
pub fn generate(n_points: usize, k: usize, dims: usize, iters: usize, seed: u64) -> KmeansInput {
    let l = 32 * 1024;
    let n = n_points.div_ceil(l).max(1) * l;
    let mut rng = StdRng::seed_from_u64(seed);
    // true cluster centers
    let centers: Vec<Vec<i32>> = (0..k)
        .map(|_| (0..dims).map(|_| rng.gen_range(8..56)).collect())
        .collect();
    let mut coords = vec![vec![0u16; n]; dims];
    for p in 0..n {
        let c = rng.gen_range(0..k);
        for (dim, coord) in coords.iter_mut().enumerate() {
            let v = centers[c][dim] + rng.gen_range(-6..=6);
            coord[p] = v.clamp(0, COORD_MAX as i32) as u16;
        }
    }
    KmeansInput { coords, k, iters }
}

/// Assigns every point of `input` to its nearest centroid (squared
/// Euclidean distance, ties toward the lower cluster id), parallelized
/// over `threads`. This is the assignment step of
/// [`cpu`] / [`cpu_mt`], exposed so other trainers — e.g. the IVF
/// index builder in the `rag` crate — can partition a full dataset
/// against centroids fitted on a subsample.
pub fn assign_points(input: &KmeansInput, centroids: &[Vec<u16>], threads: usize) -> Vec<u16> {
    let n = input.n_points();
    let points: Vec<usize> = (0..n).collect();
    let assigned: Vec<(usize, u16)> = map_reduce(
        &points,
        threads.max(1),
        |chunk| {
            chunk
                .iter()
                .map(|&p| (p, assign_point(input, centroids, p)))
                .collect::<Vec<_>>()
        },
        |mut a: Vec<(usize, u16)>, mut b| {
            a.append(&mut b);
            a
        },
    );
    let mut assignments = vec![0u16; n];
    for (p, c) in assigned {
        assignments[p] = c;
    }
    assignments
}

fn assign_point(input: &KmeansInput, centroids: &[Vec<u16>], p: usize) -> u16 {
    let mut best = u32::MAX;
    let mut best_c = 0u16;
    for (c, cent) in centroids.iter().enumerate() {
        let mut dist = 0u32;
        for (dim, coord) in input.coords.iter().enumerate() {
            let d = coord[p] as i32 - cent[dim] as i32;
            dist += (d * d) as u32;
        }
        if dist < best {
            best = dist;
            best_c = c as u16;
        }
    }
    best_c
}

/// Single-threaded CPU reference.
pub fn cpu(input: &KmeansInput) -> KmeansOutput {
    cpu_with_threads(input, 1)
}

/// Multi-threaded CPU implementation (assignment parallelized).
pub fn cpu_mt(input: &KmeansInput, threads: usize) -> KmeansOutput {
    cpu_with_threads(input, threads)
}

fn cpu_with_threads(input: &KmeansInput, threads: usize) -> KmeansOutput {
    let n = input.n_points();
    let dims = input.dims();
    let mut centroids = input.initial_centroids();
    let mut assignments = vec![0u16; n];
    for _ in 0..input.iters {
        assignments = assign_points(input, &centroids, threads);
        // update
        let mut sums = vec![vec![0u64; dims]; input.k];
        let mut counts = vec![0u64; input.k];
        for p in 0..n {
            let c = assignments[p] as usize;
            counts[c] += 1;
            for (dim, coord) in input.coords.iter().enumerate() {
                sums[c][dim] += coord[p] as u64;
            }
        }
        for c in 0..input.k {
            for dim in 0..dims {
                if let Some(mean) = sums[c][dim].checked_div(counts[c]) {
                    centroids[c][dim] = mean as u16;
                }
            }
        }
    }
    KmeansOutput {
        centroids,
        assignments,
    }
}

/// Estimated retired CPU instructions for Table 6 (paper: 0.4 G for
/// 128 k points; with k=16, d=3-ish defaults that is ≈ 20 per
/// point-cluster-dim-iteration).
pub fn cpu_inst_estimate(input: &KmeansInput) -> u64 {
    (input.n_points() * input.k * input.dims() * input.iters * 20) as u64
}

const VR_COORD0: u8 = 0; // d coordinate registers (d <= 6)
const VR_DIST: Vr = Vr::new(8);
const VR_BEST: Vr = Vr::new(9);
const VR_BESTC: Vr = Vr::new(10);
const VR_T: Vr = Vr::new(11);
const VR_T2: Vr = Vr::new(12);
const VR_IDX: Vr = Vr::new(13);
const VR_CENT: Vr = Vr::new(14);
const VR_TAG: Vr = Vr::new(15);
const M0: Marker = Marker::new(0);
const M1: Marker = Marker::new(1);
const M_HEADS: Marker = Marker::new(2);

/// Device implementation.
///
/// # Errors
///
/// Fails unless the point count is a multiple of the VR length, `k` is a
/// power of two ≤ 64, and `d ≤ 6`.
pub fn apu(
    dev: &mut ApuDevice,
    input: &KmeansInput,
    opts: OptConfig,
) -> Result<(KmeansOutput, TaskReport)> {
    let l = dev.config().vr_len;
    let n = input.n_points();
    let dims = input.dims();
    let k = input.k;
    if !n.is_multiple_of(l) {
        return Err(Error::InvalidArg(format!(
            "point count {n} must be a multiple of the VR length {l}"
        )));
    }
    if !k.is_power_of_two() || k > 64 {
        return Err(Error::InvalidArg(format!(
            "cluster count {k} must be a power of two <= 64"
        )));
    }
    if dims > 6 {
        return Err(Error::InvalidArg(format!(
            "at most 6 dimensions, got {dims}"
        )));
    }
    let n_tiles = n / l;

    // Upload coordinates dimension-major. With opt2 the 6-bit
    // coordinates of dimension pairs are byte-packed into one plane,
    // halving off-chip traffic.
    let packed = opts.coalesced_dma;
    let n_planes = if packed { dims.div_ceil(2) } else { dims };
    let h_coords = dev.alloc_u16(n_planes * n)?;
    if packed {
        for pair in 0..n_planes {
            let lo = &input.coords[2 * pair];
            let hi = input.coords.get(2 * pair + 1);
            let plane: Vec<u16> = (0..n)
                .map(|p| lo[p] | (hi.map_or(0, |h| h[p]) << 8))
                .collect();
            dev.copy_to_device(h_coords.offset_by(pair * n * 2)?.truncated(n * 2)?, &plane)?;
        }
    } else {
        for (dim, coord) in input.coords.iter().enumerate() {
            dev.copy_to_device(h_coords.offset_by(dim * n * 2)?.truncated(n * 2)?, coord)?;
        }
    }
    let h_assign = dev.alloc_u16(n)?;

    let mut centroids = input.initial_centroids();
    let mut total_report: Option<TaskReport> = None;

    for _iter in 0..input.iters {
        // Stage centroids for lookup: row-major (k × d) for the baseline
        // layout, dimension-major (d × k) when broadcast-friendly.
        let cent_table: Vec<u16> = if opts.broadcast_layout {
            (0..dims)
                .flat_map(|dim| centroids.iter().map(move |c| c[dim]))
                .collect()
        } else {
            centroids.iter().flatten().copied().collect()
        };
        let sigma_all = cent_table.len();
        let o = opts;

        let (partials, report) = parallel_tiles(dev, n_tiles, |ctx, start, end| {
            let mut sums = vec![vec![0u64; dims]; k];
            let mut counts = vec![0u64; k];
            // CP writes the centroid table into L3 (command-parameter
            // style; the table is tiny).
            ctx.l3_write_u16s(0, &cent_table)?;
            ctx.core_mut().create_grp_index_u16(VR_IDX, SG_SUM)?;
            ctx.core_mut().cpy_imm_16(VR_T, 0)?;
            ctx.core_mut().eq_16(M_HEADS, VR_IDX, VR_T)?;

            for tile in start..end {
                // ---- load the coordinate planes ----
                if o.coalesced_dma {
                    // byte-packed dimension pairs: half the planes
                    for pair in 0..n_planes {
                        let src = h_coords.offset_by((pair * n + tile * l) * 2)?;
                        ctx.dma_l4_to_l2(0, src, 2 * l)?;
                        ctx.dma_l2_to_l1(Vmr::new(47))?;
                        ctx.load(VR_T2, Vmr::new(47))?;
                        let core = ctx.core_mut();
                        core.cpy_imm_16(VR_T, 0x00FF)?;
                        core.and_16(Vr::new(VR_COORD0 + (2 * pair) as u8), VR_T2, VR_T)?;
                        if 2 * pair + 1 < dims {
                            core.sr_imm_u16(Vr::new(VR_COORD0 + (2 * pair + 1) as u8), VR_T2, 8)?;
                        }
                    }
                } else {
                    for dim in 0..dims {
                        let src = h_coords.offset_by((dim * n + tile * l) * 2)?;
                        ctx.dma_l4_to_l2(0, src, 2 * l)?;
                        ctx.dma_l2_to_l1(Vmr::new(47))?;
                        ctx.load(Vr::new(VR_COORD0 + dim as u8), Vmr::new(47))?;
                    }
                }

                // ---- assignment ----
                if o.reduction_mapping {
                    assign_temporal(ctx, k, dims, sigma_all, o)?;
                } else {
                    assign_spatial(ctx, k, dims, sigma_all, o, h_assign, tile)?;
                }

                // ---- write assignments / reload for update ----
                if o.reduction_mapping {
                    ctx.store(Vmr::new(46), VR_BESTC)?;
                    ctx.dma_l1_to_l4(h_assign.offset_by(tile * l * 2)?, Vmr::new(46))?;
                } else {
                    // spatial path already PIO-stored them; reload for
                    // the update phase
                    ctx.dma_l4_to_l1(Vmr::new(46), h_assign.offset_by(tile * l * 2)?)?;
                    ctx.load(VR_BESTC, Vmr::new(46))?;
                }

                // ---- update sums ----
                for c in 0..k {
                    ctx.core_mut().eq_imm_16(M1, VR_BESTC, c as u16)?;
                    let cnt = ctx.core_mut().count_m(M1)?;
                    counts[c] += cnt as u64;
                    for (dim, sum) in sums[c].iter_mut().enumerate() {
                        {
                            let core = ctx.core_mut();
                            core.cpy_imm_16(VR_T, 0)?;
                            core.cpy_16_msk(VR_T, Vr::new(VR_COORD0 + dim as u8), M1)?;
                            core.add_subgrp_s16(VR_T, VR_T, SG_SUM, SG_SUM)?;
                        }
                        let heads = ctx.core_mut().extract_marked(VR_T, M_HEADS, l / SG_SUM)?;
                        *sum += heads.iter().map(|&(_, v)| v as u64).sum::<u64>();
                    }
                }
            }
            Ok((sums, counts))
        })?;

        // Host/CP reduce: fold partials, compute new centroids.
        let mut sums = vec![vec![0u64; dims]; k];
        let mut counts = vec![0u64; k];
        for (ps, pc) in &partials {
            for c in 0..k {
                counts[c] += pc[c];
                for dim in 0..dims {
                    sums[c][dim] += ps[c][dim];
                }
            }
        }
        if dev.config().exec_mode.is_functional() {
            for c in 0..k {
                for dim in 0..dims {
                    if let Some(mean) = sums[c][dim].checked_div(counts[c]) {
                        centroids[c][dim] = mean as u16;
                    }
                }
            }
        }
        total_report = Some(match total_report {
            Some(t) => t.chain(&report),
            None => report,
        });
    }

    // Read back the final assignments.
    let assignments = if dev.config().exec_mode.is_functional() {
        let mut a = vec![0u16; n];
        dev.copy_from_device(h_assign, &mut a)?;
        a
    } else {
        Vec::new()
    };
    dev.free(h_coords)?;
    dev.free(h_assign)?;
    Ok((
        KmeansOutput {
            centroids,
            assignments,
        },
        total_report.expect("at least one iteration"),
    ))
}

/// Temporal assignment: one point per lane, clusters iterated in time.
fn assign_temporal(
    ctx: &mut apu_sim::ApuContext<'_>,
    k: usize,
    dims: usize,
    sigma_all: usize,
    opts: OptConfig,
) -> Result<()> {
    for c in 0..k {
        // distance to centroid c
        ctx.core_mut().cpy_imm_16(VR_DIST, 0)?;
        for dim in 0..dims {
            broadcast_centroid(ctx, c, dim, k, sigma_all, opts)?;
            let core = ctx.core_mut();
            core.sub_s16(VR_T, Vr::new(VR_COORD0 + dim as u8), VR_CENT)?;
            core.mul_s16(VR_T, VR_T, VR_T)?;
            core.add_u16(VR_DIST, VR_DIST, VR_T)?;
        }
        let core = ctx.core_mut();
        if c == 0 {
            core.cpy_16(VR_BEST, VR_DIST)?;
            core.cpy_imm_16(VR_BESTC, 0)?;
        } else {
            core.lt_u16(M0, VR_DIST, VR_BEST)?;
            core.cpy_16_msk(VR_BEST, VR_DIST, M0)?;
            core.cpy_imm_16_msk(VR_BESTC, c as u16, M0)?;
        }
    }
    Ok(())
}

/// Spatial assignment: lanes hold (point, cluster) pairs, `l/k` points
/// per pass, expanded via L3 lookups and reduced with subgroup arg-min.
fn assign_spatial(
    ctx: &mut apu_sim::ApuContext<'_>,
    k: usize,
    dims: usize,
    sigma_all: usize,
    opts: OptConfig,
    h_assign: apu_sim::MemHandle,
    tile: usize,
) -> Result<()> {
    let l = ctx.core().vr_len();
    let points_per_pass = l / k;
    // Stage this tile's coordinate planes into L3 for expansion
    // (after the centroid table).
    let cent_bytes = sigma_all * 2;
    for dim in 0..dims {
        ctx.store(Vmr::new(45), Vr::new(VR_COORD0 + dim as u8))?;
        ctx.dma_l1_to_l2(Vmr::new(45))?;
        // L2 → L3 staging is charged as an L4-class transfer into the CP
        // cache (the cache is filled through the same fabric).
        let data: Vec<u16> = if ctx.core().is_functional() {
            ctx.core().vr(Vr::new(VR_COORD0 + dim as u8))?.to_vec()
        } else {
            vec![0; l]
        };
        ctx.l3_write_u16s(cent_bytes + dim * l * 2, &data)?;
        let cost = ctx.timing().dma_l4_l3(l * 2);
        ctx.core_mut()
            .charge_cycles(apu_sim::core::CycleClass::Dma, cost);
    }
    // expansion index: lane -> point-within-pass (lane / k)
    ctx.core_mut().create_grp_num_u16(VR_IDX, k)?;
    // cluster tag pattern: lane -> cluster (lane % k)
    ctx.core_mut().create_grp_index_u16(VR_TAG, k)?;

    for pass in 0..k {
        // Expand the pass's point coordinates: lookup over the staged
        // window of `points_per_pass` entries.
        ctx.core_mut().cpy_imm_16(VR_DIST, 0)?;
        for dim in 0..dims {
            let window_off = cent_bytes + (dim * l + pass * points_per_pass) * 2;
            ctx.lookup(VR_T2, VR_IDX, window_off, points_per_pass)?;
            // centroid per lane: lookup by cluster tag
            let (idx_vr, sigma, table_off) = if opts.broadcast_layout {
                (VR_TAG, k, dim * k * 2)
            } else {
                // row-major: entry index = tag*dims + dim; build it
                let core = ctx.core_mut();
                core.cpy_imm_16(VR_T, dims as u16)?;
                core.mul_u16(VR_CENT, VR_TAG, VR_T)?;
                core.cpy_imm_16(VR_T, dim as u16)?;
                core.add_u16(VR_CENT, VR_CENT, VR_T)?;
                (VR_CENT, sigma_all, 0)
            };
            ctx.lookup(VR_T, idx_vr, table_off, sigma)?;
            let core = ctx.core_mut();
            core.sub_s16(VR_T, VR_T2, VR_T)?;
            core.mul_s16(VR_T, VR_T, VR_T)?;
            core.add_u16(VR_DIST, VR_DIST, VR_T)?;
        }
        // arg-min within each k-lane group
        ctx.core_mut()
            .min_subgrp_u16(VR_BEST, VR_DIST, k, k, Some((VR_BESTC, VR_TAG)))?;
        // scattered assignments leave one element at a time
        let pairs: Vec<(usize, usize)> = (0..points_per_pass)
            .map(|p| (tile * l + pass * points_per_pass + p, p * k))
            .collect();
        ctx.pio_store(h_assign, VR_BESTC, &pairs)?;
    }
    Ok(())
}

fn broadcast_centroid(
    ctx: &mut apu_sim::ApuContext<'_>,
    c: usize,
    dim: usize,
    k: usize,
    sigma_all: usize,
    opts: OptConfig,
) -> Result<()> {
    let dims = sigma_all / k;
    // Index VR: constant entry index within the contiguous window.
    let (entry, sigma, table_off) = if opts.broadcast_layout {
        (c, k, dim * k * 2) // dimension-major: window of k entries
    } else {
        (c * dims + dim, sigma_all, 0) // row-major: whole-table window
    };
    ctx.core_mut().cpy_imm_16(VR_T2, entry as u16)?;
    ctx.lookup(VR_CENT, VR_T2, table_off, sigma)?;
    Ok(())
}

/// Analytical-framework twin (models the all-opts kernel).
pub fn model(est: &mut cis_model::LatencyEstimator, input: &KmeansInput, opts: OptConfig) {
    let l = 32 * 1024;
    let n = input.n_points();
    let (k, dims) = (input.k, input.dims());
    let n_tiles = (n / l).max(1);
    let cores = 4usize.min(n_tiles);
    let tiles_per_core = n_tiles.div_ceil(cores);
    let n_planes = if opts.coalesced_dma {
        dims.div_ceil(2)
    } else {
        dims
    };
    for _ in 0..input.iters {
        // per-core, per-iteration setup
        est.section("setup");
        est.gvml_create_grp_index_u16();
        est.gvml_cpy_imm_16();
        est.gvml_eq_16();
        for _ in 0..tiles_per_core {
            est.section("load");
            for _ in 0..n_planes {
                est.record(cis_model::TraceOp::DmaL4L2(2 * l * cores));
                est.direct_dma_l2_to_l1_32k();
                est.gvml_load_16();
                if opts.coalesced_dma {
                    est.gvml_cpy_imm_16();
                    est.record(cis_model::TraceOp::Op(apu_sim::VecOp::And16));
                    est.gvml_shift_imm_16();
                }
            }
            est.section("assign");
            for c in 0..k {
                est.gvml_cpy_imm_16();
                for _ in 0..dims {
                    est.gvml_cpy_imm_16();
                    est.lookup(if opts.broadcast_layout { k } else { k * dims });
                    est.gvml_sub_s16();
                    est.gvml_mul_s16();
                    est.gvml_add_u16();
                }
                if c > 0 {
                    est.gvml_lt_u16();
                    est.gvml_cpy_16_msk();
                    est.gvml_cpy_imm_16();
                }
            }
            est.section("writeback");
            est.gvml_store_16();
            for _ in 0..cores {
                est.direct_dma_l1_to_l4_32k();
            }
            est.section("update");
            for _ in 0..k {
                est.gvml_eq_16();
                est.gvml_count_m();
                for _ in 0..dims {
                    est.gvml_cpy_imm_16();
                    est.gvml_cpy_16_msk();
                    est.gvml_add_subgrp_s16(SG_SUM, SG_SUM);
                    est.gvml_cpy_from_mrk_16_msk(l / SG_SUM);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20))
    }

    fn small_input() -> KmeansInput {
        generate(32 * 1024, 8, 4, 2, 11)
    }

    #[test]
    fn cpu_mt_matches_single() {
        let input = small_input();
        let a = cpu(&input);
        let b = cpu_mt(&input, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn cpu_converges_to_centers() {
        // Enough Lloyd iterations to converge: the stability check below
        // compares against one *additional* iteration, which is only
        // meaningful once the assignment has settled.
        let input = generate(32 * 1024, 4, 2, 16, 3);
        let out = cpu(&input);
        // every centroid should sit inside the coordinate range
        for c in &out.centroids {
            for &v in c {
                assert!(v <= COORD_MAX);
            }
        }
        // assignment should be stable under one more iteration
        let mut more = input.clone();
        more.iters += 1;
        let out2 = cpu(&more);
        let same = out
            .assignments
            .iter()
            .zip(&out2.assignments)
            .filter(|(a, b)| a == b)
            .count();
        assert!(same as f64 / out.assignments.len() as f64 > 0.95);
    }

    #[test]
    fn apu_temporal_matches_cpu() {
        let input = small_input();
        let mut dev = device();
        let (out, _) = apu(&mut dev, &input, OptConfig::all()).unwrap();
        let expected = cpu(&input);
        assert_eq!(out.centroids, expected.centroids);
        assert_eq!(out.assignments, expected.assignments);
    }

    #[test]
    fn apu_spatial_baseline_matches_cpu() {
        let input = small_input();
        let mut dev = device();
        let (out, _) = apu(&mut dev, &input, OptConfig::none()).unwrap();
        let expected = cpu(&input);
        assert_eq!(out.centroids, expected.centroids);
        assert_eq!(out.assignments, expected.assignments);
    }

    #[test]
    fn apu_variants_match_cpu() {
        let input = small_input();
        let expected = cpu(&input);
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (out, _) = apu(&mut dev, &input, o).unwrap();
            assert_eq!(out.centroids, expected.centroids, "{}", o.label());
        }
    }

    #[test]
    fn opt1_gives_the_large_gain() {
        let input = small_input();
        let mut dev = device();
        let (_, base) = apu(&mut dev, &input, OptConfig::none()).unwrap();
        let (_, o1) = apu(&mut dev, &input, OptConfig::only_opt1()).unwrap();
        let (_, o3) = apu(&mut dev, &input, OptConfig::only_opt3()).unwrap();
        let (_, all) = apu(&mut dev, &input, OptConfig::all()).unwrap();
        assert!(
            o1.cycles.get() * 3 < base.cycles.get(),
            "opt1 {} vs base {}",
            o1.cycles,
            base.cycles
        );
        assert!(o3.cycles < base.cycles);
        assert!(all.cycles <= o1.cycles);
    }

    #[test]
    fn input_validation() {
        let mut dev = device();
        let mut bad = small_input();
        bad.coords[0].truncate(1000);
        bad.coords[1].truncate(1000);
        bad.coords[2].truncate(1000);
        bad.coords[3].truncate(1000);
        assert!(apu(&mut dev, &bad, OptConfig::all()).is_err());
        let mut bad_k = small_input();
        bad_k.k = 7;
        assert!(apu(&mut dev, &bad_k, OptConfig::all()).is_err());
    }

    // ---- edge cases the IVF trainer hits (rag::ivf) ----

    #[test]
    fn k_larger_than_point_count_degrades_gracefully() {
        // 3 points, 8 requested clusters: seeds cycle, duplicated seeds
        // collapse to empty clusters that keep their stale centroid.
        let input = KmeansInput {
            coords: vec![vec![1, 20, 50], vec![5, 30, 60]],
            k: 8,
            iters: 3,
        };
        let out = cpu(&input);
        assert_eq!(out.centroids.len(), 8);
        assert_eq!(out.assignments.len(), 3);
        // Ties break toward the lower cluster id, so only the first
        // copy of each duplicated seed ever owns points.
        for &a in &out.assignments {
            assert!((a as usize) < 3, "assignment {a} beyond distinct seeds");
        }
        for c in &out.centroids {
            for &v in c {
                assert!(v <= COORD_MAX);
            }
        }
    }

    #[test]
    fn zero_points_yield_zero_centroids_without_panicking() {
        let input = KmeansInput {
            coords: vec![Vec::new(), Vec::new()],
            k: 4,
            iters: 2,
        };
        let out = cpu(&input);
        assert_eq!(out.centroids, vec![vec![0, 0]; 4]);
        assert!(out.assignments.is_empty());
    }

    #[test]
    fn all_duplicate_points_collapse_to_one_cluster() {
        let input = KmeansInput {
            coords: vec![vec![17; 256], vec![42; 256]],
            k: 4,
            iters: 3,
        };
        let out = cpu(&input);
        // Identical distances everywhere: ties go to cluster 0, and the
        // empty clusters keep the (identical) seed centroid.
        assert!(out.assignments.iter().all(|&a| a == 0));
        assert_eq!(out.centroids, vec![vec![17, 42]; 4]);
    }

    #[test]
    fn empty_clusters_keep_their_stale_centroid() {
        // Two tight groups, four clusters: at least two clusters go
        // empty on the first update and must keep their seed centroid
        // instead of dividing by zero.
        let mut coords = vec![Vec::new(), Vec::new()];
        for i in 0..128 {
            let (x, y) = if i % 2 == 0 { (2, 3) } else { (60, 61) };
            coords[0].push(x);
            coords[1].push(y);
        }
        let input = KmeansInput {
            coords,
            k: 4,
            iters: 4,
        };
        let seeds = input.initial_centroids();
        let out = cpu(&input);
        let mut counts = [0usize; 4];
        for &a in &out.assignments {
            counts[a as usize] += 1;
        }
        for c in 0..4 {
            if counts[c] == 0 {
                assert_eq!(out.centroids[c], seeds[c], "empty cluster {c} moved");
            }
        }
        assert!(counts.iter().filter(|&&n| n == 0).count() >= 2);
    }

    #[test]
    fn assign_points_matches_the_next_assignment_pass() {
        // `cpu` assigns against the centroids from the *previous*
        // update, so partitioning with `assign_points` against a run's
        // final centroids reproduces the assignments of a run with one
        // extra iteration — the contract the IVF builder relies on.
        let input = small_input();
        let out = cpu(&input);
        let longer = cpu(&KmeansInput {
            coords: input.coords.clone(),
            k: input.k,
            iters: input.iters + 1,
        });
        assert_eq!(longer.assignments, assign_points(&input, &out.centroids, 8));
    }

    mod props {
        use super::{apu, cpu, device, KmeansInput, OptConfig, COORD_MAX};
        use proptest::prelude::*;

        /// Duplicate-heavy device-shaped input: coordinates drawn from
        /// a small palette force duplicate points and empty clusters —
        /// exactly what an IVF trainer produces on clustered corpora.
        fn palette_input(
            dims: usize,
            k: usize,
            iters: usize,
            palette: &[u16],
            seed: u64,
        ) -> KmeansInput {
            let n = 32 * 1024;
            let mut state = seed;
            let mut coords = vec![vec![0u16; n]; dims];
            for p in 0..n {
                for coord in coords.iter_mut() {
                    state = state
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let idx = (state >> 33) as usize % palette.len();
                    coord[p] = palette[idx];
                }
            }
            KmeansInput { coords, k, iters }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            /// The device kernel agrees with the CPU reference bit-for-
            /// bit even on degenerate inputs (duplicates, empty
            /// clusters) — the agreement the IVF trainer relies on.
            #[test]
            fn apu_functional_matches_cpu_on_degenerate_inputs(
                dims in 2usize..=4,
                kexp in 1u32..=3,
                iters in 1usize..=2,
                palette in proptest::collection::vec(0u16..=COORD_MAX, 3..=6),
                seed in any::<u64>(),
            ) {
                let input = palette_input(dims, 1usize << kexp, iters, &palette, seed);
                let expected = cpu(&input);
                let mut dev = device();
                let (out, _) = apu(&mut dev, &input, OptConfig::all()).unwrap();
                prop_assert_eq!(out.centroids, expected.centroids);
                prop_assert_eq!(out.assignments, expected.assignments);
            }
        }
    }
}
