//! Phoenix **Histogram**: 256-bin byte-value histogram (the original
//! benchmark histograms bitmap pixel channels; the synthetic input is a
//! seeded byte stream).
//!
//! Device strategy: tiles of pixels stream L4→L2→L1→VR; for each bin the
//! kernel marks matching elements (`eq_imm`) and counts marks
//! (`count_m`), accumulating on the control processor.
//!
//! Optimization mapping (the paper finds histogram gains little — its
//! counting is inherently intra-VR):
//!
//! * **opt1** (reduction mapping): the kernel first computes each tile's
//!   min/max (subgroup reductions) and scans only the occupied bin range
//!   — a data-dependent win that vanishes on full-range inputs.
//! * **opt2** (coalesced DMA): pixels stay byte-packed (two per element,
//!   unpacked on-VR), halving off-chip traffic, and each tile arrives in
//!   one programmed transaction instead of two.
//! * **opt3** (broadcast layout): no broadcast tables exist here; no
//!   effect, as in the paper.

use apu_sim::{ApuDevice, DeviceQueue, Priority, TaskHandle, TaskReport, Vmr, Vr};
use gvml::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{map_reduce, parallel_tiles, OptConfig};
use crate::Result;

/// Histogram result: one count per byte value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram(pub Vec<u64>);

impl Default for Histogram {
    fn default() -> Self {
        Histogram(vec![0; 256])
    }
}

impl Histogram {
    fn merge(mut self, other: Histogram) -> Histogram {
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a += b;
        }
        self
    }
}

/// Generates a seeded pixel stream. A mild value skew keeps the
/// occupied-bin optimization observable without being unrealistic.
pub fn generate(bytes: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..bytes)
        .map(|_| {
            let v: u16 = rng.gen_range(0..512);
            // fold the upper half back: triangular-ish distribution
            if v < 256 {
                v as u8
            } else {
                (511 - v) as u8
            }
        })
        .collect()
}

/// Single-threaded CPU reference.
pub fn cpu(data: &[u8]) -> Histogram {
    let mut h = Histogram::default();
    for &b in data {
        h.0[b as usize] += 1;
    }
    h
}

/// Multi-threaded CPU implementation (MapReduce scatter/gather).
pub fn cpu_mt(data: &[u8], threads: usize) -> Histogram {
    map_reduce(data, threads, cpu, Histogram::merge)
}

/// Estimated retired CPU instructions for Table 6 (calibrated to the
/// paper's Valgrind count: 4.8 G instructions for 1.5 GB ≈ 3.2/byte).
pub fn cpu_inst_estimate(bytes: usize) -> u64 {
    (bytes as f64 * 3.2) as u64
}

const VR_PIX: Vr = Vr::new(0);
const VR_LO: Vr = Vr::new(1);
const VR_HI: Vr = Vr::new(2);
const VR_T: Vr = Vr::new(3);
const VR_T2: Vr = Vr::new(4);
const M0: Marker = Marker::new(0);

/// Device implementation.
///
/// # Errors
///
/// Fails on device-memory exhaustion or internal kernel errors.
pub fn apu(dev: &mut ApuDevice, data: &[u8], opts: OptConfig) -> Result<(Histogram, TaskReport)> {
    let l = dev.config().vr_len;
    let packed = opts.coalesced_dma;
    let pixels_per_tile = if packed { 2 * l } else { l };
    let n_tiles = data.len().div_ceil(pixels_per_tile).max(1);

    // Host → device: baseline zero-extends each pixel to u16 (the naive
    // port); the packed variant uploads raw bytes.
    let h_in = if packed {
        let mut padded = data.to_vec();
        padded.resize(n_tiles * pixels_per_tile, 0);
        let h = dev.alloc(padded.len())?;
        dev.copy_to_device(h, &padded)?;
        h
    } else {
        let mut words: Vec<u16> = data.iter().map(|&b| b as u16).collect();
        words.resize(n_tiles * pixels_per_tile, 0);
        let h = dev.alloc_u16(words.len())?;
        dev.copy_to_device(h, &words)?;
        h
    };
    let pad = n_tiles * pixels_per_tile - data.len();

    let (partials, report) = parallel_tiles(dev, n_tiles, |ctx, start, end| {
        let mut hist = Histogram::default();
        for tile in start..end {
            // Packed tiles carry 2·l one-byte pixels; unpacked tiles
            // carry l two-byte elements — 2·l bytes either way.
            let tile_bytes = 2 * l;
            let src = h_in.offset_by(tile * tile_bytes)?;
            // ---- load the tile ----
            if opts.coalesced_dma {
                ctx.dma_l4_to_l2(0, src, tile_bytes)?;
            } else {
                // un-coalesced: two half-tile transactions
                ctx.dma_l4_to_l2(0, src, tile_bytes / 2)?;
                ctx.dma_l4_to_l2(
                    tile_bytes / 2,
                    src.offset_by(tile_bytes / 2)?,
                    tile_bytes / 2,
                )?;
            }
            ctx.dma_l2_to_l1(Vmr::new(47))?;
            ctx.load(VR_PIX, Vmr::new(47))?;

            // ---- unpack (packed variant) ----
            let packed_views = [VR_LO, VR_HI];
            let unpacked_views = [VR_PIX];
            let views: &[Vr] = if packed {
                let core = ctx.core_mut();
                core.cpy_imm_16(VR_T2, 0x00FF)?;
                core.and_16(VR_LO, VR_PIX, VR_T2)?;
                core.sr_imm_u16(VR_HI, VR_PIX, 8)?;
                &packed_views
            } else {
                &unpacked_views
            };

            // ---- occupied bin range (opt1) ----
            let (bin_lo, bin_hi) = if opts.reduction_mapping {
                let mut lo = u16::MAX;
                let mut hi = 0u16;
                for &v in views {
                    let core = ctx.core_mut();
                    core.min_subgrp_u16(VR_T, v, l, l, None)?;
                    let tile_lo = ctx.pio_get(VR_T, 0)?;
                    let core = ctx.core_mut();
                    core.max_subgrp_u16(VR_T, v, l, l, None)?;
                    let tile_hi = ctx.pio_get(VR_T, 0)?;
                    lo = lo.min(tile_lo);
                    hi = hi.max(tile_hi);
                }
                if ctx.core().is_functional() {
                    (lo, hi)
                } else {
                    (0, 255)
                }
            } else {
                (0, 255)
            };

            // ---- count each bin ----
            for bin in bin_lo..=bin_hi.min(255) {
                for &v in views {
                    let core = ctx.core_mut();
                    core.eq_imm_16(M0, v, bin)?;
                    let c = core.count_m(M0)?;
                    hist.0[bin as usize] += c as u64;
                }
            }
        }
        Ok(hist)
    })?;
    dev.free(h_in)?;

    let mut hist = partials
        .into_iter()
        .fold(Histogram::default(), Histogram::merge);
    // remove the zero-padding contribution
    hist.0[0] = hist.0[0].saturating_sub(pad as u64);
    Ok((hist, report))
}

/// Submits the histogram workload through a device command queue
/// instead of running it synchronously: the returned handle retires via
/// [`DeviceQueue::wait`] / [`DeviceQueue::drain`] with a [`Histogram`]
/// output, letting analytics batch work share the device with serving
/// traffic at a chosen [`Priority`].
///
/// # Errors
///
/// Fails when the queue's admission control rejects the submission.
pub fn enqueue<'t>(
    queue: &mut DeviceQueue<'_, 't>,
    priority: Priority,
    data: &'t [u8],
    opts: OptConfig,
) -> Result<TaskHandle> {
    queue.submit(
        apu_sim::TaskSpec::typed(move |dev: &mut apu_sim::ApuDevice| {
            let (hist, report) = apu(dev, data, opts)?;
            Ok((report, hist))
        })
        .priority(priority),
    )
}

/// Analytical-framework twin of the all-opts kernel (used for Table 7).
pub fn model(est: &mut cis_model::LatencyEstimator, bytes: usize, opts: OptConfig) {
    let l = 32 * 1024;
    let packed = opts.coalesced_dma;
    let pixels_per_tile = if packed { 2 * l } else { l };
    let n_tiles = bytes.div_ceil(pixels_per_tile).max(1);
    // Tiles are spread over up to 4 cores; DMA contends for the shared L4.
    let cores = 4usize.min(n_tiles);
    let tiles_per_core = n_tiles.div_ceil(cores);
    for _ in 0..tiles_per_core {
        est.section("load");
        if opts.coalesced_dma {
            est.record(cis_model::TraceOp::DmaL4L2(2 * l * cores));
        } else {
            est.record(cis_model::TraceOp::DmaL4L2(l * cores));
            est.record(cis_model::TraceOp::DmaL4L2(l * cores));
        }
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        est.section("count");
        let views = if packed { 2 } else { 1 };
        if packed {
            est.gvml_cpy_imm_16();
            est.record(cis_model::TraceOp::Op(apu_sim::VecOp::And16));
            est.gvml_shift_imm_16();
        }
        if opts.reduction_mapping {
            for _ in 0..views {
                est.record_n(cis_model::TraceOp::SgMinMax { r: l, s: l }, 2);
                est.pio_st(2);
            }
        }
        for _ in 0..256 * views {
            est.gvml_eq_16();
            est.gvml_count_m();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(16 << 20))
    }

    #[test]
    fn cpu_mt_matches_single() {
        let data = generate(100_000, 1);
        assert_eq!(cpu(&data), cpu_mt(&data, 8));
    }

    #[test]
    fn generator_is_deterministic() {
        assert_eq!(generate(1000, 3), generate(1000, 3));
        assert_ne!(generate(1000, 3), generate(1000, 4));
    }

    #[test]
    fn apu_baseline_matches_cpu() {
        let data = generate(40_000, 5);
        let mut dev = device();
        let (h, report) = apu(&mut dev, &data, OptConfig::none()).unwrap();
        assert_eq!(h, cpu(&data));
        assert!(report.cycles.get() > 0);
    }

    #[test]
    fn enqueued_histogram_matches_cpu() {
        let data = generate(40_000, 5);
        let mut dev = device();
        let mut queue = DeviceQueue::new(&mut dev, apu_sim::QueueConfig::default());
        let handle = enqueue(&mut queue, Priority::Low, &data, OptConfig::all()).unwrap();
        let done = queue.wait(handle).unwrap();
        assert!(done.report.cycles.get() > 0);
        let hist = done.output::<Histogram>().unwrap();
        assert_eq!(*hist, cpu(&data));
    }

    #[test]
    fn apu_all_opts_matches_cpu() {
        let data = generate(100_000, 6);
        let mut dev = device();
        let (h, _) = apu(&mut dev, &data, OptConfig::all()).unwrap();
        assert_eq!(h, cpu(&data));
    }

    #[test]
    fn apu_opt_variants_match_cpu() {
        let data = generate(70_000, 9);
        let expected = cpu(&data);
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (h, _) = apu(&mut dev, &data, o).unwrap();
            assert_eq!(h, expected, "{}", o.label());
        }
    }

    #[test]
    fn packing_halves_offchip_traffic() {
        let data = generate(256 * 1024, 7);
        let mut dev = device();
        let (_, base) = apu(&mut dev, &data, OptConfig::none()).unwrap();
        let (_, packed) = apu(&mut dev, &data, OptConfig::only_opt2()).unwrap();
        assert!(packed.stats.l4_bytes * 2 <= base.stats.l4_bytes + 1024);
        assert!(packed.cycles < base.cycles);
    }

    #[test]
    fn narrow_range_input_benefits_from_opt1() {
        // All pixels in [100, 110): the range scan skips ~96% of bins.
        let data: Vec<u8> = (0..200_000u32).map(|i| 100 + (i % 10) as u8).collect();
        let mut dev = device();
        let (h1, base) = apu(&mut dev, &data, OptConfig::none()).unwrap();
        let (h2, opt1) = apu(&mut dev, &data, OptConfig::only_opt1()).unwrap();
        assert_eq!(h1, h2);
        // total latency improves (the DMA floor stays)...
        assert!(opt1.cycles < base.cycles);
        // ...and the counting work shrinks (bounded by the min/max
        // reduction cost the range scan pays per tile)
        assert!(opt1.stats.compute_cycles * 2 < base.stats.compute_cycles);
    }

    #[test]
    fn instruction_estimate_matches_table6_scale() {
        // 1.5 GB → ≈ 4.8 billion instructions.
        let est = cpu_inst_estimate(3 * 512 * 1024 * 1024);
        assert!((4.0e9..5.6e9).contains(&(est as f64)));
    }
}
