//! Phoenix **Linear Regression**: least-squares fit over (x, y) points by
//! accumulating Σx, Σy, Σx², Σy², Σxy.
//!
//! Coordinates are small integers (0..8) so products fit the device's
//! 16-bit lanes; wide totals are obtained by periodically *flushing*
//! per-lane accumulators — a subgroup reduction bounds each partial at
//! 16 bits, the partial vector returns to device DRAM by DMA, and the
//! host folds the partials in 64-bit (Phoenix's map-on-device /
//! reduce-on-host split).
//!
//! Optimization mapping:
//!
//! * **opt1** (reduction mapping): the baseline reduces *every tile*
//!   spatially before accumulating; opt1 accumulates raw lanes with
//!   element-wise adds and reduces only at flush boundaries.
//! * **opt2** (coalesced DMA / packing): the baseline ports the original
//!   interleaved 16-bit layout (4 B/point) and must realign y under x
//!   with an intra-VR shift; opt2 packs a whole point into one byte
//!   (x | y≪4), quadrupling points per tile and eliminating the shift.
//! * **opt3**: no broadcast tables — no effect (as the paper observes,
//!   layout wins for linreg come through packing, i.e. opt2).

use apu_sim::{ApuDevice, TaskReport, Vmr, Vr};
use gvml::prelude::*;
use gvml::shift::ShiftDir;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::common::{map_reduce, parallel_tiles, OptConfig};
use crate::Result;

/// Subgroup size used by the on-device reductions.
const SG: usize = 16;
/// Tiles accumulated between flushes (unpacked): per-lane partials stay
/// ≤ 49·41 = 2009, so a 16-lane subgroup sum ≤ 32,144 < i16::MAX.
const FLUSH_UNPACKED: usize = 41;
/// Packed tiles carry two points per lane: flush twice as often.
const FLUSH_PACKED: usize = 20;
/// Number of accumulated statistics.
const NSTATS: usize = 5;

/// Accumulated sums (exact, 64-bit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinRegStats {
    /// Number of points.
    pub n: u64,
    /// Σx.
    pub sx: u64,
    /// Σy.
    pub sy: u64,
    /// Σx².
    pub sxx: u64,
    /// Σy².
    pub syy: u64,
    /// Σxy.
    pub sxy: u64,
}

impl LinRegStats {
    fn merge(mut self, o: LinRegStats) -> LinRegStats {
        self.n += o.n;
        self.sx += o.sx;
        self.sy += o.sy;
        self.sxx += o.sxx;
        self.syy += o.syy;
        self.sxy += o.sxy;
        self
    }

    /// Least-squares slope and intercept.
    pub fn fit(&self) -> (f64, f64) {
        let n = self.n as f64;
        let denom = n * self.sxx as f64 - (self.sx as f64).powi(2);
        if denom == 0.0 {
            return (0.0, 0.0);
        }
        let slope = (n * self.sxy as f64 - self.sx as f64 * self.sy as f64) / denom;
        let intercept = (self.sy as f64 - slope * self.sx as f64) / n;
        (slope, intercept)
    }
}

/// Generates points with a known linear trend plus noise; coordinates in
/// 0..8.
pub fn generate(n_points: usize, seed: u64) -> Vec<(u8, u8)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n_points)
        .map(|_| {
            let x: u8 = rng.gen_range(0..8);
            let noise: i16 = rng.gen_range(-1..=1);
            let y = ((x as i16) / 2 + 2 + noise).clamp(0, 7) as u8;
            (x, y)
        })
        .collect()
}

/// Single-threaded CPU reference.
pub fn cpu(points: &[(u8, u8)]) -> LinRegStats {
    let mut s = LinRegStats::default();
    for &(x, y) in points {
        let (x, y) = (x as u64, y as u64);
        s.n += 1;
        s.sx += x;
        s.sy += y;
        s.sxx += x * x;
        s.syy += y * y;
        s.sxy += x * y;
    }
    s
}

/// Multi-threaded CPU implementation.
pub fn cpu_mt(points: &[(u8, u8)], threads: usize) -> LinRegStats {
    map_reduce(points, threads, cpu, LinRegStats::merge)
}

/// Estimated retired CPU instructions for Table 6 (paper: 3.8 G for
/// 512 MB of point data ≈ 7.4 per input byte ≈ 29.7 per point).
pub fn cpu_inst_estimate(n_points: usize) -> u64 {
    (n_points as f64 * 29.7) as u64
}

const VR_DATA: Vr = Vr::new(0);
const VR_SH: Vr = Vr::new(1);
const VR_T: Vr = Vr::new(2);
const VR_T2: Vr = Vr::new(3);
const VR_MASK: Vr = Vr::new(4);
const VR_IDX: Vr = Vr::new(5);
// Accumulators for the five statistics.
const VR_ACC0: u8 = 8;
const M0: Marker = Marker::new(0);

/// Device implementation.
///
/// # Errors
///
/// Fails on device-memory exhaustion or internal kernel errors.
pub fn apu(
    dev: &mut ApuDevice,
    points: &[(u8, u8)],
    opts: OptConfig,
) -> Result<(LinRegStats, TaskReport)> {
    let l = dev.config().vr_len;
    let packed = opts.coalesced_dma;
    let points_per_tile = if packed { 2 * l } else { l / 2 };
    let flush_every = if packed { FLUSH_PACKED } else { FLUSH_UNPACKED };
    let n_tiles = points.len().div_ceil(points_per_tile).max(1);

    // Host → device layout.
    let h_in = if packed {
        let mut bytes: Vec<u8> = points.iter().map(|&(x, y)| x | (y << 4)).collect();
        bytes.resize(n_tiles * points_per_tile, 0);
        let h = dev.alloc(bytes.len())?;
        dev.copy_to_device(h, &bytes)?;
        h
    } else {
        let mut words: Vec<u16> = Vec::with_capacity(points.len() * 2);
        for &(x, y) in points {
            words.push(x as u16);
            words.push(y as u16);
        }
        words.resize(n_tiles * l, 0);
        let h = dev.alloc_u16(words.len())?;
        dev.copy_to_device(h, &words)?;
        h
    };

    // Flush output buffers: per core, per flush, NSTATS vectors.
    let cores = dev.config().cores;
    let tiles_per_core = n_tiles.div_ceil(cores);
    let flushes_per_core = tiles_per_core.div_ceil(flush_every) + 1;
    let h_flush = dev.alloc_u16(cores * flushes_per_core * NSTATS * l)?;
    let flush_stride = flushes_per_core * NSTATS * l; // u16 elements per core

    let (flush_counts, report) = parallel_tiles(dev, n_tiles, |ctx, start, end| {
        let core_id = ctx.core().id();
        let mut flushes = 0usize;

        // Per-core constants.
        if packed {
            ctx.core_mut().cpy_imm_16(VR_MASK, 0x000F)?;
        } else {
            ctx.core_mut().create_grp_index_u16(VR_IDX, 2)?;
            ctx.core_mut().cpy_imm_16(VR_T, 0)?;
            ctx.core_mut().eq_16(M0, VR_IDX, VR_T)?; // mark even lanes
        }
        for s in 0..NSTATS {
            ctx.core_mut().cpy_imm_16(Vr::new(VR_ACC0 + s as u8), 0)?;
        }

        let mut since_flush = 0usize;
        for tile in start..end {
            let tile_bytes = 2 * l;
            // ---- load ----
            ctx.dma_l4_to_l2(0, h_in.offset_by(tile * tile_bytes)?, tile_bytes)?;
            ctx.dma_l2_to_l1(Vmr::new(47))?;
            ctx.load(VR_DATA, Vmr::new(47))?;

            // ---- per-tile statistics into VR_T per stat ----
            if packed {
                // two point sets per lane: (x1,y1) low byte, (x2,y2) high
                for set in 0..2 {
                    let (xs, ys) = (VR_SH, VR_T2);
                    {
                        let core = ctx.core_mut();
                        if set == 0 {
                            core.and_16(xs, VR_DATA, VR_MASK)?;
                            core.sr_imm_u16(ys, VR_DATA, 4)?;
                            core.and_16(ys, ys, VR_MASK)?;
                        } else {
                            core.sr_imm_u16(xs, VR_DATA, 8)?;
                            core.and_16(xs, xs, VR_MASK)?;
                            core.sr_imm_u16(ys, VR_DATA, 12)?;
                        }
                    }
                    accumulate_stats(ctx, xs, ys, None, opts)?;
                }
            } else {
                // interleaved: y sits one lane east of x
                ctx.core_mut().cpy_16(VR_SH, VR_DATA)?;
                ctx.core_mut()
                    .shift_elements(VR_SH, 1, ShiftDir::TowardHead)?;
                accumulate_stats(ctx, VR_DATA, VR_SH, Some(M0), opts)?;
            }

            since_flush += 1;
            if since_flush >= flush_every || tile == end - 1 {
                flush(
                    ctx,
                    h_flush,
                    core_id * flush_stride + flushes * NSTATS * l,
                    opts,
                )?;
                flushes += 1;
                since_flush = 0;
            }
        }
        Ok(flushes)
    })?;

    // Host-side reduce: fold the flushed partial vectors.
    let mut stats = LinRegStats {
        n: points.len() as u64,
        ..LinRegStats::default()
    };
    if dev.config().exec_mode.is_functional() {
        for (core_id, &n_flushes) in flush_counts.iter().enumerate() {
            for f in 0..n_flushes {
                for s in 0..NSTATS {
                    let off = (core_id * flush_stride + f * NSTATS * l + s * l) * 2;
                    let mut v = vec![0u16; l];
                    dev.copy_from_device(h_flush.offset_by(off)?.truncated(l * 2)?, &mut v)?;
                    let total: u64 = v.iter().map(|&x| x as u64).sum();
                    match s {
                        0 => stats.sx += total,
                        1 => stats.sy += total,
                        2 => stats.sxx += total,
                        3 => stats.syy += total,
                        _ => stats.sxy += total,
                    }
                }
            }
        }
    }
    dev.free(h_in)?;
    dev.free(h_flush)?;
    Ok((stats, report))
}

/// Adds one point set's contributions into the five accumulators.
/// With `even` set, only even lanes carry points (interleaved layout).
fn accumulate_stats(
    ctx: &mut apu_sim::ApuContext<'_>,
    xs: Vr,
    ys: Vr,
    even: Option<Marker>,
    opts: OptConfig,
) -> Result<()> {
    // terms: x, y, x², y², xy
    for s in 0..NSTATS {
        let acc = Vr::new(VR_ACC0 + s as u8);
        let core = ctx.core_mut();
        match s {
            0 => core.cpy_16(VR_T, xs)?,
            1 => core.cpy_16(VR_T, ys)?,
            2 => core.mul_u16(VR_T, xs, xs)?,
            3 => core.mul_u16(VR_T, ys, ys)?,
            _ => core.mul_u16(VR_T, xs, ys)?,
        }
        if let Some(m) = even {
            // zero out the odd (non-point) lanes
            core.cpy_imm_16(VR_T2, 0)?;
            core.cpy_16_msk(VR_T2, VR_T, m)?;
            core.cpy_16(VR_T, VR_T2)?;
        }
        if !opts.reduction_mapping {
            // baseline: spatially reduce every tile before accumulating
            core.add_subgrp_s16(VR_T, VR_T, SG, SG)?;
        }
        core.add_u16(acc, acc, VR_T)?;
    }
    Ok(())
}

/// Reduces (if still unreduced), stores, and clears the accumulators.
fn flush(
    ctx: &mut apu_sim::ApuContext<'_>,
    h_flush: apu_sim::MemHandle,
    elem_off: usize,
    opts: OptConfig,
) -> Result<()> {
    let l = ctx.core().vr_len();
    for s in 0..NSTATS {
        let acc = Vr::new(VR_ACC0 + s as u8);
        {
            let core = ctx.core_mut();
            if opts.reduction_mapping {
                core.add_subgrp_s16(acc, acc, SG, SG)?;
            }
        }
        ctx.store(Vmr::new(46), acc)?;
        ctx.dma_l1_to_l4(h_flush.offset_by((elem_off + s * l) * 2)?, Vmr::new(46))?;
        ctx.core_mut().cpy_imm_16(acc, 0)?;
    }
    Ok(())
}

/// Analytical-framework twin (used for Table 7).
pub fn model(est: &mut cis_model::LatencyEstimator, n_points: usize, opts: OptConfig) {
    let l = 32 * 1024;
    let packed = opts.coalesced_dma;
    let points_per_tile = if packed { 2 * l } else { l / 2 };
    let flush_every = if packed { FLUSH_PACKED } else { FLUSH_UNPACKED };
    let n_tiles = n_points.div_ceil(points_per_tile).max(1);
    let cores = 4usize.min(n_tiles);
    let tiles_per_core = n_tiles.div_ceil(cores);
    // per-core constants (masks / index patterns / accumulator zeroing)
    est.section("setup");
    if packed {
        est.gvml_cpy_imm_16();
    } else {
        est.gvml_create_grp_index_u16();
        est.gvml_cpy_imm_16();
        est.gvml_eq_16();
    }
    for _ in 0..NSTATS {
        est.gvml_cpy_imm_16();
    }
    for tile in 0..tiles_per_core {
        est.section("load");
        est.record(cis_model::TraceOp::DmaL4L2(2 * l * cores));
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        est.section("stats");
        if packed {
            for _ in 0..2 {
                est.record_n(cis_model::TraceOp::Op(apu_sim::VecOp::AShift), 2);
                est.record_n(cis_model::TraceOp::Op(apu_sim::VecOp::And16), 2);
                model_stats(est, false, opts);
            }
        } else {
            est.gvml_cpy_16();
            est.record(cis_model::TraceOp::ShiftE(1));
            model_stats(est, true, opts);
        }
        if (tile + 1) % flush_every == 0 || tile == tiles_per_core - 1 {
            est.section("flush");
            for _ in 0..NSTATS {
                if opts.reduction_mapping {
                    est.gvml_add_subgrp_s16(SG, SG);
                }
                est.gvml_store_16();
                // flush write-back contends for the shared DRAM
                for _ in 0..cores {
                    est.direct_dma_l1_to_l4_32k();
                }
                est.gvml_cpy_imm_16();
            }
        }
    }
}

fn model_stats(est: &mut cis_model::LatencyEstimator, masked: bool, opts: OptConfig) {
    for s in 0..NSTATS {
        if s < 2 {
            est.gvml_cpy_16();
        } else {
            est.gvml_mul_u16();
        }
        if masked {
            est.gvml_cpy_imm_16();
            est.gvml_cpy_16_msk();
            est.gvml_cpy_16();
        }
        if !opts.reduction_mapping {
            est.gvml_add_subgrp_s16(SG, SG);
        }
        est.gvml_add_u16();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20))
    }

    #[test]
    fn cpu_mt_matches_single() {
        let pts = generate(50_000, 1);
        assert_eq!(cpu(&pts), cpu_mt(&pts, 8));
    }

    #[test]
    fn fit_recovers_trend() {
        let pts = generate(100_000, 2);
        let (slope, intercept) = cpu(&pts).fit();
        // y ≈ x/2 + 2 with noise and integer truncation
        assert!((0.2..0.8).contains(&slope), "slope {slope}");
        assert!((1.0..3.0).contains(&intercept), "intercept {intercept}");
    }

    #[test]
    fn apu_baseline_matches_cpu() {
        let pts = generate(40_000, 3);
        let mut dev = device();
        let (s, _) = apu(&mut dev, &pts, OptConfig::none()).unwrap();
        assert_eq!(s, cpu(&pts));
    }

    #[test]
    fn apu_all_opts_matches_cpu() {
        let pts = generate(200_000, 4);
        let mut dev = device();
        let (s, _) = apu(&mut dev, &pts, OptConfig::all()).unwrap();
        assert_eq!(s, cpu(&pts));
    }

    #[test]
    fn apu_variants_match_cpu() {
        let pts = generate(90_000, 5);
        let expected = cpu(&pts);
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (s, _) = apu(&mut dev, &pts, o).unwrap();
            assert_eq!(s, expected, "{}", o.label());
        }
    }

    #[test]
    fn packing_is_the_dominant_optimization() {
        let pts = generate(500_000, 6);
        let mut dev = device();
        let (_, base) = apu(&mut dev, &pts, OptConfig::none()).unwrap();
        let (_, o1) = apu(&mut dev, &pts, OptConfig::only_opt1()).unwrap();
        let (_, o2) = apu(&mut dev, &pts, OptConfig::only_opt2()).unwrap();
        let (_, all) = apu(&mut dev, &pts, OptConfig::all()).unwrap();
        // opt2 (packing) beats opt1 standalone, as the paper reports for
        // linear regression; all opts is fastest.
        assert!(o2.cycles < o1.cycles);
        assert!(o2.cycles.get() * 2 < base.cycles.get());
        assert!(all.cycles <= o2.cycles);
        assert!(o1.cycles <= base.cycles);
    }

    #[test]
    fn flush_boundaries_preserve_exactness() {
        // More tiles than one flush window.
        let n = (2 * 32 * 1024) * (FLUSH_PACKED + 3);
        let pts = generate(n, 7);
        let mut dev = device();
        let (s, _) = apu(&mut dev, &pts, OptConfig::all()).unwrap();
        assert_eq!(s, cpu(&pts));
    }

    #[test]
    fn instruction_estimate_matches_table6_scale() {
        // 512 MB at 4 B/point = 128 M points → ≈ 3.8 G instructions.
        let est = cpu_inst_estimate(128 * 1024 * 1024);
        assert!((3.2e9..4.4e9).contains(&(est as f64)));
    }
}
