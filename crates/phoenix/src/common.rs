//! Shared plumbing for the Phoenix applications: the optimization
//! configuration, seeded text generation, tiling helpers, and the
//! multi-core tile scheduler.

use apu_sim::{ApuContext, ApuDevice, CoreTask, TaskReport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::Result;

/// Which of the paper's three optimizations a device kernel applies.
///
/// ```
/// use phoenix::OptConfig;
/// assert_eq!(OptConfig::all().label(), "all opts");
/// assert_eq!(OptConfig::only_opt1().label(), "opt1");
/// assert!(OptConfig::none().is_baseline());
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct OptConfig {
    /// Opt1 — communication-aware reduction mapping (§4.2).
    pub reduction_mapping: bool,
    /// Opt2 — coalesced DMA (§4.3).
    pub coalesced_dma: bool,
    /// Opt3 — broadcast-friendly data layout (§4.4).
    pub broadcast_layout: bool,
}

impl OptConfig {
    /// No optimizations (the APU baseline).
    pub fn none() -> Self {
        OptConfig::default()
    }

    /// All three optimizations.
    pub fn all() -> Self {
        OptConfig {
            reduction_mapping: true,
            coalesced_dma: true,
            broadcast_layout: true,
        }
    }

    /// Only communication-aware reduction mapping.
    pub fn only_opt1() -> Self {
        OptConfig {
            reduction_mapping: true,
            ..OptConfig::default()
        }
    }

    /// Only DMA coalescing.
    pub fn only_opt2() -> Self {
        OptConfig {
            coalesced_dma: true,
            ..OptConfig::default()
        }
    }

    /// Only the broadcast-friendly layout.
    pub fn only_opt3() -> Self {
        OptConfig {
            broadcast_layout: true,
            ..OptConfig::default()
        }
    }

    /// The five Fig. 13 variants in plot order.
    pub fn fig13_variants() -> [OptConfig; 5] {
        [
            OptConfig::none(),
            OptConfig::only_opt1(),
            OptConfig::only_opt2(),
            OptConfig::only_opt3(),
            OptConfig::all(),
        ]
    }

    /// Whether no optimization is enabled.
    pub fn is_baseline(&self) -> bool {
        !self.reduction_mapping && !self.coalesced_dma && !self.broadcast_layout
    }

    /// Display label matching the figure legends.
    pub fn label(&self) -> &'static str {
        match (
            self.reduction_mapping,
            self.coalesced_dma,
            self.broadcast_layout,
        ) {
            (false, false, false) => "baseline",
            (true, false, false) => "opt1",
            (false, true, false) => "opt2",
            (false, false, true) => "opt3",
            (true, true, true) => "all opts",
            (true, true, false) => "opt1+2",
            (true, false, true) => "opt1+3",
            (false, true, true) => "opt2+3",
        }
    }
}

/// A small fixed vocabulary with Zipf-like frequencies, used by the text
/// workloads (word count, reverse index, string match). All words are
/// lowercase ASCII, 3–9 characters, and pairwise distinct.
pub fn vocabulary() -> Vec<&'static str> {
    vec![
        "the", "data", "memory", "vector", "cache", "bank", "core", "chip", "sram", "dram",
        "index", "query", "model", "layer", "token", "fetch", "store", "load", "shift", "merge",
        "batch", "tile", "page", "line", "word", "unit", "node", "edge", "graph", "tree", "hash",
        "sort", "scan", "join", "table", "array", "queue", "stack", "heap", "pool", "block",
        "frame", "trace", "event", "clock", "cycle", "power", "energy", "signal", "logic", "adder",
        "latch", "wire", "port", "lane", "group", "slice", "mask", "flag", "count", "value",
        "total", "delta", "alpha",
    ]
}

/// Generates a deterministic space-separated text corpus of roughly
/// `bytes` bytes with Zipf-like word frequencies from [`vocabulary`].
pub fn text_corpus(bytes: usize, seed: u64) -> String {
    let vocab = vocabulary();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::with_capacity(bytes + 16);
    while out.len() < bytes {
        // Zipf-ish: index ~ floor(v^2 * len) biases toward early words.
        let u: f64 = rng.gen();
        let idx = ((u * u) * vocab.len() as f64) as usize;
        out.push_str(vocab[idx.min(vocab.len() - 1)]);
        out.push(' ');
    }
    out.truncate(bytes);
    out
}

/// Splits `n_items` as evenly as possible across `parts`, returning
/// `(start, end)` ranges (some possibly empty).
pub fn split_ranges(n_items: usize, parts: usize) -> Vec<(usize, usize)> {
    let parts = parts.max(1);
    let base = n_items / parts;
    let extra = n_items % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let len = base + usize::from(p < extra);
        out.push((start, start + len));
        start += len;
    }
    out
}

/// Runs one closure per core over a partition of `n_tiles` tiles,
/// collecting each core's partial result. Cores contend for L4 bandwidth
/// exactly as the device model dictates.
///
/// # Errors
///
/// Propagates kernel errors.
pub fn parallel_tiles<P, F>(
    dev: &mut ApuDevice,
    n_tiles: usize,
    work: F,
) -> Result<(Vec<P>, TaskReport)>
where
    P: Default + Send,
    F: Fn(&mut ApuContext<'_>, usize, usize) -> Result<P>,
{
    let cores = dev.config().cores.min(n_tiles.max(1));
    let ranges = split_ranges(n_tiles, cores);
    let mut partials: Vec<P> = (0..cores).map(|_| P::default()).collect();
    let work = &work;
    let tasks: Vec<CoreTask<'_>> = partials
        .iter_mut()
        .zip(ranges)
        .map(|(slot, (start, end))| {
            let f: CoreTask<'_> = Box::new(move |ctx: &mut ApuContext<'_>| {
                *slot = work(ctx, start, end)?;
                Ok(())
            });
            f
        })
        .collect();
    let report = dev.run_parallel(tasks)?;
    Ok((partials, report))
}

/// Number of worker threads for the multi-threaded CPU baselines (the
/// paper configures Phoenix with up to 16).
pub fn cpu_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(16)
}

/// Scatter/gather helper for the multi-threaded CPU baselines: maps
/// chunks of `items` on worker threads and folds the partial results.
pub fn map_reduce<T, P, M, R>(items: &[T], threads: usize, map: M, reduce: R) -> P
where
    T: Sync,
    P: Send + Default,
    M: Fn(&[T]) -> P + Sync,
    R: Fn(P, P) -> P,
{
    let threads = threads.max(1);
    if threads == 1 || items.len() < 2 {
        return map(items);
    }
    let ranges = split_ranges(items.len(), threads);
    let mut partials: Vec<P> = Vec::with_capacity(threads);
    std::thread::scope(|s| {
        let map = &map;
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|(a, b)| s.spawn(move || map(&items[a..b])))
            .collect();
        for h in handles {
            partials.push(h.join().expect("worker panicked"));
        }
    });
    partials.into_iter().fold(P::default(), reduce)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn opt_labels_cover_all_combinations() {
        for o in OptConfig::fig13_variants() {
            assert!(!o.label().is_empty());
        }
        assert_eq!(
            OptConfig {
                reduction_mapping: true,
                coalesced_dma: true,
                broadcast_layout: false
            }
            .label(),
            "opt1+2"
        );
    }

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let a = text_corpus(1000, 7);
        let b = text_corpus(1000, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 1000);
        assert_ne!(a, text_corpus(1000, 8));
        // all words from the vocabulary
        let vocab = vocabulary();
        for w in a.split_whitespace().take(50) {
            assert!(
                vocab.contains(&w) || vocab.iter().any(|v| v.starts_with(w)),
                "unexpected word {w}"
            );
        }
    }

    #[test]
    fn vocabulary_is_distinct_and_wellformed() {
        let vocab = vocabulary();
        let mut sorted = vocab.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), vocab.len(), "duplicate vocabulary words");
        for w in vocab {
            assert!(w.len() >= 3 && w.len() <= 9);
            assert!(w.bytes().all(|b| b.is_ascii_lowercase()));
        }
    }

    #[test]
    fn split_ranges_covers_everything() {
        let r = split_ranges(10, 4);
        assert_eq!(r, vec![(0, 3), (3, 6), (6, 8), (8, 10)]);
        assert_eq!(split_ranges(2, 4).len(), 4);
        assert_eq!(
            split_ranges(0, 3).iter().map(|(a, b)| b - a).sum::<usize>(),
            0
        );
    }

    #[test]
    fn map_reduce_matches_serial() {
        let data: Vec<u64> = (0..10_000).collect();
        let serial: u64 = data.iter().sum();
        let parallel = map_reduce(&data, 8, |chunk| chunk.iter().sum::<u64>(), |a, b| a + b);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn parallel_tiles_partitions_work() {
        let mut dev = ApuDevice::new(apu_sim::SimConfig::default().with_l4_bytes(1 << 20));
        let (partials, report) = parallel_tiles(&mut dev, 10, |ctx, start, end| {
            // charge something proportional to the range
            for _ in start..end {
                ctx.core_mut().charge(apu_sim::VecOp::AddU16);
            }
            Ok(end - start)
        })
        .unwrap();
        assert_eq!(partials.iter().sum::<usize>(), 10);
        assert_eq!(report.cores_used, 4);
        assert!(report.cycles.get() > 0);
    }
}
