//! Phoenix **Reverse Index**: extract link targets from HTML-like text
//! and build the inverted map *url → documents that reference it*.
//!
//! The device finds `href="` anchors; the control processor (host side
//! of the MapReduce split) reads each URL text and assembles the index.
//! Because every anchor *position* must leave the vector register
//! through the serial RSP FIFO, reverse index keeps a fine-grained
//! element-access component no optimization removes — the paper's
//! explanation for its limited APU gains.
//!
//! Optimization mapping:
//!
//! * **opt1** (reduction mapping): the naive port marks candidates on
//!   the *first* pattern character only and extracts every candidate for
//!   CP-side verification; the optimized kernel resolves the full
//!   pattern with on-VR comparisons first, extracting only true matches.
//! * **opt2**: byte-packed text.
//! * **opt3**: no broadcast tables — no effect.

use std::collections::BTreeMap;

use apu_sim::{ApuDevice, TaskReport};
use gvml::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{map_reduce, parallel_tiles, OptConfig};
use crate::textops::TextKernel;
use crate::Result;

/// The anchor pattern preceding every link target.
pub const ANCHOR: &[u8] = b"href=\"";
/// Characters per "document" when assigning link positions to documents.
pub const DOC_BYTES: usize = 2048;

/// The inverted index: url → sorted, deduplicated document ids.
pub type ReverseIndex = BTreeMap<String, Vec<u32>>;

/// Generates a corpus with `<a href="uNNN">` anchors sprinkled through
/// vocabulary text (≈ one anchor per 200 characters, 50 distinct urls).
pub fn generate(bytes: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let words = crate::common::text_corpus(bytes, seed ^ 0x5eed);
    let mut out = String::with_capacity(bytes + bytes / 16);
    let mut taken = 0usize;
    let word_iter = words.split_ascii_whitespace();
    for w in word_iter {
        if out.len() >= bytes {
            break;
        }
        out.push_str(w);
        out.push(' ');
        taken += w.len() + 1;
        if taken >= 150 + (rng.gen_range(0..100)) {
            let url = format!("u{:03}", rng.gen_range(0..50));
            out.push_str(&format!("<a href=\"{url}\"> "));
            taken = 0;
        }
    }
    out.truncate(bytes);
    out
}

/// Extracts the url starting at `pos + ANCHOR.len()` (up to the closing
/// quote), if well-formed.
fn url_at(text: &str, pos: usize) -> Option<&str> {
    let start = pos + ANCHOR.len();
    let rest = text.get(start..)?;
    let end = rest.find('"')?;
    if end == 0 || end > 32 {
        return None;
    }
    Some(&rest[..end])
}

fn index_from_positions(text: &str, positions: impl IntoIterator<Item = usize>) -> ReverseIndex {
    let mut index = ReverseIndex::new();
    for pos in positions {
        if let Some(url) = url_at(text, pos) {
            index
                .entry(url.to_string())
                .or_default()
                .push((pos / DOC_BYTES) as u32);
        }
    }
    for docs in index.values_mut() {
        docs.sort_unstable();
        docs.dedup();
    }
    index
}

/// Single-threaded CPU reference.
pub fn cpu(text: &str) -> ReverseIndex {
    let mut positions = Vec::new();
    let bytes = text.as_bytes();
    let mut i = 0;
    while i + ANCHOR.len() <= bytes.len() {
        if &bytes[i..i + ANCHOR.len()] == ANCHOR {
            positions.push(i);
        }
        i += 1;
    }
    index_from_positions(text, positions)
}

/// Multi-threaded CPU implementation: chunks scan for anchors (with
/// pattern-length overlap), and the partial indices merge.
pub fn cpu_mt(text: &str, threads: usize) -> ReverseIndex {
    let n = text.len();
    let threads = threads.max(1);
    let ranges: Vec<(usize, usize)> = crate::common::split_ranges(n, threads);
    let positions = map_reduce(
        &ranges,
        threads,
        |chunk| {
            let mut hits = Vec::new();
            for &(a, b) in chunk {
                let hi = (b + ANCHOR.len() - 1).min(n);
                let bytes = &text.as_bytes()[a..hi];
                for i in 0..bytes.len().saturating_sub(ANCHOR.len() - 1) {
                    if &bytes[i..i + ANCHOR.len()] == ANCHOR {
                        hits.push(a + i);
                    }
                }
            }
            hits
        },
        |mut x, mut y| {
            x.append(&mut y);
            x
        },
    );
    index_from_positions(text, positions)
}

/// Estimated retired CPU instructions for Table 6 (paper: 4.8 G for
/// 100 MB ≈ 48 per byte — the original parses full HTML).
pub fn cpu_inst_estimate(bytes: usize) -> u64 {
    bytes as u64 * 48
}

/// Device implementation.
///
/// # Errors
///
/// Fails on device-memory exhaustion or kernel errors.
pub fn apu(dev: &mut ApuDevice, text: &str, opts: OptConfig) -> Result<(ReverseIndex, TaskReport)> {
    let tk = TextKernel::new(dev, text.as_bytes(), opts.coalesced_dma)?;
    let n_tiles = tk.n_tiles;
    let planes = tk.planes_needed(ANCHOR.len(), false);
    // Expected extractions per (tile, parity) for timing-only runs:
    // ~1 anchor / 200 chars optimized; ~5% of characters are 'h'
    // candidates for the naive single-character filter.
    let spt = tk.starts_per_tile / tk.parities();
    let expected = if opts.reduction_mapping {
        (spt / 200).max(1)
    } else {
        (spt / 20).max(1)
    };

    let (partials, report) = {
        let tk = &tk;
        parallel_tiles(dev, n_tiles, move |ctx, start, end| {
            let mut positions: Vec<usize> = Vec::new();
            for tile in start..end {
                tk.load_tile(ctx, tile, planes)?;
                for parity in 0..tk.parities() {
                    let pattern: &[u8] = if opts.reduction_mapping {
                        ANCHOR
                    } else {
                        &ANCHOR[..1] // candidates only; CP verifies
                    };
                    tk.mark(ctx, pattern, false, parity, Marker::new(1))?;
                    positions.extend(tk.extract_positions(
                        ctx,
                        tile,
                        parity,
                        Marker::new(1),
                        expected,
                    )?);
                }
            }
            Ok(positions)
        })?
    };
    tk.free(dev)?;

    // CP-side verification (free host work: candidate checks read the
    // already-resident input) and index assembly.
    let mut all: Vec<usize> = partials.into_iter().flatten().collect();
    all.retain(|&p| text.as_bytes()[p..].starts_with(ANCHOR));
    all.sort_unstable();
    Ok((index_from_positions(text, all), report))
}

/// Analytical-framework twin.
pub fn model(est: &mut cis_model::LatencyEstimator, bytes: usize, opts: OptConfig) {
    let l = 32 * 1024;
    let packed = opts.coalesced_dma;
    let chars_per_tile = if packed { 2 * l } else { l } - 16;
    let cores = 4usize;
    let tiles_per_core = bytes.div_ceil(chars_per_tile).max(1).div_ceil(cores);
    let parities = if packed { 2 } else { 1 };
    let spt = chars_per_tile / parities;
    for _ in 0..tiles_per_core {
        est.section("load");
        est.record(cis_model::TraceOp::DmaL4L2(2 * l * cores));
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        for _ in 0..ANCHOR.len() {
            est.gvml_cpy_16();
            est.record(cis_model::TraceOp::ShiftE(1));
        }
        est.gvml_create_grp_index_u16();
        est.gvml_cpy_imm_16();
        est.gvml_lt_u16();
        est.section("match");
        for _ in 0..parities {
            let chars = if opts.reduction_mapping {
                ANCHOR.len()
            } else {
                1
            };
            for _ in 0..chars {
                est.gvml_eq_16();
                est.record(cis_model::TraceOp::Op(apu_sim::VecOp::And16));
            }
            let hits = if opts.reduction_mapping {
                spt / 200
            } else {
                spt / 20
            };
            est.gvml_cpy_from_mrk_16_msk(hits.max(1));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(32 << 20))
    }

    #[test]
    fn generator_embeds_anchors() {
        let text = generate(50_000, 1);
        assert!(text.matches("href=\"").count() > 50);
    }

    #[test]
    fn cpu_mt_matches_single() {
        let text = generate(120_000, 2);
        assert_eq!(cpu(&text), cpu_mt(&text, 8));
    }

    #[test]
    fn apu_variants_match_cpu() {
        let text = generate(70_000, 3);
        let expected = cpu(&text);
        assert!(!expected.is_empty());
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (idx, _) = apu(&mut dev, &text, o).unwrap();
            assert_eq!(idx, expected, "{}", o.label());
        }
    }

    #[test]
    fn opt1_reduces_extraction_volume() {
        let text = generate(150_000, 4);
        let mut dev = device();
        let (_, base) = apu(&mut dev, &text, OptConfig::none()).unwrap();
        let (_, o1) = apu(&mut dev, &text, OptConfig::only_opt1()).unwrap();
        assert!(o1.stats.pio_elems * 3 < base.stats.pio_elems);
        assert!(o1.cycles < base.cycles);
    }

    #[test]
    fn documents_are_assigned_correctly() {
        let mut text = " ".repeat(DOC_BYTES - 10);
        text.push_str("<a href=\"u001\"> ");
        text.push_str(&" ".repeat(DOC_BYTES));
        text.push_str("<a href=\"u001\"> ");
        let idx = cpu(&text);
        // anchor 1 starts 7 bytes into... the href begins in doc 0;
        // second is two documents later
        let docs = &idx["u001"];
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[1] - docs[0], 2);
    }

    #[test]
    fn instruction_estimate_matches_table6_scale() {
        let est = cpu_inst_estimate(100 * 1024 * 1024);
        assert!((4.3e9..5.5e9).contains(&(est as f64)));
    }
}
