//! Phoenix **Word Count**: frequency of every vocabulary word in a text
//! corpus.
//!
//! The device marks whole-word occurrences of each vocabulary word with
//! offset-plane comparisons (see [`crate::textops`]).
//!
//! Optimization mapping:
//!
//! * **opt1** (reduction mapping): the naive MapReduce port *emits* one
//!   (word, 1) pair per occurrence — every scattered match leaves the VR
//!   through the RSP FIFO. The communication-aware version reduces
//!   on-device with `count_m` and emits one (word, count) per tile.
//! * **opt2** (coalesced DMA / packing): byte-packed text halves the
//!   off-chip traffic.
//! * **opt3**: comparisons use immediates, not lookup tables — no effect
//!   (the paper lists word count under the opt1 winners).

use std::collections::BTreeMap;

use apu_sim::{ApuDevice, TaskReport};
use gvml::prelude::*;

use crate::common::{map_reduce, parallel_tiles, vocabulary, OptConfig};
use crate::textops::TextKernel;
use crate::Result;

/// Word frequencies over the fixed vocabulary.
pub type WordCounts = BTreeMap<String, u64>;

/// Generates a corpus (see [`crate::common::text_corpus`]).
pub fn generate(bytes: usize, seed: u64) -> String {
    crate::common::text_corpus(bytes, seed)
}

/// Single-threaded CPU reference.
pub fn cpu(text: &str) -> WordCounts {
    let mut counts: WordCounts = vocabulary()
        .into_iter()
        .map(|w| (w.to_string(), 0))
        .collect();
    for token in text.split_ascii_whitespace() {
        if let Some(c) = counts.get_mut(token) {
            *c += 1;
        }
    }
    counts
}

/// Multi-threaded CPU implementation: the text splits at whitespace
/// boundaries, chunks map to partial counts, and the partials merge.
pub fn cpu_mt(text: &str, threads: usize) -> WordCounts {
    let bytes = text.as_bytes();
    let threads = threads.max(1);
    // chunk boundaries aligned to whitespace
    let mut bounds = vec![0usize];
    for t in 1..threads {
        let mut pos = bytes.len() * t / threads;
        while pos < bytes.len() && bytes[pos] != b' ' {
            pos += 1;
        }
        bounds.push(pos);
    }
    bounds.push(bytes.len());
    bounds.dedup();
    let chunks: Vec<&str> = bounds
        .windows(2)
        .map(|w| std::str::from_utf8(&bytes[w[0]..w[1]]).expect("ascii input"))
        .collect();
    map_reduce(
        &chunks,
        threads,
        |cs| {
            let mut acc = WordCounts::new();
            for c in cs {
                for (w, n) in cpu(c) {
                    *acc.entry(w).or_insert(0) += n;
                }
            }
            acc
        },
        |mut a, b| {
            for (w, n) in b {
                *a.entry(w).or_insert(0) += n;
            }
            a
        },
    )
}

/// Estimated retired CPU instructions for Table 6 (paper: 0.7 G for
/// 10 MB ≈ 70 per byte).
pub fn cpu_inst_estimate(bytes: usize) -> u64 {
    bytes as u64 * 70
}

/// Device implementation.
///
/// # Errors
///
/// Fails on device-memory exhaustion or kernel errors.
pub fn apu(dev: &mut ApuDevice, text: &str, opts: OptConfig) -> Result<(WordCounts, TaskReport)> {
    let vocab = vocabulary();
    let tk = TextKernel::new(dev, text.as_bytes(), opts.coalesced_dma)?;
    let n_tiles = tk.n_tiles;
    let max_planes = tk.planes_needed(9, true);
    // Rough per-(tile, word, parity) match count for timing-only runs.
    let expected = (tk.starts_per_tile / tk.parities() / (6 * vocab.len())).max(1);

    let (partials, report) = {
        let tk = &tk;
        let vocab = &vocab;
        parallel_tiles(dev, n_tiles, move |ctx, start, end| {
            let mut counts = vec![0u64; vocab.len()];
            for tile in start..end {
                tk.load_tile(ctx, tile, max_planes)?;
                for (wi, word) in vocab.iter().enumerate() {
                    for parity in 0..tk.parities() {
                        tk.mark(ctx, word.as_bytes(), true, parity, Marker::new(1))?;
                        if opts.reduction_mapping {
                            counts[wi] += tk.count(ctx, Marker::new(1))?;
                        } else {
                            // naive port: emit each (word, 1) pair via the FIFO
                            let hits =
                                tk.extract_positions(ctx, tile, parity, Marker::new(1), expected)?;
                            counts[wi] += hits.len() as u64;
                        }
                    }
                }
            }
            Ok(counts)
        })?
    };

    let mut out: WordCounts = vocab.iter().map(|w| (w.to_string(), 0)).collect();
    for p in partials {
        for (wi, n) in p.iter().enumerate() {
            *out.get_mut(vocab[wi]).expect("vocab key") += n;
        }
    }
    tk.free(dev)?;
    Ok((out, report))
}

/// Analytical-framework twin (models the configured kernel).
pub fn model(est: &mut cis_model::LatencyEstimator, bytes: usize, opts: OptConfig) {
    let l = 32 * 1024;
    let vocab = vocabulary();
    let packed = opts.coalesced_dma;
    let chars_per_tile = if packed { 2 * l } else { l } - 16;
    let cores = 4usize;
    let n_tiles = bytes.div_ceil(chars_per_tile).max(1);
    let tiles_per_core = n_tiles.div_ceil(cores);
    let parities = if packed { 2 } else { 1 };
    let planes = 12;
    for _ in 0..tiles_per_core {
        est.section("load");
        est.record(cis_model::TraceOp::DmaL4L2(2 * l * cores));
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        if packed {
            est.gvml_cpy_imm_16();
            est.record(cis_model::TraceOp::Op(apu_sim::VecOp::And16));
            est.gvml_shift_imm_16();
        }
        for _ in 0..planes - if packed { 2 } else { 1 } {
            est.gvml_cpy_16();
            est.record(cis_model::TraceOp::ShiftE(1));
        }
        est.gvml_create_grp_index_u16();
        est.gvml_cpy_imm_16();
        est.gvml_lt_u16();
        est.section("match");
        for word in &vocab {
            for _ in 0..parities {
                for _ in 0..word.len() + 2 {
                    est.gvml_eq_16();
                    est.record(cis_model::TraceOp::Op(apu_sim::VecOp::And16));
                }
                if opts.reduction_mapping {
                    est.gvml_count_m();
                } else {
                    let hits = chars_per_tile / parities / (6 * vocab.len());
                    est.gvml_cpy_from_mrk_16_msk(hits.max(1));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(32 << 20))
    }

    #[test]
    fn cpu_mt_matches_single() {
        let text = generate(200_000, 1);
        assert_eq!(cpu(&text), cpu_mt(&text, 8));
    }

    #[test]
    fn counts_are_zipf_like() {
        let text = generate(100_000, 2);
        let counts = cpu(&text);
        // the first vocabulary word is the most common by construction
        let max = counts.values().max().copied().unwrap();
        assert_eq!(counts["the"], max);
        assert!(counts.values().sum::<u64>() > 1000);
    }

    #[test]
    fn apu_all_opts_matches_cpu() {
        let text = generate(80_000, 3);
        let mut dev = device();
        let (counts, _) = apu(&mut dev, &text, OptConfig::all()).unwrap();
        assert_eq!(counts, cpu(&text));
    }

    #[test]
    fn apu_baseline_matches_cpu() {
        let text = generate(50_000, 4);
        let mut dev = device();
        let (counts, _) = apu(&mut dev, &text, OptConfig::none()).unwrap();
        assert_eq!(counts, cpu(&text));
    }

    #[test]
    fn apu_variants_match_cpu() {
        let text = generate(60_000, 5);
        let expected = cpu(&text);
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (counts, _) = apu(&mut dev, &text, o).unwrap();
            assert_eq!(counts, expected, "{}", o.label());
        }
    }

    #[test]
    fn opt1_avoids_per_occurrence_emission() {
        let text = generate(150_000, 6);
        let mut dev = device();
        let (_, base) = apu(&mut dev, &text, OptConfig::none()).unwrap();
        let (_, o1) = apu(&mut dev, &text, OptConfig::only_opt1()).unwrap();
        assert!(o1.stats.pio_elems * 10 < base.stats.pio_elems.max(1));
        assert!(
            o1.cycles.get() * 2 < base.cycles.get(),
            "opt1 {} vs base {}",
            o1.cycles,
            base.cycles
        );
    }

    #[test]
    fn instruction_estimate_matches_table6_scale() {
        let est = cpu_inst_estimate(10 * 1024 * 1024);
        assert!((0.6e9..0.8e9).contains(&(est as f64)));
    }
}
