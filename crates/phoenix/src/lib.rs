#![warn(missing_docs)]

//! The Phoenix benchmark suite (Ranger et al., HPCA '07) on CPU and on
//! the simulated compute-in-SRAM device (paper §5.2).
//!
//! Seven data-intensive applications, each with:
//!
//! * a seeded synthetic workload generator (scaled-down by default; the
//!   paper input sizes are reachable with `--paper-scale` in the bench
//!   harness),
//! * a single-threaded CPU reference,
//! * a multi-threaded CPU implementation in the scatter/gather MapReduce
//!   style of the original suite,
//! * a device implementation whose data movement and reduction strategy
//!   is controlled by [`OptConfig`] — baseline, each of the paper's three
//!   optimizations standalone, and all together (Fig. 13's variants), and
//! * an analytical-framework twin used for the Table 7 model validation.
//!
//! Device implementations compute real results in functional mode and are
//! validated against the CPU reference in each module's tests.

pub mod common;
pub mod histogram;
pub mod kmeans;
pub mod linreg;
pub mod matmul;
pub mod revindex;
pub mod strmatch;
pub mod textops;
pub mod wordcount;

pub use common::{text_corpus, OptConfig};

/// Crate-wide result alias (errors are [`apu_sim::Error`]).
pub type Result<T> = apu_sim::Result<T>;

/// The seven applications, in the paper's Table 6 order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum App {
    /// Per-byte value histogram (256 bins).
    Histogram,
    /// Least-squares linear regression over (x, y) points.
    LinearRegression,
    /// Dense integer matrix multiplication.
    MatrixMultiply,
    /// Lloyd's k-means over low-dimensional points.
    Kmeans,
    /// Link extraction / reverse indexing over HTML-like text.
    ReverseIndex,
    /// Multi-key exact string matching.
    StringMatch,
    /// Word-frequency counting over a fixed vocabulary.
    WordCount,
}

impl App {
    /// All applications in Table 6 order.
    pub const ALL: [App; 7] = [
        App::Histogram,
        App::LinearRegression,
        App::MatrixMultiply,
        App::Kmeans,
        App::ReverseIndex,
        App::StringMatch,
        App::WordCount,
    ];

    /// Display name as printed in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            App::Histogram => "Histogram",
            App::LinearRegression => "Linear Regression",
            App::MatrixMultiply => "Matrix Multiply",
            App::Kmeans => "Kmeans",
            App::ReverseIndex => "Reverse Index",
            App::StringMatch => "String Match",
            App::WordCount => "Word Count",
        }
    }

    /// The paper's input size description (Table 6).
    pub fn paper_input(&self) -> &'static str {
        match self {
            App::Histogram => "1.5GB",
            App::LinearRegression => "512MB",
            App::MatrixMultiply => "1,024 x 1,024",
            App::Kmeans => "128k",
            App::ReverseIndex => "100MB",
            App::StringMatch => "512MB",
            App::WordCount => "10MB",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_metadata() {
        assert_eq!(App::ALL.len(), 7);
        for app in App::ALL {
            assert!(!app.name().is_empty());
            assert!(!app.paper_input().is_empty());
        }
    }
}
