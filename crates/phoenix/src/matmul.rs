//! Phoenix **Matrix Multiply**: dense integer matmul `C = A × B` over
//! small non-negative integers (entries < 4 so a 1,024-deep dot product
//! fits a 16-bit lane).
//!
//! The kernels mirror the binary-matmul variants of §4/§5.1, with
//! element-wise `mul_u16` in place of XOR/popcount:
//!
//! * **baseline** — inner product: A rows duplicated across the VR,
//!   B column tiles resident in L1, spatial subgroup reductions, PIO
//!   stores of the scattered results.
//! * **opt1** — temporal scalar-vector product: accumulators per output
//!   row block, per-k duplicated B rows, PIO scalar broadcasts,
//!   contiguous DMA write-back.
//! * **opt2** — baseline with the A-row duplication traffic coalesced
//!   into full-vector loads plus on-chip subgroup copies.
//! * **opt3** — baseline with a paired-row layout halving per-row DMA
//!   initializations.
//! * **all opts** — temporal + coalesced B reuse + lookup-based
//!   broadcasting from an L3-staged transposed A with a
//!   broadcast-friendly window.

use apu_sim::dma::ChunkCopy;
use apu_sim::{ApuDevice, Error, TaskReport, Vmr, Vr};
use gvml::prelude::*;
use gvml::shift::ShiftDir;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::common::{map_reduce, OptConfig};
use crate::Result;

/// A dense row-major u16 matrix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mat {
    /// Rows.
    pub rows: usize,
    /// Columns.
    pub cols: usize,
    /// Row-major elements.
    pub data: Vec<u16>,
}

impl Mat {
    /// Seeded random matrix with entries in `0..4`.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        Mat {
            rows,
            cols,
            data: (0..rows * cols).map(|_| rng.gen_range(0..4u16)).collect(),
        }
    }

    /// Element access.
    pub fn at(&self, r: usize, c: usize) -> u16 {
        self.data[r * self.cols + c]
    }
}

/// Single-threaded CPU reference: `C = A × B`.
///
/// Deliberately uses the original Phoenix kernel's i-j-k loop order with
/// a strided column walk over B — the paper's CPU baseline is the
/// official (scalar, non-blocked) Phoenix implementation, whose ~21
/// instructions per multiply-accumulate Table 6 reports. A cache-blocked
/// SIMD kernel would be a different baseline than the paper compares
/// against.
///
/// # Panics
///
/// Panics if inner dimensions disagree.
pub fn cpu(a: &Mat, b: &Mat) -> Vec<u16> {
    assert_eq!(a.cols, b.rows, "inner dimension mismatch");
    let (m, k, n) = (a.rows, a.cols, b.cols);
    let mut c = vec![0u16; m * n];
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0u16;
            for kk in 0..k {
                acc = acc.wrapping_add(a.data[i * k + kk].wrapping_mul(b.data[kk * n + j]));
            }
            c[i * n + j] = acc;
        }
    }
    c
}

/// Multi-threaded CPU implementation (rows of C partitioned).
pub fn cpu_mt(a: &Mat, b: &Mat, threads: usize) -> Vec<u16> {
    let rows: Vec<usize> = (0..a.rows).collect();
    let partial = map_reduce(
        &rows,
        threads,
        |chunk| {
            let mut out: Vec<(usize, Vec<u16>)> = Vec::new();
            for &i in chunk {
                let sub = Mat {
                    rows: 1,
                    cols: a.cols,
                    data: a.data[i * a.cols..(i + 1) * a.cols].to_vec(),
                };
                out.push((i, cpu(&sub, b)));
            }
            out
        },
        |mut x, mut y| {
            x.append(&mut y);
            x
        },
    );
    let n = b.cols;
    let mut c = vec![0u16; a.rows * n];
    for (i, row) in partial {
        c[i * n..(i + 1) * n].copy_from_slice(&row);
    }
    c
}

/// Estimated retired CPU instructions for Table 6 (paper: 22.6 G for
/// 1,024³ ≈ 21 per multiply-accumulate).
pub fn cpu_inst_estimate(m: usize, n: usize, k: usize) -> u64 {
    (m as u64) * (n as u64) * (k as u64) * 21
}

const VR_A: Vr = Vr::new(0);
const VR_B: Vr = Vr::new(1);
const VR_T: Vr = Vr::new(2);
const VR_ACC: Vr = Vr::new(3);
const VR_IDX: Vr = Vr::new(4);
const VR_STAGE: Vr = Vr::new(5);
const VMR_STAGE: Vmr = Vmr::new(47);
const VMR_B: Vmr = Vmr::new(46);
const VMR_POOL: u8 = 40;

/// Device integer matmul. Runs on one core (matmul is the compute-bound
/// member of the suite; its latency is dominated by VR operations, not
/// the shared DRAM).
///
/// # Errors
///
/// Fails on shape constraints: `K` a power of two dividing the VR
/// length; for the temporal variants `N` must divide the VR length and
/// `M` be a multiple of `l/N`.
pub fn apu(
    dev: &mut ApuDevice,
    a: &Mat,
    b: &Mat,
    opts: OptConfig,
) -> Result<(Vec<u16>, TaskReport)> {
    if a.cols != b.rows {
        return Err(Error::InvalidArg("inner dimension mismatch".into()));
    }
    let temporal = opts.reduction_mapping;
    if temporal {
        apu_temporal(dev, a, b, opts)
    } else {
        apu_inner(dev, a, b, opts)
    }
}

fn apu_inner(
    dev: &mut ApuDevice,
    a: &Mat,
    b: &Mat,
    opts: OptConfig,
) -> Result<(Vec<u16>, TaskReport)> {
    let l = dev.config().vr_len;
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if !k.is_power_of_two() || k < 4 || k > l {
        return Err(Error::InvalidArg(format!(
            "inner dimension {k} must be a power of two in 4..={l}"
        )));
    }
    let cols_per_tile = l / k;
    let n_tiles = n.div_ceil(cols_per_tile);
    if n_tiles > VMR_POOL as usize {
        return Err(Error::InvalidArg(format!(
            "{n_tiles} B tiles exceed the resident pool"
        )));
    }
    // With coalescing, A streams through one reuse register: vector v is
    // loaded once, when the row cursor first enters it.

    let ha = dev.alloc_u16(m * k)?;
    dev.copy_to_device(ha, &a.data)?;
    // B tiles: column-major blocks, each tile packs cols_per_tile columns
    // of K elements.
    let mut bcols = vec![0u16; n_tiles * l];
    for j in 0..n {
        for kk in 0..k {
            bcols[j * k + kk] = b.at(kk, j);
        }
    }
    let hb = dev.alloc_u16(bcols.len())?;
    dev.copy_to_device(hb, &bcols)?;
    let hc = dev.alloc_u16(m * n)?;

    let report = dev.run_task(|ctx| {
        for t in 0..n_tiles {
            ctx.dma_l4_to_l1(Vmr::new(t as u8), hb.offset_by(t * l * 2)?)?;
        }
        let mut a_vec_loaded: Option<usize> = None;
        let mut a_stage_off = 0usize;
        let mut i = 0usize;
        while i < m {
            let rows_here = if opts.broadcast_layout {
                2.min(m - i)
            } else {
                1
            };
            if opts.coalesced_dma {
                // staged already
            } else if opts.broadcast_layout {
                let chunks: Vec<ChunkCopy> = (0..rows_here)
                    .map(|r| ChunkCopy::new(r * k * 2, r * k * 2, k * 2))
                    .collect();
                ctx.dma_l4_to_l2_chunks(ha.offset_by(i * k * 2)?, &chunks)?;
                ctx.dma_l2_to_l1(VMR_STAGE)?;
            } else {
                ctx.dma_l4_to_l2(0, ha.offset_by(i * k * 2)?, k * 2)?;
                ctx.dma_l2_to_l1(VMR_STAGE)?;
            }
            for r in 0..rows_here {
                let row = i + r;
                if opts.coalesced_dma {
                    let v = (row * k) / l;
                    let off = (row * k) % l;
                    if a_vec_loaded != Some(v) || off < a_stage_off {
                        let take = ((m * k) - v * l).min(l);
                        ctx.dma_l4_to_l2(0, ha.offset_by(v * l * 2)?, take * 2)?;
                        ctx.dma_l2_to_l1(Vmr::new(VMR_POOL))?;
                        ctx.load(VR_STAGE, Vmr::new(VMR_POOL))?;
                        a_vec_loaded = Some(v);
                        a_stage_off = 0;
                    }
                    // rows arrive in order: advance the resident staging
                    // register by the cheap incremental bank shift
                    if off > a_stage_off {
                        ctx.core_mut().shift_elements(
                            VR_STAGE,
                            off - a_stage_off,
                            ShiftDir::TowardHead,
                        )?;
                        a_stage_off = off;
                    }
                } else {
                    ctx.load(VR_STAGE, VMR_STAGE)?;
                    if r > 0 {
                        ctx.core_mut()
                            .shift_elements(VR_STAGE, r * k, ShiftDir::TowardHead)?;
                    }
                }
                ctx.core_mut().cpy_subgrp_16(VR_A, VR_STAGE, k, l)?;
                for t in 0..n_tiles {
                    let cols_here = (n - t * cols_per_tile).min(cols_per_tile);
                    ctx.load(VR_B, Vmr::new(t as u8))?;
                    {
                        let core = ctx.core_mut();
                        core.mul_u16(VR_T, VR_A, VR_B)?;
                        core.add_subgrp_s16(VR_T, VR_T, k, k)?;
                    }
                    let pairs: Vec<(usize, usize)> = (0..cols_here)
                        .map(|c| (row * n + t * cols_per_tile + c, c * k))
                        .collect();
                    ctx.pio_store(hc, VR_T, &pairs)?;
                }
            }
            i += rows_here;
        }
        Ok(())
    })?;

    let c = read_c(dev, hc, m * n)?;
    for h in [ha, hb, hc] {
        dev.free(h)?;
    }
    Ok((c, report))
}

fn apu_temporal(
    dev: &mut ApuDevice,
    a: &Mat,
    b: &Mat,
    opts: OptConfig,
) -> Result<(Vec<u16>, TaskReport)> {
    let l = dev.config().vr_len;
    let (m, k, n) = (a.rows, a.cols, b.cols);
    if n == 0 || !l.is_multiple_of(n) {
        return Err(Error::InvalidArg(format!(
            "temporal mapping requires N ({n}) to divide the VR length ({l})"
        )));
    }
    let dup = l / n;
    if m % dup != 0 {
        return Err(Error::InvalidArg(format!(
            "temporal mapping requires M ({m}) to be a multiple of l/N ({dup})"
        )));
    }
    let passes = m / dup;
    if passes > 44 {
        return Err(Error::InvalidArg(format!(
            "{passes} accumulator passes exceed the L1 budget"
        )));
    }
    // With coalescing, B streams through one reuse register: vector v is
    // loaded once, when the k cursor first enters it (⌈K·N/l⌉ loads, as
    // in Eq. 12).
    let n_bvecs = (k * n).div_ceil(l);

    let ha = dev.alloc_u16(m * k)?;
    dev.copy_to_device(ha, &a.data)?;
    let mut brows = b.data.clone();
    brows.resize(n_bvecs.max(1) * l, 0);
    let hb = dev.alloc_u16(brows.len())?;
    dev.copy_to_device(hb, &brows)?;
    // A transposed (k × m) for lookup broadcasting.
    let hat = if opts.broadcast_layout {
        let mut at = vec![0u16; k * m];
        for i in 0..m {
            for kk in 0..k {
                at[kk * m + i] = a.at(i, kk);
            }
        }
        let h = dev.alloc_u16(at.len())?;
        dev.copy_to_device(h, &at)?;
        Some(h)
    } else {
        None
    };
    let hc = dev.alloc_u16(passes * l)?;

    let l3_bytes = dev.config().l3_bytes;
    // L3 stages `rows_per_stage` rows of Aᵀ at a time.
    let rows_per_stage = (l3_bytes / (m * 2)).max(1).min(k);
    let report = dev.run_task(|ctx| {
        if opts.broadcast_layout {
            ctx.core_mut().create_grp_num_u16(VR_IDX, n)?;
        }
        let mut b_vec_loaded: Option<usize> = None;
        let mut b_stage_off = 0usize;
        ctx.core_mut().cpy_imm_16(VR_ACC, 0)?;
        for p in 0..passes {
            ctx.store(Vmr::new(p as u8), VR_ACC)?;
        }
        let mut staged_until = 0usize; // exclusive upper k staged in L3
        for kk in 0..k {
            if let Some(hat) = hat {
                if kk >= staged_until {
                    let rows = rows_per_stage.min(k - kk);
                    ctx.dma_l4_to_l3(0, hat.offset_by(kk * m * 2)?, rows * m * 2)?;
                    staged_until = kk + rows;
                }
            }
            // B row kk duplicated across the VR.
            if opts.coalesced_dma {
                let v = (kk * n) / l;
                let off = (kk * n) % l;
                if b_vec_loaded != Some(v) || off < b_stage_off {
                    ctx.dma_l4_to_l1(Vmr::new(VMR_POOL), hb.offset_by(v * l * 2)?)?;
                    ctx.load(VR_STAGE, Vmr::new(VMR_POOL))?;
                    b_vec_loaded = Some(v);
                    b_stage_off = 0;
                }
                // consecutive k: one cheap incremental n-element shift
                if off > b_stage_off {
                    ctx.core_mut().shift_elements(
                        VR_STAGE,
                        off - b_stage_off,
                        ShiftDir::TowardHead,
                    )?;
                    b_stage_off = off;
                }
                ctx.core_mut().cpy_subgrp_16(VR_B, VR_STAGE, n, l)?;
            } else {
                let chunks: Vec<ChunkCopy> = (0..dup)
                    .map(|r| ChunkCopy::new(0, r * n * 2, n * 2))
                    .collect();
                ctx.dma_l4_to_l2_chunks(hb.offset_by(kk * n * 2)?, &chunks)?;
                ctx.dma_l2_to_l1(VMR_B)?;
                ctx.load(VR_B, VMR_B)?;
            }
            for p in 0..passes {
                ctx.load(VR_ACC, Vmr::new(p as u8))?;
                if opts.broadcast_layout {
                    // Stages begin at multiples of rows_per_stage, so the
                    // stage-relative row is simply kk mod rows_per_stage.
                    let base = (kk % rows_per_stage) * m;
                    ctx.lookup(VR_A, VR_IDX, (base + p * dup) * 2, dup)?;
                } else {
                    for r in 0..dup {
                        let row = p * dup + r;
                        broadcast_span(ctx, VR_A, ha, row * k + kk, r * n, n)?;
                    }
                }
                {
                    let core = ctx.core_mut();
                    core.mul_u16(VR_T, VR_A, VR_B)?;
                    core.add_u16(VR_ACC, VR_ACC, VR_T)?;
                }
                ctx.store(Vmr::new(p as u8), VR_ACC)?;
            }
        }
        for p in 0..passes {
            ctx.dma_l1_to_l4(hc.offset_by(p * l * 2)?, Vmr::new(p as u8))?;
        }
        Ok(())
    })?;

    let c = read_c(dev, hc, m * n)?;
    dev.free(ha)?;
    dev.free(hb)?;
    dev.free(hc)?;
    if let Some(h) = hat {
        dev.free(h)?;
    }
    Ok((c, report))
}

fn broadcast_span(
    ctx: &mut apu_sim::ApuContext<'_>,
    vr: Vr,
    src: apu_sim::MemHandle,
    elem_idx: usize,
    start: usize,
    len: usize,
) -> Result<()> {
    let cost = ctx.timing().pio_ld(1);
    ctx.core_mut()
        .charge_cycles(apu_sim::core::CycleClass::Pio, cost);
    ctx.core_mut().charge(apu_sim::VecOp::CpyImm);
    if ctx.core().is_functional() {
        let mut b = [0u8; 2];
        ctx.l4()
            .read(src.offset_by(elem_idx * 2)?.truncated(2)?, &mut b)?;
        let val = u16::from_le_bytes(b);
        ctx.core_mut().vr_mut(vr)?[start..start + len].fill(val);
    } else {
        ctx.core().vr(vr)?;
    }
    Ok(())
}

fn read_c(dev: &ApuDevice, hc: apu_sim::MemHandle, len: usize) -> Result<Vec<u16>> {
    if !dev.config().exec_mode.is_functional() {
        return Ok(Vec::new());
    }
    let mut c = vec![0u16; len];
    dev.copy_from_device(hc.truncated(len * 2)?, &mut c)?;
    Ok(c)
}

/// Analytical-framework twin (used for Table 7; models the all-opts
/// temporal kernel).
pub fn model(est: &mut cis_model::LatencyEstimator, m: usize, n: usize, k: usize, opts: OptConfig) {
    let l = 32 * 1024;
    if !opts.reduction_mapping {
        // inner-product model
        let cols_per_tile = l / k.max(1);
        let n_tiles = n.div_ceil(cols_per_tile.max(1));
        est.section("ld rhs");
        for _ in 0..n_tiles {
            est.direct_dma_l4_to_l1_32k();
        }
        for _ in 0..m {
            est.section("ld lhs");
            est.fast_dma_l4_to_l2(k * 2);
            est.direct_dma_l2_to_l1_32k();
            est.gvml_load_16();
            est.gvml_cpy_subgrp_16_grp();
            for t in 0..n_tiles {
                est.section("vr ops");
                est.gvml_load_16();
                est.gvml_mul_u16();
                est.gvml_add_subgrp_s16(k, k);
                est.section("st");
                est.pio_st((n - t * cols_per_tile).min(cols_per_tile));
            }
        }
        return;
    }
    let dup = (l / n).max(1);
    let passes = (m / dup).max(1);
    est.section("ld lhs");
    est.dma_l4_to_l3(m * k * 2);
    est.gvml_create_grp_index_u16();
    // accumulator zeroing
    est.gvml_cpy_imm_16();
    for _ in 0..passes {
        est.gvml_store_16();
    }
    if opts.coalesced_dma {
        // B reuse vectors stream in once each (Eq. 12)
        est.section("ld rhs");
        for _ in 0..(k * n).div_ceil(l) {
            est.direct_dma_l4_to_l1_32k();
        }
    }
    for _ in 0..k {
        est.section("ld rhs");
        if opts.coalesced_dma {
            // incremental n-element shift of the resident reuse register
            est.record(cis_model::TraceOp::ShiftBank(n / 4));
            est.gvml_cpy_subgrp_16_grp();
        } else {
            est.fast_dma_l4_to_l2(dup * n * 2);
            est.direct_dma_l2_to_l1_32k();
            est.gvml_load_16();
        }
        for _ in 0..passes {
            est.section("vr ops");
            est.gvml_load_16();
            est.section("ld lhs");
            if opts.broadcast_layout {
                est.lookup(dup);
            } else {
                for _ in 0..dup {
                    est.pio_ld(1);
                    est.gvml_cpy_imm_16();
                }
            }
            est.section("vr ops");
            est.gvml_mul_u16();
            est.gvml_add_u16();
            est.gvml_store_16();
        }
    }
    est.section("st");
    for _ in 0..passes {
        est.direct_dma_l1_to_l4_32k();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::SimConfig;

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20))
    }

    #[test]
    fn cpu_mt_matches_single() {
        let a = Mat::random(17, 64, 1);
        let b = Mat::random(64, 33, 2);
        assert_eq!(cpu(&a, &b), cpu_mt(&a, &b, 8));
    }

    #[test]
    fn apu_variants_match_cpu() {
        let a = Mat::random(256, 64, 3);
        let b = Mat::random(64, 2048, 4);
        let expected = cpu(&a, &b);
        let mut dev = device();
        for o in OptConfig::fig13_variants() {
            let (c, report) = apu(&mut dev, &a, &b, o).unwrap();
            assert_eq!(c, expected, "{}", o.label());
            assert!(report.cycles.get() > 0);
        }
    }

    #[test]
    fn temporal_kills_pio_stores() {
        let a = Mat::random(256, 64, 5);
        let b = Mat::random(64, 2048, 6);
        let mut dev = device();
        let (_, base) = apu(&mut dev, &a, &b, OptConfig::none()).unwrap();
        let (_, o1) = apu(&mut dev, &a, &b, OptConfig::only_opt1()).unwrap();
        // The scattered PIO result write-back disappears...
        assert!(o1.stats.pio_elems * 10 < base.stats.pio_elems);
        // ...and at a compute-friendly aspect ratio opt1 wins outright
        // (at small M the duplication cost can dominate, as the paper
        // notes for the RHS).
        assert!(o1.cycles < base.cycles);
    }

    #[test]
    fn all_opts_is_fastest() {
        let a = Mat::random(256, 64, 7);
        let b = Mat::random(64, 2048, 8);
        let mut dev = device();
        let mut best = u64::MAX;
        let mut all_cycles = 0;
        for o in OptConfig::fig13_variants() {
            let (_, r) = apu(&mut dev, &a, &b, o).unwrap();
            if o == OptConfig::all() {
                all_cycles = r.cycles.get();
            } else {
                best = best.min(r.cycles.get());
            }
        }
        assert!(all_cycles <= best, "all opts {all_cycles} vs best {best}");
    }

    #[test]
    fn shape_validation() {
        let a = Mat::random(4, 100, 0);
        let b = Mat::random(100, 16, 0);
        let mut dev = device();
        assert!(apu(&mut dev, &a, &b, OptConfig::none()).is_err());
        let a = Mat::random(4, 64, 0);
        let b = Mat::random(63, 16, 0);
        assert!(apu(&mut dev, &a, &b, OptConfig::none()).is_err());
    }

    #[test]
    fn instruction_estimate_matches_table6_scale() {
        let est = cpu_inst_estimate(1024, 1024, 1024);
        assert!((20.0e9..25.0e9).contains(&(est as f64)));
    }
}
