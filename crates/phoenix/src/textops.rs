//! Shared text-matching machinery for the string workloads (word count,
//! string match, reverse index).
//!
//! The device matches a pattern at every text position simultaneously by
//! holding *offset planes* in the VRs: plane `o`, lane `i` contains the
//! text character at position `base + i + o`. A pattern of length `L`
//! then matches at lane `i` iff the per-plane equality marks AND
//! together — all element-wise, inter-VR operations. Planes are derived
//! from one DMA load per tile with cheap single-element shifts.
//!
//! Two storage modes:
//!
//! * **unpacked** (baseline): one 16-bit element per character — simple,
//!   but every tile moves 2 bytes per character;
//! * **packed** (opt2): raw bytes, two characters per element; plane
//!   `Q^b`, lane `i` holds character `base + 2i + b`, and candidate
//!   starts split by parity (even starts use planes `b = o`, odd starts
//!   `b = o + 1`). Half the off-chip traffic for a few unpack
//!   operations.
//!
//! A leading sentinel space is prepended to the text so word-boundary
//! checks can look one character *before* every candidate start.

use apu_sim::{ApuContext, ApuDevice, Error, MemHandle, Vmr, Vr};
use gvml::prelude::*;
use gvml::shift::ShiftDir;

use crate::Result;

/// Maximum pattern length supported (planes 0..=MAX_PAT+2 must fit).
pub const MAX_PAT: usize = 9;
/// Halo characters reserved at each tile's end for cross-tile patterns.
const HALO: usize = 16;

const VR_T: Vr = Vr::new(16);
const VR_T2: Vr = Vr::new(17);
const VR_IDX: Vr = Vr::new(18);
/// Scratch marker for per-character equality.
const M_CHAR: Marker = Marker::new(0);
/// Validity marker (lane addresses a start inside this tile's range).
const M_VALID: Marker = Marker::new(3);

/// A text uploaded to device DRAM and tiled for plane-based matching.
#[derive(Debug)]
pub struct TextKernel {
    handle: MemHandle,
    /// Candidate starts per tile.
    pub starts_per_tile: usize,
    /// Number of tiles.
    pub n_tiles: usize,
    /// Original text length in characters.
    pub text_len: usize,
    packed: bool,
}

impl TextKernel {
    /// Uploads `text` (with sentinel and padding) and computes the
    /// tiling.
    ///
    /// # Errors
    ///
    /// Fails on device-memory exhaustion.
    pub fn new(dev: &mut ApuDevice, text: &[u8], packed: bool) -> Result<TextKernel> {
        let l = dev.config().vr_len;
        let chars_per_tile = if packed { 2 * l } else { l };
        let starts_per_tile = chars_per_tile - HALO;
        let n_tiles = text.len().div_ceil(starts_per_tile).max(1);
        let buf_chars = (n_tiles - 1) * starts_per_tile + chars_per_tile;

        let mut buffer = Vec::with_capacity(buf_chars + 1);
        buffer.push(b' '); // sentinel before position 0
        buffer.extend_from_slice(text);
        buffer.resize(buf_chars + 1, b' ');

        let handle = if packed {
            // pad one extra byte so any even-aligned u16 window is full
            buffer.push(b' ');
            let h = dev.alloc(buffer.len())?;
            dev.copy_to_device(h, &buffer)?;
            h
        } else {
            let words: Vec<u16> = buffer.iter().map(|&b| b as u16).collect();
            let h = dev.alloc_u16(words.len())?;
            dev.copy_to_device(h, &words)?;
            h
        };
        Ok(TextKernel {
            handle,
            starts_per_tile,
            n_tiles,
            text_len: text.len(),
            packed,
        })
    }

    /// Whether the packed (byte) layout is in use.
    pub fn packed(&self) -> bool {
        self.packed
    }

    /// Frees the device buffer.
    ///
    /// # Errors
    ///
    /// Fails on a stale handle (double free).
    pub fn free(self, dev: &mut ApuDevice) -> Result<()> {
        dev.free(self.handle)
    }

    /// Start-position parities resolved per lane (1 unpacked, 2 packed).
    pub fn parities(&self) -> usize {
        if self.packed {
            2
        } else {
            1
        }
    }

    /// Loads `n_planes` offset planes for `tile` into VR 0..n_planes and
    /// rebuilds the validity marker.
    ///
    /// # Errors
    ///
    /// Fails if `n_planes` exceeds the plane budget.
    pub fn load_tile(&self, ctx: &mut ApuContext<'_>, tile: usize, n_planes: usize) -> Result<()> {
        if n_planes > MAX_PAT + 3 {
            return Err(Error::InvalidArg(format!(
                "{n_planes} planes exceed the {} budget",
                MAX_PAT + 3
            )));
        }
        let l = ctx.core().vr_len();
        let base_char = tile * self.starts_per_tile;
        if self.packed {
            // One byte-packed load covers 2·l characters.
            ctx.dma_l4_to_l2(0, self.handle.offset_by(base_char)?, 2 * l)?;
            ctx.dma_l2_to_l1(Vmr::new(47))?;
            ctx.load(VR_T2, Vmr::new(47))?;
            let core = ctx.core_mut();
            core.cpy_imm_16(VR_T, 0x00FF)?;
            core.and_16(Vr::new(0), VR_T2, VR_T)?; // Q^0
            if n_planes > 1 {
                core.sr_imm_u16(Vr::new(1), VR_T2, 8)?; // Q^1
            }
            for b in 2..n_planes {
                core.cpy_16(Vr::new(b as u8), Vr::new(b as u8 - 2))?;
                core.shift_elements(Vr::new(b as u8), 1, ShiftDir::TowardHead)?;
            }
        } else {
            ctx.dma_l4_to_l2(0, self.handle.offset_by(base_char * 2)?, 2 * l)?;
            ctx.dma_l2_to_l1(Vmr::new(47))?;
            ctx.load(Vr::new(0), Vmr::new(47))?;
            for o in 1..n_planes {
                let core = ctx.core_mut();
                core.cpy_16(Vr::new(o as u8), Vr::new(o as u8 - 1))?;
                core.shift_elements(Vr::new(o as u8), 1, ShiftDir::TowardHead)?;
            }
        }
        // validity: lane < starts_per_tile / parities
        let valid_lanes = (self.starts_per_tile / self.parities()) as u16;
        let core = ctx.core_mut();
        core.create_index_u16(VR_IDX)?;
        core.cpy_imm_16(VR_T, valid_lanes)?;
        core.lt_u16(M_VALID, VR_IDX, VR_T)?;
        Ok(())
    }

    /// Marks candidate starts of `pattern` for one parity into `out`.
    /// With `boundaries`, a space is required immediately before and
    /// after the pattern (whole-word matching).
    ///
    /// Plane requirements relative to a start: plane 0 is the character
    /// *before* the start (thanks to the sentinel), plane `j+1` is
    /// pattern character `j`.
    ///
    /// # Errors
    ///
    /// Fails if the pattern is empty or longer than [`MAX_PAT`].
    pub fn mark(
        &self,
        ctx: &mut ApuContext<'_>,
        pattern: &[u8],
        boundaries: bool,
        parity: usize,
        out: Marker,
    ) -> Result<()> {
        if pattern.is_empty() || pattern.len() > MAX_PAT {
            return Err(Error::InvalidArg(format!(
                "pattern length {} outside 1..={MAX_PAT}",
                pattern.len()
            )));
        }
        let mut reqs: Vec<(usize, u8)> = Vec::with_capacity(pattern.len() + 2);
        if boundaries {
            reqs.push((0, b' '));
        }
        for (j, &c) in pattern.iter().enumerate() {
            reqs.push((j + 1, c));
        }
        if boundaries {
            reqs.push((pattern.len() + 1, b' '));
        }
        for (i, &(off, ch)) in reqs.iter().enumerate() {
            let plane = Vr::new((off + parity) as u8);
            let core = ctx.core_mut();
            if i == 0 {
                core.eq_imm_16(out, plane, ch as u16)?;
            } else {
                core.eq_imm_16(M_CHAR, plane, ch as u16)?;
                core.and_m(out, M_CHAR)?;
            }
        }
        // restrict to valid in-tile starts
        ctx.core_mut().and_m(out, M_VALID)?;
        Ok(())
    }

    /// Planes a pattern with boundaries needs.
    pub fn planes_needed(&self, pattern_len: usize, boundaries: bool) -> usize {
        let base = pattern_len + if boundaries { 2 } else { 1 };
        base + if self.packed { 1 } else { 0 }
    }

    /// Counts a marker's set lanes (one `count_m`).
    ///
    /// # Errors
    ///
    /// Fails on marker-register errors.
    pub fn count(&self, ctx: &mut ApuContext<'_>, m: Marker) -> Result<u64> {
        Ok(ctx.core_mut().count_m(m)? as u64)
    }

    /// Extracts the marked start positions (text coordinates) of `tile`
    /// for the given parity, one RSP-FIFO element at a time.
    ///
    /// # Errors
    ///
    /// Fails on marker-register errors.
    pub fn extract_positions(
        &self,
        ctx: &mut ApuContext<'_>,
        tile: usize,
        parity: usize,
        m: Marker,
        expected: usize,
    ) -> Result<Vec<usize>> {
        let pairs = ctx.core_mut().extract_marked(Vr::new(0), m, expected)?;
        let base = tile * self.starts_per_tile;
        Ok(pairs
            .into_iter()
            .map(|(lane, _)| base + lane * self.parities() + parity)
            .filter(|&p| p < self.text_len)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apu_sim::{ApuDevice, SimConfig};

    fn device() -> ApuDevice {
        ApuDevice::new(SimConfig::default().with_l4_bytes(32 << 20))
    }

    fn count_occurrences(
        dev: &mut ApuDevice,
        text: &str,
        pattern: &str,
        boundaries: bool,
        packed: bool,
    ) -> u64 {
        let tk = TextKernel::new(dev, text.as_bytes(), packed).unwrap();
        let planes = tk.planes_needed(pattern.len(), boundaries);
        let mut total = 0;
        for tile in 0..tk.n_tiles {
            dev.run_task(|ctx| {
                tk.load_tile(ctx, tile, planes)?;
                for parity in 0..tk.parities() {
                    tk.mark(ctx, pattern.as_bytes(), boundaries, parity, Marker::new(1))?;
                    total += tk.count(ctx, Marker::new(1))?;
                }
                Ok(())
            })
            .unwrap();
        }
        tk.free(dev).unwrap();
        total
    }

    fn cpu_count(text: &str, pat: &str) -> u64 {
        let mut n = 0;
        let mut start = 0;
        while let Some(p) = text[start..].find(pat) {
            n += 1;
            start += p + 1;
        }
        n
    }

    #[test]
    fn counts_substring_occurrences_unpacked() {
        let mut dev = device();
        let text = "the cat sat on the mat with the bat ".repeat(50);
        let got = count_occurrences(&mut dev, &text, "the", false, false);
        assert_eq!(got, cpu_count(&text, "the"));
        let got = count_occurrences(&mut dev, &text, "at", false, false);
        assert_eq!(got, cpu_count(&text, "at"));
    }

    #[test]
    fn counts_substring_occurrences_packed() {
        let mut dev = device();
        let text = "abra cadabra abracadabra ".repeat(77);
        for pat in ["abra", "cad", "a"] {
            let got = count_occurrences(&mut dev, &text, pat, false, true);
            assert_eq!(got, cpu_count(&text, pat), "pattern {pat}");
        }
    }

    #[test]
    fn boundary_matching_counts_whole_words_only() {
        let mut dev = device();
        let text = "the theme thesis the lathe the ".repeat(20);
        let whole = text.split_whitespace().filter(|w| *w == "the").count() as u64;
        for packed in [false, true] {
            let got = count_occurrences(&mut dev, &text, "the", true, packed);
            assert_eq!(got, whole, "packed={packed}");
        }
    }

    #[test]
    fn matches_across_tile_boundaries_are_counted_once() {
        let mut dev = device();
        let l = dev.config().vr_len;
        // construct text long enough for 2+ tiles with markers sprinkled
        // right around the tile boundary region
        let unit = "x".repeat(97) + " needle ";
        let text = unit.repeat((2 * l) / unit.len() + 10);
        for packed in [false, true] {
            let got = count_occurrences(&mut dev, &text, "needle", true, packed);
            assert_eq!(got, cpu_count(&text, "needle"), "packed={packed}");
        }
    }

    #[test]
    fn extraction_returns_exact_positions() {
        let mut dev = device();
        let text = "aa bb needle cc needle dd".to_string();
        let expected: Vec<usize> =
            vec![text.find("needle").unwrap(), text.rfind("needle").unwrap()];
        for packed in [false, true] {
            let tk = TextKernel::new(&mut dev, text.as_bytes(), packed).unwrap();
            let planes = tk.planes_needed(6, true);
            let mut positions = Vec::new();
            for tile in 0..tk.n_tiles {
                dev.run_task(|ctx| {
                    tk.load_tile(ctx, tile, planes)?;
                    for parity in 0..tk.parities() {
                        tk.mark(ctx, b"needle", true, parity, Marker::new(1))?;
                        positions.extend(tk.extract_positions(
                            ctx,
                            tile,
                            parity,
                            Marker::new(1),
                            2,
                        )?);
                    }
                    Ok(())
                })
                .unwrap();
            }
            positions.sort_unstable();
            assert_eq!(positions, expected, "packed={packed}");
            tk.free(&mut dev).unwrap();
        }
    }

    #[test]
    fn pattern_length_validation() {
        let mut dev = device();
        let tk = TextKernel::new(&mut dev, b"hello world", false).unwrap();
        dev.run_task(|ctx| {
            let tk = &tk;
            tk.load_tile(ctx, 0, 12)?;
            assert!(tk.mark(ctx, b"", false, 0, Marker::new(1)).is_err());
            assert!(tk
                .mark(ctx, b"0123456789", false, 0, Marker::new(1))
                .is_err());
            Ok(())
        })
        .unwrap();
    }
}
