#![warn(missing_docs)]

//! Umbrella crate for the reproduction of *"Characterizing and
//! Optimizing Realistic Workloads on a Commercial Compute-in-SRAM
//! Device"* (MICRO 2025).
//!
//! Re-exports every workspace layer so examples and integration tests
//! can reach the whole stack through one dependency:
//!
//! * [`apu_sim`] — the compute-in-SRAM device simulator;
//! * [`gvml`] — the vector math library on top of it;
//! * [`cis_model`] — the analytical latency framework (§3);
//! * [`hbm_sim`] — the HBM2e/DDR4 DRAM timing + energy simulator;
//! * [`cis_energy`] — APU/CPU/GPU energy accounting;
//! * [`cis_core`] — the paper's data-movement/layout optimizations (§4);
//! * [`binmm`] — the binary matmul motivating example (§4.1, §5.1);
//! * [`phoenix`] — the Phoenix benchmark suite (§5.2);
//! * [`rag`] — retrieval-augmented generation (§5.3).
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system
//! inventory and per-experiment index, and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use apu_sim;
pub use binmm;
pub use cis_core;
pub use cis_energy;
pub use cis_model;
pub use gvml;
pub use hbm_sim;
pub use phoenix;
pub use rag;
