/root/repo/target/release/examples/quickstart-b93d8ce1ef9e2604.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-b93d8ce1ef9e2604: examples/quickstart.rs

examples/quickstart.rs:
