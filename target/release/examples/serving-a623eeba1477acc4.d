/root/repo/target/release/examples/serving-a623eeba1477acc4.d: examples/serving.rs

/root/repo/target/release/examples/serving-a623eeba1477acc4: examples/serving.rs

examples/serving.rs:
