/root/repo/target/release/deps/parking_lot-9f7eb788ef576032.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-9f7eb788ef576032.rlib: .devstubs/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-9f7eb788ef576032.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
