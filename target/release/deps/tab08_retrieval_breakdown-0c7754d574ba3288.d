/root/repo/target/release/deps/tab08_retrieval_breakdown-0c7754d574ba3288.d: crates/bench/src/bin/tab08_retrieval_breakdown.rs

/root/repo/target/release/deps/tab08_retrieval_breakdown-0c7754d574ba3288: crates/bench/src/bin/tab08_retrieval_breakdown.rs

crates/bench/src/bin/tab08_retrieval_breakdown.rs:
