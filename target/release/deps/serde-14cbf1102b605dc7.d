/root/repo/target/release/deps/serde-14cbf1102b605dc7.d: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-14cbf1102b605dc7.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/release/deps/libserde-14cbf1102b605dc7.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
