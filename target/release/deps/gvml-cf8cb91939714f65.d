/root/repo/target/release/deps/gvml-cf8cb91939714f65.d: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs

/root/repo/target/release/deps/libgvml-cf8cb91939714f65.rlib: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs

/root/repo/target/release/deps/libgvml-cf8cb91939714f65.rmeta: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs

crates/gvml/src/lib.rs:
crates/gvml/src/arith.rs:
crates/gvml/src/bitserial.rs:
crates/gvml/src/cmp.rs:
crates/gvml/src/fixed.rs:
crates/gvml/src/float.rs:
crates/gvml/src/index.rs:
crates/gvml/src/minmax.rs:
crates/gvml/src/movement.rs:
crates/gvml/src/reduce.rs:
crates/gvml/src/shift.rs:
crates/gvml/src/ops_util.rs:
