/root/repo/target/release/deps/tab01_devices-4fc77cae84ca5060.d: crates/bench/src/bin/tab01_devices.rs

/root/repo/target/release/deps/tab01_devices-4fc77cae84ca5060: crates/bench/src/bin/tab01_devices.rs

crates/bench/src/bin/tab01_devices.rs:
