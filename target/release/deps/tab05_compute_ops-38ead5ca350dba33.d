/root/repo/target/release/deps/tab05_compute_ops-38ead5ca350dba33.d: crates/bench/src/bin/tab05_compute_ops.rs

/root/repo/target/release/deps/tab05_compute_ops-38ead5ca350dba33: crates/bench/src/bin/tab05_compute_ops.rs

crates/bench/src/bin/tab05_compute_ops.rs:
