/root/repo/target/release/deps/tab04_data_movement-e4f5a3dc1175435b.d: crates/bench/src/bin/tab04_data_movement.rs

/root/repo/target/release/deps/tab04_data_movement-e4f5a3dc1175435b: crates/bench/src/bin/tab04_data_movement.rs

crates/bench/src/bin/tab04_data_movement.rs:
