/root/repo/target/release/deps/serve_qps-ca81615346a9bbe8.d: crates/bench/src/bin/serve_qps.rs

/root/repo/target/release/deps/serve_qps-ca81615346a9bbe8: crates/bench/src/bin/serve_qps.rs

crates/bench/src/bin/serve_qps.rs:
