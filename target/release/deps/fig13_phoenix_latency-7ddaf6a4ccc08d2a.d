/root/repo/target/release/deps/fig13_phoenix_latency-7ddaf6a4ccc08d2a.d: crates/bench/src/bin/fig13_phoenix_latency.rs

/root/repo/target/release/deps/fig13_phoenix_latency-7ddaf6a4ccc08d2a: crates/bench/src/bin/fig13_phoenix_latency.rs

crates/bench/src/bin/fig13_phoenix_latency.rs:
