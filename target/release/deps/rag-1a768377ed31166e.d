/root/repo/target/release/deps/rag-1a768377ed31166e.d: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/release/deps/librag-1a768377ed31166e.rlib: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/release/deps/librag-1a768377ed31166e.rmeta: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

crates/rag/src/lib.rs:
crates/rag/src/apu.rs:
crates/rag/src/batch.rs:
crates/rag/src/corpus.rs:
crates/rag/src/cpu.rs:
crates/rag/src/gpu.rs:
crates/rag/src/pipeline.rs:
crates/rag/src/serve.rs:
