/root/repo/target/release/deps/serde_derive-2c604269b894238c.d: .devstubs/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-2c604269b894238c.so: .devstubs/serde_derive/src/lib.rs

.devstubs/serde_derive/src/lib.rs:
