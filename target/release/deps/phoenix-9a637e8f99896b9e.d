/root/repo/target/release/deps/phoenix-9a637e8f99896b9e.d: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs

/root/repo/target/release/deps/libphoenix-9a637e8f99896b9e.rlib: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs

/root/repo/target/release/deps/libphoenix-9a637e8f99896b9e.rmeta: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs

crates/phoenix/src/lib.rs:
crates/phoenix/src/common.rs:
crates/phoenix/src/histogram.rs:
crates/phoenix/src/kmeans.rs:
crates/phoenix/src/linreg.rs:
crates/phoenix/src/matmul.rs:
crates/phoenix/src/revindex.rs:
crates/phoenix/src/strmatch.rs:
crates/phoenix/src/textops.rs:
crates/phoenix/src/wordcount.rs:
