/root/repo/target/release/deps/fig02_roofline-063985d073be7d33.d: crates/bench/src/bin/fig02_roofline.rs

/root/repo/target/release/deps/fig02_roofline-063985d073be7d33: crates/bench/src/bin/fig02_roofline.rs

crates/bench/src/bin/fig02_roofline.rs:
