/root/repo/target/release/deps/tab07_model_validation-b4fc0ef63f202108.d: crates/bench/src/bin/tab07_model_validation.rs

/root/repo/target/release/deps/tab07_model_validation-b4fc0ef63f202108: crates/bench/src/bin/tab07_model_validation.rs

crates/bench/src/bin/tab07_model_validation.rs:
