/root/repo/target/release/deps/fig14_rag_e2e-bd7c10f8aaec2502.d: crates/bench/src/bin/fig14_rag_e2e.rs

/root/repo/target/release/deps/fig14_rag_e2e-bd7c10f8aaec2502: crates/bench/src/bin/fig14_rag_e2e.rs

crates/bench/src/bin/fig14_rag_e2e.rs:
