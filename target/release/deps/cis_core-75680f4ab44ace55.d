/root/repo/target/release/deps/cis_core-75680f4ab44ace55.d: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/release/deps/libcis_core-75680f4ab44ace55.rlib: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/release/deps/libcis_core-75680f4ab44ace55.rmeta: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

crates/core/src/lib.rs:
crates/core/src/coalesce.rs:
crates/core/src/layout.rs:
crates/core/src/matmul_model.rs:
crates/core/src/reduction.rs:
crates/core/src/roofline.rs:
