/root/repo/target/release/deps/crossbeam-f05e48bbf310b58a.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f05e48bbf310b58a.rlib: .devstubs/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-f05e48bbf310b58a.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
