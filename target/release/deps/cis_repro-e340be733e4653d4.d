/root/repo/target/release/deps/cis_repro-e340be733e4653d4.d: src/lib.rs

/root/repo/target/release/deps/libcis_repro-e340be733e4653d4.rlib: src/lib.rs

/root/repo/target/release/deps/libcis_repro-e340be733e4653d4.rmeta: src/lib.rs

src/lib.rs:
