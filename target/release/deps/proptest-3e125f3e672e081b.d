/root/repo/target/release/deps/proptest-3e125f3e672e081b.d: .devstubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3e125f3e672e081b.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-3e125f3e672e081b.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
