/root/repo/target/release/deps/cis_bench-f8e92368e9113780.d: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcis_bench-f8e92368e9113780.rlib: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

/root/repo/target/release/deps/libcis_bench-f8e92368e9113780.rmeta: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phoenix_suite.rs:
crates/bench/src/table.rs:
