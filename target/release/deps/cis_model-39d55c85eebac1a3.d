/root/repo/target/release/deps/cis_model-39d55c85eebac1a3.d: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

/root/repo/target/release/deps/libcis_model-39d55c85eebac1a3.rlib: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

/root/repo/target/release/deps/libcis_model-39d55c85eebac1a3.rmeta: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

crates/model/src/lib.rs:
crates/model/src/dse.rs:
crates/model/src/estimator.rs:
crates/model/src/params.rs:
crates/model/src/reduction.rs:
