/root/repo/target/release/deps/rand-f5bd9a01b135e76c.d: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-f5bd9a01b135e76c.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/release/deps/librand-f5bd9a01b135e76c.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
