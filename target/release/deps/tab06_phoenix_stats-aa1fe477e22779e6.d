/root/repo/target/release/deps/tab06_phoenix_stats-aa1fe477e22779e6.d: crates/bench/src/bin/tab06_phoenix_stats.rs

/root/repo/target/release/deps/tab06_phoenix_stats-aa1fe477e22779e6: crates/bench/src/bin/tab06_phoenix_stats.rs

crates/bench/src/bin/tab06_phoenix_stats.rs:
