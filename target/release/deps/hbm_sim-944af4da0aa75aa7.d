/root/repo/target/release/deps/hbm_sim-944af4da0aa75aa7.d: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

/root/repo/target/release/deps/libhbm_sim-944af4da0aa75aa7.rlib: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

/root/repo/target/release/deps/libhbm_sim-944af4da0aa75aa7.rmeta: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

crates/hbm-sim/src/lib.rs:
crates/hbm-sim/src/address.rs:
crates/hbm-sim/src/energy.rs:
crates/hbm-sim/src/spec.rs:
crates/hbm-sim/src/system.rs:
