/root/repo/target/release/deps/cis_energy-62331f44aeb0db19.d: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/release/deps/libcis_energy-62331f44aeb0db19.rlib: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/release/deps/libcis_energy-62331f44aeb0db19.rmeta: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

crates/energy/src/lib.rs:
crates/energy/src/apu.rs:
crates/energy/src/comparators.rs:
