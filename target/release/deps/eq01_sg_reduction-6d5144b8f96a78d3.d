/root/repo/target/release/deps/eq01_sg_reduction-6d5144b8f96a78d3.d: crates/bench/src/bin/eq01_sg_reduction.rs

/root/repo/target/release/deps/eq01_sg_reduction-6d5144b8f96a78d3: crates/bench/src/bin/eq01_sg_reduction.rs

crates/bench/src/bin/eq01_sg_reduction.rs:
