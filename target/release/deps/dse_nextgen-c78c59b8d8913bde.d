/root/repo/target/release/deps/dse_nextgen-c78c59b8d8913bde.d: crates/bench/src/bin/dse_nextgen.rs

/root/repo/target/release/deps/dse_nextgen-c78c59b8d8913bde: crates/bench/src/bin/dse_nextgen.rs

crates/bench/src/bin/dse_nextgen.rs:
