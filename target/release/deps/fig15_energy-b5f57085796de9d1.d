/root/repo/target/release/deps/fig15_energy-b5f57085796de9d1.d: crates/bench/src/bin/fig15_energy.rs

/root/repo/target/release/deps/fig15_energy-b5f57085796de9d1: crates/bench/src/bin/fig15_energy.rs

crates/bench/src/bin/fig15_energy.rs:
