/root/repo/target/release/deps/ext_query_batching-017970c7dde7b356.d: crates/bench/src/bin/ext_query_batching.rs

/root/repo/target/release/deps/ext_query_batching-017970c7dde7b356: crates/bench/src/bin/ext_query_batching.rs

crates/bench/src/bin/ext_query_batching.rs:
