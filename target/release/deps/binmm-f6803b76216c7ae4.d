/root/repo/target/release/deps/binmm-f6803b76216c7ae4.d: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/release/deps/libbinmm-f6803b76216c7ae4.rlib: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/release/deps/libbinmm-f6803b76216c7ae4.rmeta: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

crates/binmm/src/lib.rs:
crates/binmm/src/apu.rs:
crates/binmm/src/cpu.rs:
crates/binmm/src/pack.rs:
