/root/repo/target/release/deps/fig12_matmul_breakdown-940eee11c19b6433.d: crates/bench/src/bin/fig12_matmul_breakdown.rs

/root/repo/target/release/deps/fig12_matmul_breakdown-940eee11c19b6433: crates/bench/src/bin/fig12_matmul_breakdown.rs

crates/bench/src/bin/fig12_matmul_breakdown.rs:
