/root/repo/target/debug/examples/phoenix_wordcount-6f655d87b934d674.d: examples/phoenix_wordcount.rs

/root/repo/target/debug/examples/phoenix_wordcount-6f655d87b934d674: examples/phoenix_wordcount.rs

examples/phoenix_wordcount.rs:
