/root/repo/target/debug/examples/double_buffering-62d9d00018d43610.d: examples/double_buffering.rs Cargo.toml

/root/repo/target/debug/examples/libdouble_buffering-62d9d00018d43610.rmeta: examples/double_buffering.rs Cargo.toml

examples/double_buffering.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
