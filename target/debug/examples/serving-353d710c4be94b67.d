/root/repo/target/debug/examples/serving-353d710c4be94b67.d: examples/serving.rs

/root/repo/target/debug/examples/serving-353d710c4be94b67: examples/serving.rs

examples/serving.rs:
