/root/repo/target/debug/examples/analytical_model-2d27587e6e716187.d: examples/analytical_model.rs

/root/repo/target/debug/examples/analytical_model-2d27587e6e716187: examples/analytical_model.rs

examples/analytical_model.rs:
