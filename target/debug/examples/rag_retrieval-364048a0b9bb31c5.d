/root/repo/target/debug/examples/rag_retrieval-364048a0b9bb31c5.d: examples/rag_retrieval.rs

/root/repo/target/debug/examples/librag_retrieval-364048a0b9bb31c5.rmeta: examples/rag_retrieval.rs

examples/rag_retrieval.rs:
