/root/repo/target/debug/examples/rag_retrieval-efba2e115ff4b6d4.d: examples/rag_retrieval.rs

/root/repo/target/debug/examples/rag_retrieval-efba2e115ff4b6d4: examples/rag_retrieval.rs

examples/rag_retrieval.rs:
