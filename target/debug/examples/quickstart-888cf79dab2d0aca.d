/root/repo/target/debug/examples/quickstart-888cf79dab2d0aca.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-888cf79dab2d0aca: examples/quickstart.rs

examples/quickstart.rs:
