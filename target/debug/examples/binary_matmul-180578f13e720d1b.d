/root/repo/target/debug/examples/binary_matmul-180578f13e720d1b.d: examples/binary_matmul.rs

/root/repo/target/debug/examples/libbinary_matmul-180578f13e720d1b.rmeta: examples/binary_matmul.rs

examples/binary_matmul.rs:
