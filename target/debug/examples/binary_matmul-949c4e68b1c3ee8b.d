/root/repo/target/debug/examples/binary_matmul-949c4e68b1c3ee8b.d: examples/binary_matmul.rs

/root/repo/target/debug/examples/binary_matmul-949c4e68b1c3ee8b: examples/binary_matmul.rs

examples/binary_matmul.rs:
