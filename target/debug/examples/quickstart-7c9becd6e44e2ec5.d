/root/repo/target/debug/examples/quickstart-7c9becd6e44e2ec5.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-7c9becd6e44e2ec5.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
