/root/repo/target/debug/examples/double_buffering-0c6462f3132ddf52.d: examples/double_buffering.rs

/root/repo/target/debug/examples/double_buffering-0c6462f3132ddf52: examples/double_buffering.rs

examples/double_buffering.rs:
