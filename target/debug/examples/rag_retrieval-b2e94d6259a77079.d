/root/repo/target/debug/examples/rag_retrieval-b2e94d6259a77079.d: examples/rag_retrieval.rs Cargo.toml

/root/repo/target/debug/examples/librag_retrieval-b2e94d6259a77079.rmeta: examples/rag_retrieval.rs Cargo.toml

examples/rag_retrieval.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
