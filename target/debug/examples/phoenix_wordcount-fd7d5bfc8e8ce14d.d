/root/repo/target/debug/examples/phoenix_wordcount-fd7d5bfc8e8ce14d.d: examples/phoenix_wordcount.rs Cargo.toml

/root/repo/target/debug/examples/libphoenix_wordcount-fd7d5bfc8e8ce14d.rmeta: examples/phoenix_wordcount.rs Cargo.toml

examples/phoenix_wordcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
