/root/repo/target/debug/examples/binary_matmul-1e8861d4c3193925.d: examples/binary_matmul.rs Cargo.toml

/root/repo/target/debug/examples/libbinary_matmul-1e8861d4c3193925.rmeta: examples/binary_matmul.rs Cargo.toml

examples/binary_matmul.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
