/root/repo/target/debug/examples/quickstart-213d2727fab72655.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-213d2727fab72655.rmeta: examples/quickstart.rs

examples/quickstart.rs:
