/root/repo/target/debug/examples/serving-bda99a96e5915a3d.d: examples/serving.rs

/root/repo/target/debug/examples/serving-bda99a96e5915a3d: examples/serving.rs

examples/serving.rs:
