/root/repo/target/debug/examples/analytical_model-37ab449f7c5f4975.d: examples/analytical_model.rs Cargo.toml

/root/repo/target/debug/examples/libanalytical_model-37ab449f7c5f4975.rmeta: examples/analytical_model.rs Cargo.toml

examples/analytical_model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
