/root/repo/target/debug/examples/analytical_model-a597668d11d82d2d.d: examples/analytical_model.rs

/root/repo/target/debug/examples/libanalytical_model-a597668d11d82d2d.rmeta: examples/analytical_model.rs

examples/analytical_model.rs:
