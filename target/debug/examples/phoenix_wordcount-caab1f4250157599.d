/root/repo/target/debug/examples/phoenix_wordcount-caab1f4250157599.d: examples/phoenix_wordcount.rs

/root/repo/target/debug/examples/libphoenix_wordcount-caab1f4250157599.rmeta: examples/phoenix_wordcount.rs

examples/phoenix_wordcount.rs:
