/root/repo/target/debug/examples/serving-461bab6b54b76dec.d: examples/serving.rs

/root/repo/target/debug/examples/libserving-461bab6b54b76dec.rmeta: examples/serving.rs

examples/serving.rs:
