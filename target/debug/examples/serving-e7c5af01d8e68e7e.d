/root/repo/target/debug/examples/serving-e7c5af01d8e68e7e.d: examples/serving.rs Cargo.toml

/root/repo/target/debug/examples/libserving-e7c5af01d8e68e7e.rmeta: examples/serving.rs Cargo.toml

examples/serving.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
