/root/repo/target/debug/examples/double_buffering-10989c101abb3a3f.d: examples/double_buffering.rs

/root/repo/target/debug/examples/libdouble_buffering-10989c101abb3a3f.rmeta: examples/double_buffering.rs

examples/double_buffering.rs:
