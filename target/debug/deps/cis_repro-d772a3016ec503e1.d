/root/repo/target/debug/deps/cis_repro-d772a3016ec503e1.d: src/lib.rs

/root/repo/target/debug/deps/libcis_repro-d772a3016ec503e1.rmeta: src/lib.rs

src/lib.rs:
