/root/repo/target/debug/deps/cis_bench-d4be9d861c6e2e14.d: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcis_bench-d4be9d861c6e2e14.rmeta: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phoenix_suite.rs:
crates/bench/src/table.rs:
