/root/repo/target/debug/deps/cis_repro-ecad50e06c21e2b8.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libcis_repro-ecad50e06c21e2b8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
