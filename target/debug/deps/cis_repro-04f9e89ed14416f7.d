/root/repo/target/debug/deps/cis_repro-04f9e89ed14416f7.d: src/lib.rs

/root/repo/target/debug/deps/cis_repro-04f9e89ed14416f7: src/lib.rs

src/lib.rs:
