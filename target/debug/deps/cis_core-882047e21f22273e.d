/root/repo/target/debug/deps/cis_core-882047e21f22273e.d: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/debug/deps/libcis_core-882047e21f22273e.rlib: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/debug/deps/libcis_core-882047e21f22273e.rmeta: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

crates/core/src/lib.rs:
crates/core/src/coalesce.rs:
crates/core/src/layout.rs:
crates/core/src/matmul_model.rs:
crates/core/src/reduction.rs:
crates/core/src/roofline.rs:
