/root/repo/target/debug/deps/cis_model-d5bb3f7759645d29.d: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

/root/repo/target/debug/deps/cis_model-d5bb3f7759645d29: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

crates/model/src/lib.rs:
crates/model/src/dse.rs:
crates/model/src/estimator.rs:
crates/model/src/params.rs:
crates/model/src/reduction.rs:
