/root/repo/target/debug/deps/tab06_phoenix_stats-62e6c483d05470f3.d: crates/bench/src/bin/tab06_phoenix_stats.rs

/root/repo/target/debug/deps/libtab06_phoenix_stats-62e6c483d05470f3.rmeta: crates/bench/src/bin/tab06_phoenix_stats.rs

crates/bench/src/bin/tab06_phoenix_stats.rs:
