/root/repo/target/debug/deps/ext_query_batching-cab43fdbd371fa5b.d: crates/bench/src/bin/ext_query_batching.rs

/root/repo/target/debug/deps/libext_query_batching-cab43fdbd371fa5b.rmeta: crates/bench/src/bin/ext_query_batching.rs

crates/bench/src/bin/ext_query_batching.rs:
