/root/repo/target/debug/deps/cis_energy-97700e9580d14525.d: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/debug/deps/libcis_energy-97700e9580d14525.rlib: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/debug/deps/libcis_energy-97700e9580d14525.rmeta: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

crates/energy/src/lib.rs:
crates/energy/src/apu.rs:
crates/energy/src/comparators.rs:
