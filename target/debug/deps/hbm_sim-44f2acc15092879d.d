/root/repo/target/debug/deps/hbm_sim-44f2acc15092879d.d: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

/root/repo/target/debug/deps/hbm_sim-44f2acc15092879d: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

crates/hbm-sim/src/lib.rs:
crates/hbm-sim/src/address.rs:
crates/hbm-sim/src/energy.rs:
crates/hbm-sim/src/spec.rs:
crates/hbm-sim/src/system.rs:
