/root/repo/target/debug/deps/ext_query_batching-7b8229361ff05853.d: crates/bench/src/bin/ext_query_batching.rs Cargo.toml

/root/repo/target/debug/deps/libext_query_batching-7b8229361ff05853.rmeta: crates/bench/src/bin/ext_query_batching.rs Cargo.toml

crates/bench/src/bin/ext_query_batching.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
