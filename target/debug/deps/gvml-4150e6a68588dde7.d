/root/repo/target/debug/deps/gvml-4150e6a68588dde7.d: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs

/root/repo/target/debug/deps/libgvml-4150e6a68588dde7.rmeta: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs

crates/gvml/src/lib.rs:
crates/gvml/src/arith.rs:
crates/gvml/src/bitserial.rs:
crates/gvml/src/cmp.rs:
crates/gvml/src/fixed.rs:
crates/gvml/src/float.rs:
crates/gvml/src/index.rs:
crates/gvml/src/minmax.rs:
crates/gvml/src/movement.rs:
crates/gvml/src/reduce.rs:
crates/gvml/src/shift.rs:
crates/gvml/src/ops_util.rs:
