/root/repo/target/debug/deps/binmm-51ced92f0cac0544.d: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs Cargo.toml

/root/repo/target/debug/deps/libbinmm-51ced92f0cac0544.rmeta: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs Cargo.toml

crates/binmm/src/lib.rs:
crates/binmm/src/apu.rs:
crates/binmm/src/cpu.rs:
crates/binmm/src/pack.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
