/root/repo/target/debug/deps/binmm-a30fc178d9514fea.d: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/debug/deps/libbinmm-a30fc178d9514fea.rmeta: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

crates/binmm/src/lib.rs:
crates/binmm/src/apu.rs:
crates/binmm/src/cpu.rs:
crates/binmm/src/pack.rs:
