/root/repo/target/debug/deps/parking_lot-9646861543f10c7a.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-9646861543f10c7a.rlib: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-9646861543f10c7a.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
