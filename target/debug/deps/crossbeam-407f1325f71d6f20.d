/root/repo/target/debug/deps/crossbeam-407f1325f71d6f20.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-407f1325f71d6f20.rlib: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-407f1325f71d6f20.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
