/root/repo/target/debug/deps/serde-2dd83650ea37777a.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2dd83650ea37777a.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2dd83650ea37777a.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
