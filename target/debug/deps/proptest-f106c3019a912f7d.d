/root/repo/target/debug/deps/proptest-f106c3019a912f7d.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f106c3019a912f7d.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-f106c3019a912f7d.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
