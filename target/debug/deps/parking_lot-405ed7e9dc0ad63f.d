/root/repo/target/debug/deps/parking_lot-405ed7e9dc0ad63f.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-405ed7e9dc0ad63f.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
