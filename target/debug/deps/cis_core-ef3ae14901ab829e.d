/root/repo/target/debug/deps/cis_core-ef3ae14901ab829e.d: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/debug/deps/cis_core-ef3ae14901ab829e: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

crates/core/src/lib.rs:
crates/core/src/coalesce.rs:
crates/core/src/layout.rs:
crates/core/src/matmul_model.rs:
crates/core/src/reduction.rs:
crates/core/src/roofline.rs:
