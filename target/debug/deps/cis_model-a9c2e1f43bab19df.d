/root/repo/target/debug/deps/cis_model-a9c2e1f43bab19df.d: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

/root/repo/target/debug/deps/libcis_model-a9c2e1f43bab19df.rlib: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

/root/repo/target/debug/deps/libcis_model-a9c2e1f43bab19df.rmeta: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

crates/model/src/lib.rs:
crates/model/src/dse.rs:
crates/model/src/estimator.rs:
crates/model/src/params.rs:
crates/model/src/reduction.rs:
