/root/repo/target/debug/deps/hbm_sim-7f87188700eb0fdb.d: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

/root/repo/target/debug/deps/libhbm_sim-7f87188700eb0fdb.rmeta: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

crates/hbm-sim/src/lib.rs:
crates/hbm-sim/src/address.rs:
crates/hbm-sim/src/energy.rs:
crates/hbm-sim/src/spec.rs:
crates/hbm-sim/src/system.rs:
