/root/repo/target/debug/deps/cis_model-b4c1422956991dd0.d: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs Cargo.toml

/root/repo/target/debug/deps/libcis_model-b4c1422956991dd0.rmeta: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/dse.rs:
crates/model/src/estimator.rs:
crates/model/src/params.rs:
crates/model/src/reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
