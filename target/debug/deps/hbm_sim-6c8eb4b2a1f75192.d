/root/repo/target/debug/deps/hbm_sim-6c8eb4b2a1f75192.d: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

/root/repo/target/debug/deps/libhbm_sim-6c8eb4b2a1f75192.rlib: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

/root/repo/target/debug/deps/libhbm_sim-6c8eb4b2a1f75192.rmeta: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs

crates/hbm-sim/src/lib.rs:
crates/hbm-sim/src/address.rs:
crates/hbm-sim/src/energy.rs:
crates/hbm-sim/src/spec.rs:
crates/hbm-sim/src/system.rs:
