/root/repo/target/debug/deps/cis_energy-ca8a686aa92ea309.d: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/debug/deps/cis_energy-ca8a686aa92ea309: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

crates/energy/src/lib.rs:
crates/energy/src/apu.rs:
crates/energy/src/comparators.rs:
