/root/repo/target/debug/deps/cis_repro-384348140498bae3.d: src/lib.rs

/root/repo/target/debug/deps/libcis_repro-384348140498bae3.rlib: src/lib.rs

/root/repo/target/debug/deps/libcis_repro-384348140498bae3.rmeta: src/lib.rs

src/lib.rs:
