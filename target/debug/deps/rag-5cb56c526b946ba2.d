/root/repo/target/debug/deps/rag-5cb56c526b946ba2.d: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/debug/deps/librag-5cb56c526b946ba2.rmeta: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

crates/rag/src/lib.rs:
crates/rag/src/apu.rs:
crates/rag/src/batch.rs:
crates/rag/src/corpus.rs:
crates/rag/src/cpu.rs:
crates/rag/src/gpu.rs:
crates/rag/src/pipeline.rs:
crates/rag/src/serve.rs:
