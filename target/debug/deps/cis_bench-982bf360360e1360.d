/root/repo/target/debug/deps/cis_bench-982bf360360e1360.d: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/cis_bench-982bf360360e1360: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phoenix_suite.rs:
crates/bench/src/table.rs:
