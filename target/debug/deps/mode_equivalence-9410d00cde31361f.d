/root/repo/target/debug/deps/mode_equivalence-9410d00cde31361f.d: tests/mode_equivalence.rs

/root/repo/target/debug/deps/mode_equivalence-9410d00cde31361f: tests/mode_equivalence.rs

tests/mode_equivalence.rs:
