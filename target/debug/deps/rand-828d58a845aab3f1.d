/root/repo/target/debug/deps/rand-828d58a845aab3f1.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-828d58a845aab3f1.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
