/root/repo/target/debug/deps/apu_sim-bb08e2195c765993.d: crates/apu-sim/src/lib.rs crates/apu-sim/src/clock.rs crates/apu-sim/src/config.rs crates/apu-sim/src/core.rs crates/apu-sim/src/device.rs crates/apu-sim/src/dma.rs crates/apu-sim/src/dma_async.rs crates/apu-sim/src/error.rs crates/apu-sim/src/mem.rs crates/apu-sim/src/micro.rs crates/apu-sim/src/queue.rs crates/apu-sim/src/stats.rs crates/apu-sim/src/timing.rs Cargo.toml

/root/repo/target/debug/deps/libapu_sim-bb08e2195c765993.rmeta: crates/apu-sim/src/lib.rs crates/apu-sim/src/clock.rs crates/apu-sim/src/config.rs crates/apu-sim/src/core.rs crates/apu-sim/src/device.rs crates/apu-sim/src/dma.rs crates/apu-sim/src/dma_async.rs crates/apu-sim/src/error.rs crates/apu-sim/src/mem.rs crates/apu-sim/src/micro.rs crates/apu-sim/src/queue.rs crates/apu-sim/src/stats.rs crates/apu-sim/src/timing.rs Cargo.toml

crates/apu-sim/src/lib.rs:
crates/apu-sim/src/clock.rs:
crates/apu-sim/src/config.rs:
crates/apu-sim/src/core.rs:
crates/apu-sim/src/device.rs:
crates/apu-sim/src/dma.rs:
crates/apu-sim/src/dma_async.rs:
crates/apu-sim/src/error.rs:
crates/apu-sim/src/mem.rs:
crates/apu-sim/src/micro.rs:
crates/apu-sim/src/queue.rs:
crates/apu-sim/src/stats.rs:
crates/apu-sim/src/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
