/root/repo/target/debug/deps/fig02_roofline-276b151f6d922f0e.d: crates/bench/src/bin/fig02_roofline.rs Cargo.toml

/root/repo/target/debug/deps/libfig02_roofline-276b151f6d922f0e.rmeta: crates/bench/src/bin/fig02_roofline.rs Cargo.toml

crates/bench/src/bin/fig02_roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
