/root/repo/target/debug/deps/eq01_sg_reduction-001972146d429fd0.d: crates/bench/src/bin/eq01_sg_reduction.rs

/root/repo/target/debug/deps/libeq01_sg_reduction-001972146d429fd0.rmeta: crates/bench/src/bin/eq01_sg_reduction.rs

crates/bench/src/bin/eq01_sg_reduction.rs:
