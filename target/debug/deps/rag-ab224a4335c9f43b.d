/root/repo/target/debug/deps/rag-ab224a4335c9f43b.d: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/debug/deps/librag-ab224a4335c9f43b.rlib: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/debug/deps/librag-ab224a4335c9f43b.rmeta: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

crates/rag/src/lib.rs:
crates/rag/src/apu.rs:
crates/rag/src/batch.rs:
crates/rag/src/corpus.rs:
crates/rag/src/cpu.rs:
crates/rag/src/gpu.rs:
crates/rag/src/pipeline.rs:
crates/rag/src/serve.rs:
