/root/repo/target/debug/deps/tab07_model_validation-ef15a9bbba484d79.d: crates/bench/src/bin/tab07_model_validation.rs Cargo.toml

/root/repo/target/debug/deps/libtab07_model_validation-ef15a9bbba484d79.rmeta: crates/bench/src/bin/tab07_model_validation.rs Cargo.toml

crates/bench/src/bin/tab07_model_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
