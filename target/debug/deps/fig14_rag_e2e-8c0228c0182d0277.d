/root/repo/target/debug/deps/fig14_rag_e2e-8c0228c0182d0277.d: crates/bench/src/bin/fig14_rag_e2e.rs Cargo.toml

/root/repo/target/debug/deps/libfig14_rag_e2e-8c0228c0182d0277.rmeta: crates/bench/src/bin/fig14_rag_e2e.rs Cargo.toml

crates/bench/src/bin/fig14_rag_e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
