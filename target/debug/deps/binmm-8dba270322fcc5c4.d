/root/repo/target/debug/deps/binmm-8dba270322fcc5c4.d: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/debug/deps/binmm-8dba270322fcc5c4: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

crates/binmm/src/lib.rs:
crates/binmm/src/apu.rs:
crates/binmm/src/cpu.rs:
crates/binmm/src/pack.rs:
