/root/repo/target/debug/deps/crossbeam-23c9782e8391163c.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-23c9782e8391163c.rlib: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-23c9782e8391163c.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
