/root/repo/target/debug/deps/eq01_sg_reduction-96bc8bd8d84bf097.d: crates/bench/src/bin/eq01_sg_reduction.rs Cargo.toml

/root/repo/target/debug/deps/libeq01_sg_reduction-96bc8bd8d84bf097.rmeta: crates/bench/src/bin/eq01_sg_reduction.rs Cargo.toml

crates/bench/src/bin/eq01_sg_reduction.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
