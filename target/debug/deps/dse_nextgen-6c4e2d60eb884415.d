/root/repo/target/debug/deps/dse_nextgen-6c4e2d60eb884415.d: crates/bench/src/bin/dse_nextgen.rs

/root/repo/target/debug/deps/libdse_nextgen-6c4e2d60eb884415.rmeta: crates/bench/src/bin/dse_nextgen.rs

crates/bench/src/bin/dse_nextgen.rs:
