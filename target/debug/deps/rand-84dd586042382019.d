/root/repo/target/debug/deps/rand-84dd586042382019.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-84dd586042382019.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-84dd586042382019.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
