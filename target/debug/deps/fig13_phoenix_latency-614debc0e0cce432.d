/root/repo/target/debug/deps/fig13_phoenix_latency-614debc0e0cce432.d: crates/bench/src/bin/fig13_phoenix_latency.rs

/root/repo/target/debug/deps/libfig13_phoenix_latency-614debc0e0cce432.rmeta: crates/bench/src/bin/fig13_phoenix_latency.rs

crates/bench/src/bin/fig13_phoenix_latency.rs:
