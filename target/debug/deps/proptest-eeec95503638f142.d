/root/repo/target/debug/deps/proptest-eeec95503638f142.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eeec95503638f142.rlib: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-eeec95503638f142.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
