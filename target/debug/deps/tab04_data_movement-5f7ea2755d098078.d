/root/repo/target/debug/deps/tab04_data_movement-5f7ea2755d098078.d: crates/bench/src/bin/tab04_data_movement.rs

/root/repo/target/debug/deps/libtab04_data_movement-5f7ea2755d098078.rmeta: crates/bench/src/bin/tab04_data_movement.rs

crates/bench/src/bin/tab04_data_movement.rs:
