/root/repo/target/debug/deps/binmm-a994131a0a4ba0f5.d: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/debug/deps/libbinmm-a994131a0a4ba0f5.rlib: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/debug/deps/libbinmm-a994131a0a4ba0f5.rmeta: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

crates/binmm/src/lib.rs:
crates/binmm/src/apu.rs:
crates/binmm/src/cpu.rs:
crates/binmm/src/pack.rs:
