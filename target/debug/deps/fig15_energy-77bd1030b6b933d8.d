/root/repo/target/debug/deps/fig15_energy-77bd1030b6b933d8.d: crates/bench/src/bin/fig15_energy.rs Cargo.toml

/root/repo/target/debug/deps/libfig15_energy-77bd1030b6b933d8.rmeta: crates/bench/src/bin/fig15_energy.rs Cargo.toml

crates/bench/src/bin/fig15_energy.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
