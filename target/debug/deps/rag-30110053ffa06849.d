/root/repo/target/debug/deps/rag-30110053ffa06849.d: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/debug/deps/librag-30110053ffa06849.rlib: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

/root/repo/target/debug/deps/librag-30110053ffa06849.rmeta: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs

crates/rag/src/lib.rs:
crates/rag/src/apu.rs:
crates/rag/src/batch.rs:
crates/rag/src/corpus.rs:
crates/rag/src/cpu.rs:
crates/rag/src/gpu.rs:
crates/rag/src/pipeline.rs:
crates/rag/src/serve.rs:
