/root/repo/target/debug/deps/tab05_compute_ops-e8e4fbe5d83b3098.d: crates/bench/src/bin/tab05_compute_ops.rs Cargo.toml

/root/repo/target/debug/deps/libtab05_compute_ops-e8e4fbe5d83b3098.rmeta: crates/bench/src/bin/tab05_compute_ops.rs Cargo.toml

crates/bench/src/bin/tab05_compute_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
