/root/repo/target/debug/deps/tab05_compute_ops-71aa504f4d151f13.d: crates/bench/src/bin/tab05_compute_ops.rs

/root/repo/target/debug/deps/libtab05_compute_ops-71aa504f4d151f13.rmeta: crates/bench/src/bin/tab05_compute_ops.rs

crates/bench/src/bin/tab05_compute_ops.rs:
