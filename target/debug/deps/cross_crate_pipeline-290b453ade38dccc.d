/root/repo/target/debug/deps/cross_crate_pipeline-290b453ade38dccc.d: tests/cross_crate_pipeline.rs

/root/repo/target/debug/deps/cross_crate_pipeline-290b453ade38dccc: tests/cross_crate_pipeline.rs

tests/cross_crate_pipeline.rs:
