/root/repo/target/debug/deps/fig15_energy-7c0267e6f7e63a46.d: crates/bench/src/bin/fig15_energy.rs

/root/repo/target/debug/deps/libfig15_energy-7c0267e6f7e63a46.rmeta: crates/bench/src/bin/fig15_energy.rs

crates/bench/src/bin/fig15_energy.rs:
