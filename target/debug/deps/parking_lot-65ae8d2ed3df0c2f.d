/root/repo/target/debug/deps/parking_lot-65ae8d2ed3df0c2f.d: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-65ae8d2ed3df0c2f.rlib: .devstubs/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-65ae8d2ed3df0c2f.rmeta: .devstubs/parking_lot/src/lib.rs

.devstubs/parking_lot/src/lib.rs:
