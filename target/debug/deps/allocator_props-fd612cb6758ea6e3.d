/root/repo/target/debug/deps/allocator_props-fd612cb6758ea6e3.d: crates/apu-sim/tests/allocator_props.rs

/root/repo/target/debug/deps/allocator_props-fd612cb6758ea6e3: crates/apu-sim/tests/allocator_props.rs

crates/apu-sim/tests/allocator_props.rs:
