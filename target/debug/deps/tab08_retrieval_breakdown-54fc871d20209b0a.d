/root/repo/target/debug/deps/tab08_retrieval_breakdown-54fc871d20209b0a.d: crates/bench/src/bin/tab08_retrieval_breakdown.rs

/root/repo/target/debug/deps/libtab08_retrieval_breakdown-54fc871d20209b0a.rmeta: crates/bench/src/bin/tab08_retrieval_breakdown.rs

crates/bench/src/bin/tab08_retrieval_breakdown.rs:
