/root/repo/target/debug/deps/fig12_matmul_breakdown-9beee63c17c3b2e6.d: crates/bench/src/bin/fig12_matmul_breakdown.rs

/root/repo/target/debug/deps/libfig12_matmul_breakdown-9beee63c17c3b2e6.rmeta: crates/bench/src/bin/fig12_matmul_breakdown.rs

crates/bench/src/bin/fig12_matmul_breakdown.rs:
