/root/repo/target/debug/deps/serve_qps-a47f40defaa4953c.d: crates/bench/src/bin/serve_qps.rs

/root/repo/target/debug/deps/serve_qps-a47f40defaa4953c: crates/bench/src/bin/serve_qps.rs

crates/bench/src/bin/serve_qps.rs:
