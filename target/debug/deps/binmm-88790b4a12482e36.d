/root/repo/target/debug/deps/binmm-88790b4a12482e36.d: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/debug/deps/libbinmm-88790b4a12482e36.rlib: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

/root/repo/target/debug/deps/libbinmm-88790b4a12482e36.rmeta: crates/binmm/src/lib.rs crates/binmm/src/apu.rs crates/binmm/src/cpu.rs crates/binmm/src/pack.rs

crates/binmm/src/lib.rs:
crates/binmm/src/apu.rs:
crates/binmm/src/cpu.rs:
crates/binmm/src/pack.rs:
