/root/repo/target/debug/deps/cis_repro-55706e5e61ad76ec.d: src/lib.rs

/root/repo/target/debug/deps/libcis_repro-55706e5e61ad76ec.rlib: src/lib.rs

/root/repo/target/debug/deps/libcis_repro-55706e5e61ad76ec.rmeta: src/lib.rs

src/lib.rs:
