/root/repo/target/debug/deps/dse_nextgen-314620e40b8373b6.d: crates/bench/src/bin/dse_nextgen.rs Cargo.toml

/root/repo/target/debug/deps/libdse_nextgen-314620e40b8373b6.rmeta: crates/bench/src/bin/dse_nextgen.rs Cargo.toml

crates/bench/src/bin/dse_nextgen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
