/root/repo/target/debug/deps/fig14_rag_e2e-b98137cc4917bfda.d: crates/bench/src/bin/fig14_rag_e2e.rs

/root/repo/target/debug/deps/libfig14_rag_e2e-b98137cc4917bfda.rmeta: crates/bench/src/bin/fig14_rag_e2e.rs

crates/bench/src/bin/fig14_rag_e2e.rs:
