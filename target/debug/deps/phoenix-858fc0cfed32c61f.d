/root/repo/target/debug/deps/phoenix-858fc0cfed32c61f.d: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs Cargo.toml

/root/repo/target/debug/deps/libphoenix-858fc0cfed32c61f.rmeta: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs Cargo.toml

crates/phoenix/src/lib.rs:
crates/phoenix/src/common.rs:
crates/phoenix/src/histogram.rs:
crates/phoenix/src/kmeans.rs:
crates/phoenix/src/linreg.rs:
crates/phoenix/src/matmul.rs:
crates/phoenix/src/revindex.rs:
crates/phoenix/src/strmatch.rs:
crates/phoenix/src/textops.rs:
crates/phoenix/src/wordcount.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
