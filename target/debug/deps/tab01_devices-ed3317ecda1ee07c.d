/root/repo/target/debug/deps/tab01_devices-ed3317ecda1ee07c.d: crates/bench/src/bin/tab01_devices.rs Cargo.toml

/root/repo/target/debug/deps/libtab01_devices-ed3317ecda1ee07c.rmeta: crates/bench/src/bin/tab01_devices.rs Cargo.toml

crates/bench/src/bin/tab01_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
