/root/repo/target/debug/deps/tab07_model_validation-0c2aed6f8f999852.d: crates/bench/src/bin/tab07_model_validation.rs

/root/repo/target/debug/deps/libtab07_model_validation-0c2aed6f8f999852.rmeta: crates/bench/src/bin/tab07_model_validation.rs

crates/bench/src/bin/tab07_model_validation.rs:
