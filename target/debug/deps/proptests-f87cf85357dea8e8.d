/root/repo/target/debug/deps/proptests-f87cf85357dea8e8.d: tests/proptests.rs

/root/repo/target/debug/deps/proptests-f87cf85357dea8e8: tests/proptests.rs

tests/proptests.rs:
