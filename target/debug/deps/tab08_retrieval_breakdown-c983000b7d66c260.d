/root/repo/target/debug/deps/tab08_retrieval_breakdown-c983000b7d66c260.d: crates/bench/src/bin/tab08_retrieval_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libtab08_retrieval_breakdown-c983000b7d66c260.rmeta: crates/bench/src/bin/tab08_retrieval_breakdown.rs Cargo.toml

crates/bench/src/bin/tab08_retrieval_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
