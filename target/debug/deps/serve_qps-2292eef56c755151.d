/root/repo/target/debug/deps/serve_qps-2292eef56c755151.d: crates/bench/src/bin/serve_qps.rs Cargo.toml

/root/repo/target/debug/deps/libserve_qps-2292eef56c755151.rmeta: crates/bench/src/bin/serve_qps.rs Cargo.toml

crates/bench/src/bin/serve_qps.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
