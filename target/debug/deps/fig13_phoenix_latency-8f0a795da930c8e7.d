/root/repo/target/debug/deps/fig13_phoenix_latency-8f0a795da930c8e7.d: crates/bench/src/bin/fig13_phoenix_latency.rs Cargo.toml

/root/repo/target/debug/deps/libfig13_phoenix_latency-8f0a795da930c8e7.rmeta: crates/bench/src/bin/fig13_phoenix_latency.rs Cargo.toml

crates/bench/src/bin/fig13_phoenix_latency.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
