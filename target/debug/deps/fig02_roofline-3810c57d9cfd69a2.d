/root/repo/target/debug/deps/fig02_roofline-3810c57d9cfd69a2.d: crates/bench/src/bin/fig02_roofline.rs

/root/repo/target/debug/deps/libfig02_roofline-3810c57d9cfd69a2.rmeta: crates/bench/src/bin/fig02_roofline.rs

crates/bench/src/bin/fig02_roofline.rs:
