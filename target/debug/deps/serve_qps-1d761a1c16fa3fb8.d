/root/repo/target/debug/deps/serve_qps-1d761a1c16fa3fb8.d: crates/bench/src/bin/serve_qps.rs

/root/repo/target/debug/deps/libserve_qps-1d761a1c16fa3fb8.rmeta: crates/bench/src/bin/serve_qps.rs

crates/bench/src/bin/serve_qps.rs:
