/root/repo/target/debug/deps/serde-2dfedbb458d07994.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-2dfedbb458d07994.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
