/root/repo/target/debug/deps/gvml-5039444ff9f7a0cd.d: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs Cargo.toml

/root/repo/target/debug/deps/libgvml-5039444ff9f7a0cd.rmeta: crates/gvml/src/lib.rs crates/gvml/src/arith.rs crates/gvml/src/bitserial.rs crates/gvml/src/cmp.rs crates/gvml/src/fixed.rs crates/gvml/src/float.rs crates/gvml/src/index.rs crates/gvml/src/minmax.rs crates/gvml/src/movement.rs crates/gvml/src/reduce.rs crates/gvml/src/shift.rs crates/gvml/src/ops_util.rs Cargo.toml

crates/gvml/src/lib.rs:
crates/gvml/src/arith.rs:
crates/gvml/src/bitserial.rs:
crates/gvml/src/cmp.rs:
crates/gvml/src/fixed.rs:
crates/gvml/src/float.rs:
crates/gvml/src/index.rs:
crates/gvml/src/minmax.rs:
crates/gvml/src/movement.rs:
crates/gvml/src/reduce.rs:
crates/gvml/src/shift.rs:
crates/gvml/src/ops_util.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
