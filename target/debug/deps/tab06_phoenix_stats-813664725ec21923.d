/root/repo/target/debug/deps/tab06_phoenix_stats-813664725ec21923.d: crates/bench/src/bin/tab06_phoenix_stats.rs Cargo.toml

/root/repo/target/debug/deps/libtab06_phoenix_stats-813664725ec21923.rmeta: crates/bench/src/bin/tab06_phoenix_stats.rs Cargo.toml

crates/bench/src/bin/tab06_phoenix_stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
