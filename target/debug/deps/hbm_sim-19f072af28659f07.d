/root/repo/target/debug/deps/hbm_sim-19f072af28659f07.d: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs Cargo.toml

/root/repo/target/debug/deps/libhbm_sim-19f072af28659f07.rmeta: crates/hbm-sim/src/lib.rs crates/hbm-sim/src/address.rs crates/hbm-sim/src/energy.rs crates/hbm-sim/src/spec.rs crates/hbm-sim/src/system.rs Cargo.toml

crates/hbm-sim/src/lib.rs:
crates/hbm-sim/src/address.rs:
crates/hbm-sim/src/energy.rs:
crates/hbm-sim/src/spec.rs:
crates/hbm-sim/src/system.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
