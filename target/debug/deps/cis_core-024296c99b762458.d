/root/repo/target/debug/deps/cis_core-024296c99b762458.d: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs Cargo.toml

/root/repo/target/debug/deps/libcis_core-024296c99b762458.rmeta: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/coalesce.rs:
crates/core/src/layout.rs:
crates/core/src/matmul_model.rs:
crates/core/src/reduction.rs:
crates/core/src/roofline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
