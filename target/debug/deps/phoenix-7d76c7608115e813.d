/root/repo/target/debug/deps/phoenix-7d76c7608115e813.d: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs

/root/repo/target/debug/deps/libphoenix-7d76c7608115e813.rmeta: crates/phoenix/src/lib.rs crates/phoenix/src/common.rs crates/phoenix/src/histogram.rs crates/phoenix/src/kmeans.rs crates/phoenix/src/linreg.rs crates/phoenix/src/matmul.rs crates/phoenix/src/revindex.rs crates/phoenix/src/strmatch.rs crates/phoenix/src/textops.rs crates/phoenix/src/wordcount.rs

crates/phoenix/src/lib.rs:
crates/phoenix/src/common.rs:
crates/phoenix/src/histogram.rs:
crates/phoenix/src/kmeans.rs:
crates/phoenix/src/linreg.rs:
crates/phoenix/src/matmul.rs:
crates/phoenix/src/revindex.rs:
crates/phoenix/src/strmatch.rs:
crates/phoenix/src/textops.rs:
crates/phoenix/src/wordcount.rs:
