/root/repo/target/debug/deps/crossbeam-5565d047d6797ef1.d: .devstubs/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-5565d047d6797ef1.rmeta: .devstubs/crossbeam/src/lib.rs

.devstubs/crossbeam/src/lib.rs:
