/root/repo/target/debug/deps/rag-8aa6412528a07200.d: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs Cargo.toml

/root/repo/target/debug/deps/librag-8aa6412528a07200.rmeta: crates/rag/src/lib.rs crates/rag/src/apu.rs crates/rag/src/batch.rs crates/rag/src/corpus.rs crates/rag/src/cpu.rs crates/rag/src/gpu.rs crates/rag/src/pipeline.rs crates/rag/src/serve.rs Cargo.toml

crates/rag/src/lib.rs:
crates/rag/src/apu.rs:
crates/rag/src/batch.rs:
crates/rag/src/corpus.rs:
crates/rag/src/cpu.rs:
crates/rag/src/gpu.rs:
crates/rag/src/pipeline.rs:
crates/rag/src/serve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
