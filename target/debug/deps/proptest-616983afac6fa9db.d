/root/repo/target/debug/deps/proptest-616983afac6fa9db.d: .devstubs/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-616983afac6fa9db.rmeta: .devstubs/proptest/src/lib.rs

.devstubs/proptest/src/lib.rs:
