/root/repo/target/debug/deps/serde-468821d989f50033.d: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-468821d989f50033.rlib: .devstubs/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-468821d989f50033.rmeta: .devstubs/serde/src/lib.rs

.devstubs/serde/src/lib.rs:
