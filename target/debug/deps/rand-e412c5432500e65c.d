/root/repo/target/debug/deps/rand-e412c5432500e65c.d: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e412c5432500e65c.rlib: .devstubs/rand/src/lib.rs

/root/repo/target/debug/deps/librand-e412c5432500e65c.rmeta: .devstubs/rand/src/lib.rs

.devstubs/rand/src/lib.rs:
