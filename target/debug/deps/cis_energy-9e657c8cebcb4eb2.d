/root/repo/target/debug/deps/cis_energy-9e657c8cebcb4eb2.d: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/debug/deps/libcis_energy-9e657c8cebcb4eb2.rlib: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/debug/deps/libcis_energy-9e657c8cebcb4eb2.rmeta: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

crates/energy/src/lib.rs:
crates/energy/src/apu.rs:
crates/energy/src/comparators.rs:
