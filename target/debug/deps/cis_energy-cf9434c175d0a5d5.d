/root/repo/target/debug/deps/cis_energy-cf9434c175d0a5d5.d: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

/root/repo/target/debug/deps/libcis_energy-cf9434c175d0a5d5.rmeta: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs

crates/energy/src/lib.rs:
crates/energy/src/apu.rs:
crates/energy/src/comparators.rs:
