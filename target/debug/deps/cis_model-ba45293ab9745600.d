/root/repo/target/debug/deps/cis_model-ba45293ab9745600.d: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

/root/repo/target/debug/deps/libcis_model-ba45293ab9745600.rmeta: crates/model/src/lib.rs crates/model/src/dse.rs crates/model/src/estimator.rs crates/model/src/params.rs crates/model/src/reduction.rs

crates/model/src/lib.rs:
crates/model/src/dse.rs:
crates/model/src/estimator.rs:
crates/model/src/params.rs:
crates/model/src/reduction.rs:
