/root/repo/target/debug/deps/apu_sim-3e245cc433f8bc06.d: crates/apu-sim/src/lib.rs crates/apu-sim/src/clock.rs crates/apu-sim/src/config.rs crates/apu-sim/src/core.rs crates/apu-sim/src/device.rs crates/apu-sim/src/dma.rs crates/apu-sim/src/dma_async.rs crates/apu-sim/src/error.rs crates/apu-sim/src/mem.rs crates/apu-sim/src/micro.rs crates/apu-sim/src/queue.rs crates/apu-sim/src/stats.rs crates/apu-sim/src/timing.rs

/root/repo/target/debug/deps/libapu_sim-3e245cc433f8bc06.rmeta: crates/apu-sim/src/lib.rs crates/apu-sim/src/clock.rs crates/apu-sim/src/config.rs crates/apu-sim/src/core.rs crates/apu-sim/src/device.rs crates/apu-sim/src/dma.rs crates/apu-sim/src/dma_async.rs crates/apu-sim/src/error.rs crates/apu-sim/src/mem.rs crates/apu-sim/src/micro.rs crates/apu-sim/src/queue.rs crates/apu-sim/src/stats.rs crates/apu-sim/src/timing.rs

crates/apu-sim/src/lib.rs:
crates/apu-sim/src/clock.rs:
crates/apu-sim/src/config.rs:
crates/apu-sim/src/core.rs:
crates/apu-sim/src/device.rs:
crates/apu-sim/src/dma.rs:
crates/apu-sim/src/dma_async.rs:
crates/apu-sim/src/error.rs:
crates/apu-sim/src/mem.rs:
crates/apu-sim/src/micro.rs:
crates/apu-sim/src/queue.rs:
crates/apu-sim/src/stats.rs:
crates/apu-sim/src/timing.rs:
