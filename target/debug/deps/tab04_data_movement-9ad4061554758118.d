/root/repo/target/debug/deps/tab04_data_movement-9ad4061554758118.d: crates/bench/src/bin/tab04_data_movement.rs Cargo.toml

/root/repo/target/debug/deps/libtab04_data_movement-9ad4061554758118.rmeta: crates/bench/src/bin/tab04_data_movement.rs Cargo.toml

crates/bench/src/bin/tab04_data_movement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
