/root/repo/target/debug/deps/tab01_devices-4db6a6bf5d3dce8e.d: crates/bench/src/bin/tab01_devices.rs

/root/repo/target/debug/deps/libtab01_devices-4db6a6bf5d3dce8e.rmeta: crates/bench/src/bin/tab01_devices.rs

crates/bench/src/bin/tab01_devices.rs:
