/root/repo/target/debug/deps/cis_bench-0c714dd6d67445c4.d: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcis_bench-0c714dd6d67445c4.rlib: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

/root/repo/target/debug/deps/libcis_bench-0c714dd6d67445c4.rmeta: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs

crates/bench/src/lib.rs:
crates/bench/src/phoenix_suite.rs:
crates/bench/src/table.rs:
