/root/repo/target/debug/deps/cis_bench-0a0c7a30e9d2e6c7.d: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs Cargo.toml

/root/repo/target/debug/deps/libcis_bench-0a0c7a30e9d2e6c7.rmeta: crates/bench/src/lib.rs crates/bench/src/phoenix_suite.rs crates/bench/src/table.rs Cargo.toml

crates/bench/src/lib.rs:
crates/bench/src/phoenix_suite.rs:
crates/bench/src/table.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
