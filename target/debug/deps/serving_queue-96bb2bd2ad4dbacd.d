/root/repo/target/debug/deps/serving_queue-96bb2bd2ad4dbacd.d: tests/serving_queue.rs

/root/repo/target/debug/deps/serving_queue-96bb2bd2ad4dbacd: tests/serving_queue.rs

tests/serving_queue.rs:
