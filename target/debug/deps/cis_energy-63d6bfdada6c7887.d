/root/repo/target/debug/deps/cis_energy-63d6bfdada6c7887.d: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs Cargo.toml

/root/repo/target/debug/deps/libcis_energy-63d6bfdada6c7887.rmeta: crates/energy/src/lib.rs crates/energy/src/apu.rs crates/energy/src/comparators.rs Cargo.toml

crates/energy/src/lib.rs:
crates/energy/src/apu.rs:
crates/energy/src/comparators.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
