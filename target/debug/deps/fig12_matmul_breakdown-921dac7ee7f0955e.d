/root/repo/target/debug/deps/fig12_matmul_breakdown-921dac7ee7f0955e.d: crates/bench/src/bin/fig12_matmul_breakdown.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_matmul_breakdown-921dac7ee7f0955e.rmeta: crates/bench/src/bin/fig12_matmul_breakdown.rs Cargo.toml

crates/bench/src/bin/fig12_matmul_breakdown.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
