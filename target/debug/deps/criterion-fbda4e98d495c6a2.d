/root/repo/target/debug/deps/criterion-fbda4e98d495c6a2.d: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fbda4e98d495c6a2.rlib: .devstubs/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-fbda4e98d495c6a2.rmeta: .devstubs/criterion/src/lib.rs

.devstubs/criterion/src/lib.rs:
