/root/repo/target/debug/deps/cis_core-f252f3f1e11a3568.d: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/debug/deps/libcis_core-f252f3f1e11a3568.rlib: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

/root/repo/target/debug/deps/libcis_core-f252f3f1e11a3568.rmeta: crates/core/src/lib.rs crates/core/src/coalesce.rs crates/core/src/layout.rs crates/core/src/matmul_model.rs crates/core/src/reduction.rs crates/core/src/roofline.rs

crates/core/src/lib.rs:
crates/core/src/coalesce.rs:
crates/core/src/layout.rs:
crates/core/src/matmul_model.rs:
crates/core/src/reduction.rs:
crates/core/src/roofline.rs:
