//! Offline dev stub of serde: traits satisfied by every type, derives
//! that expand to nothing. Used only for local typechecking in a
//! network-less container; never committed as a real dependency.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub trait Serializer {}
pub trait Deserializer<'de> {}
