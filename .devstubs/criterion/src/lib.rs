//! Offline dev stub (empty). Local typecheck only; never committed.
