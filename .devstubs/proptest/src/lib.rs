//! Offline dev stub of the `proptest` 1.x API surface this workspace
//! uses: the `proptest!` macro, `prop_assert*` macros, `any::<T>()`,
//! numeric range strategies, tuple strategies, and
//! `collection::{vec, hash_set}`.
//!
//! Semantics differ from the real crate in two deliberate ways:
//!
//! * cases are drawn from a deterministic SplitMix64 stream seeded from
//!   the test's module path and name (reproducible, but not
//!   stream-compatible with upstream proptest), and
//! * there is **no shrinking** — a failing case panics with the plain
//!   `assert!` message instead of a minimized counterexample.
//!
//! Local typecheck/test use only; never published.

/// Test-runner configuration and the deterministic RNG.
pub mod test_runner {
    /// Stand-in for `proptest::test_runner::Config` (aliased
    /// `ProptestConfig` in the prelude): only the `cases` knob exists.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of randomized cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 generator seeded from the test name (FNV-1a hash), so
    /// every property replays the same case sequence on every run.
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        /// Seeds the stream from an arbitrary label (the `proptest!`
        /// macro passes `module_path!()::test_name`).
        pub fn deterministic(label: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in label.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng(h)
        }

        /// Next raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }
    }
}

/// The `Strategy` trait and its implementations for ranges and tuples.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A value generator: the stub's whole strategy model is "sample a
    /// fresh value per case" (no value trees, no shrinking).
    pub trait Strategy {
        /// The type of values this strategy produces.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    ((self.start as i128) + (rng.next_u64() as i128) % span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start() as i128, *self.end() as i128);
                    assert!(start <= end, "empty range strategy");
                    let span = end - start + 1;
                    (start + (rng.next_u64() as i128) % span) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    self.start + (rng.next_f64() as $t) * (self.end - self.start)
                }
            }
        )*};
    }

    float_range_strategies!(f32, f64);

    macro_rules! tuple_strategies {
        ($(($($s:ident),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` and the `Arbitrary` trait behind it.
pub mod arbitrary {
    use std::marker::PhantomData;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Types with a full-domain default strategy.
    pub trait Arbitrary: Sized {
        /// Draws one value from the type's full domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    /// Full-domain strategy for `T` (`proptest::prelude::any`).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// `vec` and `hash_set` collection strategies.
pub mod collection {
    use std::collections::HashSet;
    use std::hash::Hash;

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Half-open size bound for collection strategies; converts from a
    /// fixed `usize`, `lo..hi`, or `lo..=hi` like the real `SizeRange`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl SizeRange {
        fn sample(self, rng: &mut TestRng) -> usize {
            assert!(self.lo < self.hi_exclusive, "empty size range");
            self.lo + (rng.next_u64() as usize) % (self.hi_exclusive - self.lo)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange {
                lo: n,
                hi_exclusive: n + 1,
            }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi_exclusive: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi_exclusive: *r.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of `element` samples.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a vector with a size drawn from
    /// `size` and elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy producing `HashSet`s of distinct `element` samples.
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::hash_set`: a set of distinct samples. The
    /// element domain must comfortably exceed the requested size; after
    /// `100 × size` rejected duplicates the set is returned short.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.sample(rng);
            let mut out = HashSet::with_capacity(n);
            let mut attempts = 0usize;
            while out.len() < n && attempts < 100 * n.max(1) {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

/// The public prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Asserts a condition inside a `proptest!` body (stub: plain `assert!`,
/// so a failure panics instead of shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a `proptest!` body (stub: plain `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

/// Asserts inequality inside a `proptest!` body (stub: plain `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

/// The property-test item macro: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` (attributes pass through) that samples every
/// strategy `cases` times and runs the body.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items!($cfg; $($items)*);
    };
    ($($items:tt)*) => {
        $crate::__proptest_items!($crate::test_runner::Config::default(); $($items)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for _ in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}
