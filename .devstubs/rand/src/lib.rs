//! Offline dev stub of the `rand` 0.8 API surface this workspace uses:
//! `StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen::<f64>()`.
//! Backed by SplitMix64; deterministic but NOT stream-compatible with
//! the real crate. Local typecheck/test use only; never committed.

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    /// SplitMix64-backed stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng(pub(crate) u64);
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        rngs::StdRng(seed.wrapping_add(0x9E37_79B9_7F4A_7C15))
    }
}

pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

impl RngCore for rngs::StdRng {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

pub trait Rng: RngCore {
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Mirror of rand's `SampleUniform`: one generic range impl keyed on the
/// element type, so type inference behaves like the real crate.
pub trait SampleUniform: Sized {
    fn sample_between<G: RngCore>(rng: &mut G, lo: Self, hi: Self, inclusive: bool) -> Self;
}

pub trait SampleRange<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

pub trait StandardSample: Sized {
    fn sample<G: RngCore>(rng: &mut G) -> Self;
}

impl StandardSample for f64 {
    fn sample<G: RngCore>(rng: &mut G) -> f64 {
        (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

impl StandardSample for f32 {
    fn sample<G: RngCore>(rng: &mut G) -> f32 {
        (rng.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

impl StandardSample for bool {
    fn sample<G: RngCore>(rng: &mut G) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<G: RngCore>(rng: &mut G, lo: $t, hi: $t, inclusive: bool) -> $t {
                let span = (hi as i128 - lo as i128 + if inclusive { 1 } else { 0 }) as u128;
                assert!(span > 0, "empty range");
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
        impl StandardSample for $t {
            fn sample<G: RngCore>(rng: &mut G) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, i8, u16, i16, u32, i32, u64, i64, usize, isize);

impl SampleUniform for f64 {
    fn sample_between<G: RngCore>(rng: &mut G, lo: f64, hi: f64, _inclusive: bool) -> f64 {
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_between<G: RngCore>(rng: &mut G, lo: f32, hi: f32, _inclusive: bool) -> f32 {
        lo + f32::sample(rng) * (hi - lo)
    }
}

pub fn thread_rng() -> rngs::StdRng {
    rngs::StdRng::seed_from_u64(0xC1A0_5EED)
}
