//! Quickstart: the paper's Fig. 5 vector-addition example on the
//! simulated compute-in-SRAM device — host-side memory management,
//! device-side DMA + vector compute, and the latency report.
//!
//! Run with: `cargo run --release --example quickstart`

use apu_sim::{ApuDevice, SimConfig, Vmr, Vr};
use gvml::prelude::*;

fn main() -> Result<(), apu_sim::Error> {
    // The APU platform: an x86 host plus a 4-core device sharing DRAM.
    let mut dev = ApuDevice::new(SimConfig::default());
    let n = dev.config().vr_len; // 32,768 elements per vector register

    // ---- host side (the gdl_* calls of Fig. 5a) ----
    let vec1 = dev.alloc_u16(n)?;
    let vec2 = dev.alloc_u16(n)?;
    let out = dev.alloc_u16(n)?;
    let a: Vec<u16> = (0..n as u32).map(|i| (i % 1000) as u16).collect();
    let b: Vec<u16> = (0..n as u32).map(|i| (i % 77) as u16).collect();
    dev.copy_to_device(vec1, &a)?;
    dev.copy_to_device(vec2, &b)?;

    // ---- device side (the GAL task of Fig. 5b) ----
    let report = dev.run_task(|ctx| {
        // DMA both operands from device DRAM (L4) into L1 vector memory.
        ctx.dma_l4_to_l1(Vmr::new(0), vec1)?;
        ctx.dma_l4_to_l1(Vmr::new(1), vec2)?;
        // Load into computation-enabled vector registers and add.
        ctx.load(Vr::new(0), Vmr::new(0))?;
        ctx.load(Vr::new(1), Vmr::new(1))?;
        ctx.core_mut().add_u16(Vr::new(2), Vr::new(0), Vr::new(1))?;
        // Store the result back out to device DRAM.
        ctx.store(Vmr::new(2), Vr::new(2))?;
        ctx.dma_l1_to_l4(out, Vmr::new(2))
    })?;

    // ---- host side again: read back and verify ----
    let mut result = vec![0u16; n];
    dev.copy_from_device(out, &mut result)?;
    for i in 0..n {
        assert_eq!(result[i], a[i] + b[i]);
    }

    println!("vec_add over {n} lanes: OK");
    println!(
        "device latency: {} = {:.2} us at 500 MHz",
        report.cycles,
        report.micros()
    );
    println!(
        "commands: {}, uCode ops: {}, DMA bytes: {}",
        report.stats.commands, report.stats.micro_ops, report.stats.l4_bytes
    );
    Ok(())
}
