//! The paper's motivating example (§4): binary matrix multiplication
//! on the device, from the inner-product baseline to all three
//! optimizations, with the Fig. 12-style stage breakdown.
//!
//! Run with: `cargo run --release --example binary_matmul`

use apu_sim::{ApuDevice, SimConfig};
use binmm::{cpu_matmul, ApuMatmul, BinMatrix};
use cis_core::MatmulVariant;

fn main() -> Result<(), apu_sim::Error> {
    let (m, n, kbits) = (64, 2048, 1024);
    println!("binary matmul: {m} x {n}, K = {kbits} bits (±1 encoding)\n");

    let a = BinMatrix::random(m, kbits, 7);
    let b_t = BinMatrix::random(n, kbits, 8);
    let reference = cpu_matmul(&a, &b_t);

    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(128 << 20));
    let problem = ApuMatmul::new(a, b_t)?;

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "variant", "LD LHS", "LD RHS", "VR ops", "ST", "total (ms)", "speedup"
    );
    let mut baseline_ms = 0.0;
    for variant in MatmulVariant::ALL {
        let run = problem.run(&mut dev, variant)?;
        assert_eq!(run.c, reference, "{} result mismatch", variant.label());
        let clock = dev.config().clock;
        let ms = |c: apu_sim::Cycles| clock.cycles_to_secs(c) * 1e3;
        let total = run.report.millis();
        if variant == MatmulVariant::Baseline {
            baseline_ms = total;
        }
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>12.3} {:>8.1}x",
            variant.label(),
            ms(run.breakdown.ld_lhs),
            ms(run.breakdown.ld_rhs),
            ms(run.breakdown.vr_ops),
            ms(run.breakdown.st),
            total,
            baseline_ms / total,
        );
    }
    println!("\nAll variants verified bit-exactly against the CPU reference.");
    println!("The baseline drowns in PIO stores of scattered results; the");
    println!("temporal mapping (opt1) makes outputs contiguous, and the");
    println!("coalescing + broadcast layouts clean up the input side.");
    Ok(())
}
