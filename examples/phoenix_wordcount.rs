//! One Phoenix application end to end (§5.2): word count on the CPU
//! (single- and multi-threaded) and on the device across the Fig. 13
//! optimization variants, with results verified equal.
//!
//! Run with: `cargo run --release --example phoenix_wordcount`

use std::time::Instant;

use apu_sim::{ApuDevice, SimConfig};
use phoenix::common::cpu_threads;
use phoenix::{wordcount, OptConfig};

fn main() -> Result<(), apu_sim::Error> {
    let text = wordcount::generate(2_000_000, 99);
    println!("word count over {} bytes of text\n", text.len());

    let t = Instant::now();
    let expected = wordcount::cpu(&text);
    let cpu_1t = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    let mt = wordcount::cpu_mt(&text, cpu_threads());
    let cpu_mt = t.elapsed().as_secs_f64() * 1e3;
    assert_eq!(expected, mt);
    println!("CPU 1T: {cpu_1t:.2} ms   CPU MT: {cpu_mt:.2} ms (this host)\n");

    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20));
    println!("{:<10} {:>12} {:>14}", "variant", "device ms", "uCode ops");
    for o in OptConfig::fig13_variants() {
        let (counts, report) = wordcount::apu(&mut dev, &text, o)?;
        assert_eq!(counts, expected, "{} result mismatch", o.label());
        println!(
            "{:<10} {:>12.2} {:>14}",
            o.label(),
            report.millis(),
            report.stats.micro_ops
        );
    }

    let mut top: Vec<_> = expected.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    println!("\nmost frequent words:");
    for (w, c) in top.into_iter().take(5) {
        println!("  {w:<8} {c}");
    }
    println!("\nThe naive port emits every (word, 1) pair through the serial");
    println!("FIFO; communication-aware reduction (opt1) counts on-device and");
    println!("is why word count is one of the paper's APU wins.");
    Ok(())
}
