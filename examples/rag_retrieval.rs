//! End-to-end RAG retrieval (§5.3): exact nearest-neighbour search over
//! a corpus on CPU and on the simulated compute-in-SRAM device, with
//! the simulated-HBM embedding stream and the per-stage breakdown of
//! Table 8.
//!
//! Run with: `cargo run --release --example rag_retrieval`

use apu_sim::{ApuDevice, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use rag::{cpu_retrieve, ApuRetriever, CorpusSpec, EmbeddingStore, RagVariant};

fn main() -> Result<(), apu_sim::Error> {
    // A functional-scale corpus: ~65K chunks of 384-dim embeddings.
    let spec = CorpusSpec {
        corpus_bytes: 4_000_000_000, // "4 GB of documents"
        chunks: 65_536,
    };
    let store = EmbeddingStore::materialized(spec, 123);
    let query = store.query(0);
    println!(
        "corpus: {} chunks, embeddings {:.1} MB, top-5 retrieval\n",
        spec.chunks,
        spec.embedding_bytes() as f64 / 1e6
    );

    // CPU (FAISS-IndexFlat style, multithreaded).
    let (cpu_hits, cpu_ms) = cpu_retrieve(&store, &query, 5, 8);
    println!("CPU retrieval: {cpu_ms:.1} ms (measured on this host)");

    // Compute-in-SRAM, unoptimized and fully optimized.
    let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(8 << 20));
    for variant in [RagVariant::NoOpt, RagVariant::AllOpts] {
        let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
        let (hits, b, _) =
            ApuRetriever::new(variant).retrieve(&mut dev, &mut hbm, &store, &query, 5)?;
        assert_eq!(hits, cpu_hits, "top-5 must match the CPU exactly");
        println!(
            "CIS {:<9}: total {:>7.2} ms  (embed {:.2} ms | query {:.0} us | \
             distance {:.2} ms | top-k {:.2} ms | return {:.0} us)",
            variant.label(),
            b.total_ms(),
            b.load_embedding_ms,
            b.load_query_us,
            b.calc_distance_ms,
            b.topk_ms,
            b.return_us,
        );
    }
    println!("\ntop-5 chunks:");
    for h in &cpu_hits {
        println!("  chunk {:>6}  score {}", h.chunk, h.score);
    }
    println!("\nExact search, no ANN recall loss — the paper's argument for");
    println!("compute-in-SRAM retrieval.");
    Ok(())
}
