//! The analytical framework (§3, Fig. 6): model a device program without
//! running it, then re-evaluate the same program across candidate
//! next-generation devices (design-space exploration).
//!
//! Run with: `cargo run --release --example analytical_model`

use cis_model::{DesignSweep, LatencyEstimator, ModelParams};

fn main() {
    // Model one pass of a streaming kernel, Fig. 6 style.
    let mut est = LatencyEstimator::new(ModelParams::leda_e());
    let tiles = 32;
    for _ in 0..tiles {
        est.section("load");
        est.fast_dma_l4_to_l2(64 * 1024);
        est.direct_dma_l2_to_l1_32k();
        est.gvml_load_16();
        est.section("compute");
        est.gvml_mul_u16();
        est.gvml_add_u16();
        est.gvml_add_subgrp_s16(1024, 256);
        est.section("store");
        est.gvml_store_16();
        est.direct_dma_l1_to_l4_32k();
    }

    let report = est.report();
    println!("modeled program: {tiles} tiles");
    println!("predicted latency: {:.1} us\n", report.total_us);
    println!("by section:");
    for (sec, cycles) in &report.by_section {
        println!("  {sec:<10} {:>12.0} cycles", cycles);
    }
    println!("by category:");
    for (cat, cycles) in &report.by_category {
        println!("  {cat:<10} {:>12.0} cycles", cycles);
    }

    // Design-space exploration: same program, candidate devices.
    println!("\ndesign sweep (off-chip bandwidth x compute speed):");
    let sweep = DesignSweep::new()
        .bw_scales(&[1.0, 2.0, 4.0, 8.0])
        .compute_scales(&[1.0, 0.5]);
    println!(
        "{:>9} {:>9} {:>14}",
        "BW scale", "compute", "predicted (us)"
    );
    for p in sweep.run(&est) {
        println!(
            "{:>9.1} {:>9.1} {:>14.1}",
            p.bw_scale, p.compute_scale, p.predicted_us
        );
    }
    println!("\nThe kernel is memory-bound: bandwidth scaling pays off until");
    println!("the compute terms dominate — the trade-off the framework exposes");
    println!("for next-generation compute-in-SRAM design.");
}
