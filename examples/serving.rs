//! Serving: mixed-priority workloads through the device command queue.
//!
//! A latency-sensitive RAG retrieval stream and a background Phoenix
//! histogram share one device. The queue dispatches the high-priority
//! retrieval first; the continuous-batching dispatcher coalesces
//! same-key queries arriving within the batch window into one
//! VR-limited device dispatch, and the example compares the batched
//! drain against the same stream served one query per dispatch.
//! The final section overloads the server with injected faults and a
//! per-query deadline to show graceful degradation: expired queries are
//! shed, transient faults retry with backoff, and every failure retires
//! as an error completion instead of taking the stream down.
//!
//! Run with: `cargo run --release --example serving`
//!
//! Set `SERVE_TRACE_OUT=/path/to/trace.json` to record the whole run
//! as a Chrome `trace_event` file (load it at <https://ui.perfetto.dev>),
//! and `SERVE_METRICS_OUT=/path/to/metrics.txt` to dump the batched
//! run's queue counters in the Prometheus text format.
//!
//! The sharded section replays part of the stream on a four-device
//! [`rag::ShardedRagServer`] and checks the merged top-k against the
//! single-device run; `SERVE_SHARD_TRACE_OUT=/path/to/trace.json`
//! exports its timeline with one Perfetto track group per shard.

use std::time::Duration;

use apu_sim::{
    ApuDevice, ChromeTraceSink, DeviceQueue, FaultPlan, Priority, QueueConfig, RetryPolicy,
    SimConfig,
};
use hbm_sim::{DramSpec, MemorySystem};
use phoenix::{histogram, OptConfig};
use rag::{CorpusSpec, EmbeddingStore, RagServer, ServeConfig, ShardedRagServer};

fn main() -> Result<(), apu_sim::Error> {
    let mut dev = ApuDevice::try_new(SimConfig::default().with_l4_bytes(16 << 20))?;
    // Optional device-timeline tracing: every queue, core, and DMA
    // engine gets its own Perfetto track. The sink shares the device's
    // clock so cycle stamps render in wall microseconds.
    let trace = std::env::var_os("SERVE_TRACE_OUT").map(|path| {
        let (sink, recorder) = ChromeTraceSink::shared(dev.config().clock);
        dev.install_trace_sink(sink);
        (path, recorder)
    });
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 16_384,
        },
        42,
    );

    // ---- 1. background analytics through the raw command queue ----
    let pixels = histogram::generate(100_000, 7);
    {
        let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
        let handle = histogram::enqueue(&mut queue, Priority::Low, &pixels, OptConfig::all())?;
        let done = queue.wait(handle)?;
        println!(
            "histogram: {:.2} ms service on {} cores (waited {:.2} ms in queue)",
            done.report.millis(),
            done.report.cores_used,
            done.wait().as_secs_f64() * 1e3,
        );
    }

    // ---- 2. an open-loop query stream through the RAG server ----
    let queries: Vec<Vec<i16>> = (0..48).map(|i| store.query(i)).collect();
    let report = {
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
        for (i, q) in queries.iter().enumerate() {
            // Queries arrive 50 µs apart — faster than the device can
            // serve them one at a time, so the continuous-batching
            // dispatcher folds the backlog into VR-limited dispatches.
            server.submit(Duration::from_micros(50 * i as u64), q.clone())?;
        }
        server.drain()?
    };
    for done in report.completions.iter().take(4) {
        println!(
            "query {}: {} hits, batch of {}, latency {:.2} ms",
            done.ticket.id(),
            done.hits().map_or(0, <[_]>::len),
            done.batch_size,
            done.latency().as_secs_f64() * 1e3,
        );
    }
    println!(
        "batched: {:.0} QPS sustained, p99 {:.2} ms, {} dispatches, mean batch {:.1}",
        report.throughput_qps(),
        report.latency_percentile(0.99).as_secs_f64() * 1e3,
        report.queue.dispatches,
        report.queue.mean_batch_size(),
    );
    let stages = report.stage_totals();
    println!(
        "  where the time went: queue_wait {:.2} ms, dispatch {:.2} ms, dma {:.2} ms, device {:.2} ms",
        stages.queue_wait.as_secs_f64() * 1e3,
        stages.dispatch.as_secs_f64() * 1e3,
        stages.dma.as_secs_f64() * 1e3,
        stages.device.as_secs_f64() * 1e3,
    );
    if let Some(path) = std::env::var_os("SERVE_METRICS_OUT") {
        std::fs::write(&path, report.prometheus_text()).expect("write metrics file");
        println!("  wrote Prometheus metrics to {}", path.to_string_lossy());
    }

    // ---- 3. the same stream with coalescing disabled ----
    let unbatched = {
        let cfg = ServeConfig {
            max_batch: 1,
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        for (i, q) in queries.iter().enumerate() {
            server.submit(Duration::from_micros(50 * i as u64), q.clone())?;
        }
        server.drain()?
    };
    println!(
        "unbatched: {:.0} QPS sustained, p99 {:.2} ms, {} dispatches",
        unbatched.throughput_qps(),
        unbatched.latency_percentile(0.99).as_secs_f64() * 1e3,
        unbatched.queue.dispatches,
    );

    // ---- 4. graceful degradation: overload + injected faults ----
    // A burst of 96 back-to-back queries overruns the device, a 10%
    // deterministic task-fault rate is armed, each query carries a 2 ms
    // TTL, and transient faults get one retry with backoff. Shed and
    // faulted queries retire as error completions; the rest keep serving.
    dev.inject_faults(FaultPlan::new(42).fail_task_rate(0.10));
    let burst: Vec<Vec<i16>> = (0..96).map(|i| store.query(1000 + i)).collect();
    let degraded = {
        let cfg = ServeConfig {
            ttl: Some(Duration::from_millis(2)),
            retry: Some(RetryPolicy {
                max_retries: 1,
                ..RetryPolicy::default()
            }),
            ..ServeConfig::default()
        };
        let mut server = RagServer::new(&mut dev, &mut hbm, &store, cfg);
        for (i, q) in burst.iter().enumerate() {
            server.submit(Duration::from_micros(5 * i as u64), q.clone())?;
        }
        server.drain()?
    };
    dev.clear_faults();
    println!(
        "degraded: {} served / {} failed ({} shed past deadline, {} retries), p99 {:.2} ms",
        degraded.served(),
        degraded.failed(),
        degraded.queue.expired,
        degraded.queue.retries,
        degraded.latency_percentile(0.99).as_secs_f64() * 1e3,
    );
    for done in degraded.completions.iter().filter(|c| !c.is_ok()).take(2) {
        println!(
            "  query {} failed after {} attempt(s): {}",
            done.ticket.id(),
            done.attempts,
            done.error().expect("failed completion carries its error"),
        );
    }

    // ---- 5. sharded serving: the same corpus across four devices ----
    // The corpus splits into four contiguous shards, each on its own
    // simulated device; every query fans out to all shards and the
    // per-shard top-k results merge into the exact global top-k — the
    // hits match the single-device server bit for bit.
    let sharded_report = {
        let mut sharded = ShardedRagServer::new(
            &store,
            4,
            SimConfig::default().with_l4_bytes(16 << 20),
            ServeConfig::default(),
        )?;
        if std::env::var_os("SERVE_SHARD_TRACE_OUT").is_some() {
            sharded.enable_tracing();
        }
        for (i, q) in queries.iter().take(24).enumerate() {
            sharded.submit(Duration::from_micros(50 * i as u64), q.clone())?;
        }
        let report = sharded.drain()?;
        if let Some(path) = std::env::var_os("SERVE_SHARD_TRACE_OUT") {
            let json = sharded
                .take_chrome_trace()
                .expect("tracing was enabled before the drain");
            std::fs::write(&path, json).expect("write shard trace file");
            println!(
                "wrote per-shard trace groups to {} (open in https://ui.perfetto.dev)",
                path.to_string_lossy(),
            );
        }
        report
    };
    println!(
        "sharded x4: {} served / {} degraded, p99 {:.2} ms, {} shard queues",
        sharded_report.served(),
        sharded_report.degraded(),
        sharded_report.latency_percentile(0.99).as_secs_f64() * 1e3,
        sharded_report.shards.len(),
    );
    let single_hits: std::collections::HashMap<u64, &[rag::Hit]> = report
        .completions
        .iter()
        .filter_map(|c| c.hits().map(|h| (c.ticket.id(), h)))
        .collect();
    assert!(sharded_report.completions.iter().all(|c| {
        c.hits().expect("fault-free sharded run serves everything") == single_hits[&c.ticket.id()]
    }));
    println!("  merged shard top-k matches the single-device server exactly");

    // ---- 6. export the recorded device timeline, if requested ----
    if let Some((path, recorder)) = trace {
        dev.clear_trace_sink();
        let sink = recorder.borrow();
        std::fs::write(&path, sink.json()).expect("write trace file");
        println!(
            "wrote {} trace events to {} (open in https://ui.perfetto.dev)",
            sink.events().len(),
            path.to_string_lossy(),
        );
    }
    Ok(())
}
