//! Serving: mixed-priority workloads through the device command queue.
//!
//! A latency-sensitive RAG retrieval batch and a background Phoenix
//! histogram share one device. The queue dispatches the high-priority
//! retrieval first, batches the queries VR-limited, and reports
//! per-task queueing delay, service time, and queue-level throughput.
//!
//! Run with: `cargo run --release --example serving`

use std::time::Duration;

use apu_sim::{ApuDevice, DeviceQueue, Priority, QueueConfig, SimConfig};
use hbm_sim::{DramSpec, MemorySystem};
use phoenix::{histogram, OptConfig};
use rag::{CorpusSpec, EmbeddingStore, RagServer, ServeConfig};

fn main() -> Result<(), apu_sim::Error> {
    let mut dev = ApuDevice::try_new(SimConfig::default().with_l4_bytes(16 << 20))?;
    let mut hbm = MemorySystem::new(DramSpec::hbm2e_16gb());
    let store = EmbeddingStore::materialized(
        CorpusSpec {
            corpus_bytes: 0,
            chunks: 16_384,
        },
        42,
    );

    // ---- 1. background analytics through the raw command queue ----
    let pixels = histogram::generate(100_000, 7);
    {
        let mut queue = DeviceQueue::new(&mut dev, QueueConfig::default());
        let handle = histogram::enqueue(&mut queue, Priority::Low, &pixels, OptConfig::all())?;
        let done = queue.wait(handle)?;
        println!(
            "histogram: {:.2} ms service on {} cores (waited {:.2} ms in queue)",
            done.report.millis(),
            done.report.cores_used,
            done.wait().as_secs_f64() * 1e3,
        );
    }

    // ---- 2. an open-loop query stream through the RAG server ----
    let queries: Vec<Vec<i16>> = (0..8).map(|i| store.query(i)).collect();
    let mut server = RagServer::new(&mut dev, &mut hbm, &store, ServeConfig::default());
    for (i, q) in queries.iter().enumerate() {
        // Queries arrive 200 µs apart; the batch window folds them into
        // one VR-limited retrieval batch.
        server.submit(Duration::from_micros(200 * i as u64), q.clone())?;
    }
    let report = server.drain()?;
    for done in &report.completions {
        println!(
            "query {}: {} hits, batch of {}, latency {:.2} ms",
            done.ticket.id(),
            done.hits.len(),
            done.batch_size,
            done.latency().as_secs_f64() * 1e3,
        );
    }
    println!(
        "served {:.0} QPS sustained, p99 {:.2} ms, mean batch {:.1}",
        report.throughput_qps(),
        report.latency_percentile(0.99).as_secs_f64() * 1e3,
        report.mean_batch_size(),
    );
    Ok(())
}
