//! Extension beyond the paper's blocking `direct_dma_*` calls: the two
//! per-core DMA engines (Fig. 3b) support double buffering, hiding
//! transfer latency behind computation.
//!
//! Run with: `cargo run --release --example double_buffering`

use apu_sim::{ApuDevice, SimConfig, VecOp, Vmr};

fn main() -> Result<(), apu_sim::Error> {
    let tiles = 16;
    let compute_cmds = 110; // ~22k cycles of mul_s16 per tile

    let run = |overlapped: bool| -> Result<u64, apu_sim::Error> {
        let mut dev = ApuDevice::new(SimConfig::default().with_l4_bytes(64 << 20));
        let n = dev.config().vr_len;
        let h = dev.alloc_u16(tiles * n)?;
        let report = dev.run_task(|ctx| {
            if overlapped {
                let mut pending = ctx.dma_l4_to_l1_async(Vmr::new(0), h)?;
                for i in 0..tiles {
                    ctx.dma_wait(pending);
                    if i + 1 < tiles {
                        pending = ctx.dma_l4_to_l1_async(
                            Vmr::new(((i + 1) % 2) as u8),
                            h.offset_by((i + 1) * n * 2)?,
                        )?;
                    }
                    for _ in 0..compute_cmds {
                        ctx.core_mut().charge(VecOp::MulS16);
                    }
                }
                ctx.dma_wait_all();
            } else {
                for i in 0..tiles {
                    ctx.dma_l4_to_l1(Vmr::new(0), h.offset_by(i * n * 2)?)?;
                    for _ in 0..compute_cmds {
                        ctx.core_mut().charge(VecOp::MulS16);
                    }
                }
            }
            Ok(())
        })?;
        Ok(report.cycles.get())
    };

    let blocking = run(false)?;
    let overlapped = run(true)?;
    println!("streaming kernel, {tiles} tiles, ~22k cycles compute per tile:");
    println!("  blocking DMA        : {blocking:>9} cycles");
    println!("  double-buffered DMA : {overlapped:>9} cycles");
    println!(
        "  overlap hides {:.0}% of the transfer time",
        (blocking - overlapped) as f64 / (tiles as f64 * 22283.0) * 100.0
    );
    println!("\nWith compute roughly matching the 22k-cycle transfer, double");
    println!("buffering approaches the max(DMA, compute) bound — the headroom");
    println!("the paper's two-engine design leaves for software.");
    Ok(())
}
